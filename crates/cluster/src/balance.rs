//! One round of the §4 load-balancing protocol.
//!
//! At the end of each reallocation interval every server evaluates its
//! regime and the leader brokers partners (paper §4, actions 1–5):
//!
//! 1. **Shed phase** — servers in R4/R5 migrate VMs to underloaded
//!    receivers until they re-enter the optimal band. Receivers are the
//!    leader's R1/R2 candidates; when none have room the search widens to
//!    R3 servers with headroom below `α^{opt,h}` (an implementation
//!    extension the 70 %-load experiments require — with every server above
//!    `α^{opt,l}` the paper's literal R1/R2 search finds nobody, yet its
//!    Figure 3(b) shows heavy early in-cluster traffic).
//! 2. **Drain phase** — servers left in R1 either *gather* work from
//!    remaining R4/R5 donors (preferred when donors exist) or *drain*:
//!    atomically transfer every hosted VM to R2 receivers, each filled at
//!    most to its `α^{opt,l}` edge, then switch to the sleep state chosen
//!    by the [`SleepPolicy`] (C6 below 60 % cluster load, C3 above).
//! 3. **Wake phase** — servers still in R5 with excess nobody accepted
//!    cause the leader to order sleeping servers awake (action 5).
//!
//! Every VM move is an **in-cluster (horizontal) decision** in the
//! [`DecisionLedger`]; the round driver in [`crate::cluster`] records the
//! **local (vertical)** ones during demand evolution.

use crate::leader::Leader;
use crate::messages::RetryPolicy;
use crate::migration::{MigrationCost, MigrationCostModel};
use crate::recovery::{FaultHooks, NoFaults, RecoveryStats};
use crate::scaling::{DecisionKind, DecisionLedger};
use crate::server::{Server, ServerId};
use ecolb_energy::regimes::OperatingRegime;
use ecolb_energy::sleep::{CState, SleepModel, SleepPolicy};
use ecolb_simcore::time::SimTime;
use ecolb_trace::{NoTrace, SpanKind, TraceEventKind, Tracer};
use ecolb_workload::application::AppId;

/// Tolerance for load/room comparisons: demands are sums of many f64
/// terms, so exact comparisons reject placements that fit by construction.
const EPS: f64 = 1e-9;

/// Where a receiver stops accepting transferred load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillLimit {
    /// Up to the lower edge of the optimal band `α^{opt,l}` —
    /// conservative; used when filling receivers from draining servers.
    OptLow,
    /// Up to the middle of the optimal band.
    OptTarget,
    /// Up to the upper edge of the optimal band `α^{opt,h}` — used when
    /// overloaded donors shed.
    OptHigh,
}

impl FillLimit {
    /// The load ceiling this limit imposes on `server`.
    pub fn ceiling(self, server: &Server) -> f64 {
        let b = server.boundaries();
        match self {
            FillLimit::OptLow => b.opt_low,
            FillLimit::OptTarget => b.optimal_target(),
            FillLimit::OptHigh => b.opt_high,
        }
    }
}

/// Tunables of one balancing round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceConfig {
    /// Master switch: disable to run the cluster with *no* load balancing
    /// at all (the "wasteful resource management policy when the servers
    /// are always on" the paper argues against — the natural baseline).
    pub enabled: bool,
    /// Sleep-state selection rule.
    pub sleep_policy: SleepPolicy,
    /// Master switch for the drain-and-sleep phase.
    pub allow_sleep: bool,
    /// Fill ceiling for receivers of shed (overload) traffic.
    pub shed_fill: FillLimit,
    /// Fill ceiling for receivers of drain (consolidation) traffic.
    pub drain_fill: FillLimit,
    /// Cap on how many partners a server negotiates with per request;
    /// `None` means the full leader list. Models bounded peer-negotiation
    /// effort.
    pub max_partners: Option<usize>,
    /// Maximum sleeping servers woken per R5 emergency.
    pub wakes_per_emergency: usize,
    /// Maximum VMs an overloaded donor sheds per reallocation interval —
    /// peer negotiation and transfer bandwidth bound how much can move in
    /// one `τ`.
    pub shed_moves_per_donor: usize,
    /// Maximum VMs a draining R1 server transfers away per interval. A
    /// server sleeps only once *fully* drained, so a small budget stretches
    /// consolidation over several intervals — the source of the paper's
    /// multi-interval settling transient.
    pub drain_moves_per_candidate: usize,
    /// How many R1 consolidation requests the leader processes per
    /// interval (`None` = all). Overload assistance (R4/R5) is never
    /// throttled — undesirable-high is urgent; consolidation is
    /// housekeeping the single leader serialises. This is what makes large
    /// low-load clusters take ~20 intervals to settle, as in Figure 3.
    pub drain_candidates_per_interval: Option<usize>,
    /// Retry policy for regime reports lost on a faulty star link. Only
    /// exercised through the hooked entry points; fault-free runs never
    /// retry because nothing is ever lost.
    pub retry: RetryPolicy,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            enabled: true,
            sleep_policy: SleepPolicy::default(),
            allow_sleep: true,
            shed_fill: FillLimit::OptHigh,
            drain_fill: FillLimit::OptLow,
            max_partners: None,
            wakes_per_emergency: 1,
            shed_moves_per_donor: 4,
            drain_moves_per_candidate: 1,
            drain_candidates_per_interval: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// A committed VM transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRecord {
    /// Donor server.
    pub from: ServerId,
    /// Receiving server.
    pub to: ServerId,
    /// Application moved.
    pub app: AppId,
    /// Demand of the application at transfer time.
    pub demand: f64,
    /// Modelled migration cost.
    pub cost: MigrationCost,
}

/// Everything one balancing round did.
#[derive(Debug, Clone, Default)]
pub struct BalanceOutcome {
    /// VM transfers committed this round.
    pub migrations: Vec<MigrationRecord>,
    /// Servers that drained and went to sleep, with their chosen state.
    pub slept: Vec<(ServerId, CState)>,
    /// Sleeping servers ordered awake.
    pub woken: Vec<ServerId>,
    /// R5 servers whose excess could not be fully placed.
    pub unresolved_overloads: Vec<ServerId>,
    /// R1 servers that failed to drain (stayed awake, underloaded).
    pub failed_drains: Vec<ServerId>,
    /// Servers whose wake order was lost to an injected transition fault:
    /// they stay asleep despite the leader's (optimistic) directory update.
    pub wake_failures: Vec<ServerId>,
}

impl BalanceOutcome {
    /// Total energy charged to migrations this round, Joules.
    pub fn migration_energy_j(&self) -> f64 {
        self.migrations.iter().map(|m| m.cost.energy_j).sum()
    }
}

/// Fraction of total capacity in use across the whole cluster, counting
/// sleeping servers' capacity in the denominator (the paper's "overall
/// load of the cluster … of the cluster capacity").
pub fn cluster_load_fraction(servers: &[Server]) -> f64 {
    if servers.is_empty() {
        return 0.0;
    }
    servers.iter().map(Server::load).sum::<f64>() / servers.len() as f64
}

/// Moves `app` from `from` to `to`, updating loads and counters; the move
/// is applied instantaneously (the timed variant lives in the event-driven
/// simulation layer, which replays the same records with delays). `None`
/// if `from` no longer hosts `app` — callers treat that as "nothing to
/// move" and the chaos invariant checker would flag any VM imbalance it
/// caused.
fn commit_migration(
    servers: &mut [Server],
    from: ServerId,
    to: ServerId,
    app: AppId,
    model: &MigrationCostModel,
) -> Option<MigrationRecord> {
    let application = servers[from.index()].take_app(app)?;
    let demand = application.demand;
    let cost = model.cost_of(&application);
    servers[from.index()].migrations_out += 1;
    servers[to.index()].migrations_in += 1;
    servers[to.index()].place_app(application);
    Some(MigrationRecord {
        from,
        to,
        app,
        demand,
        cost,
    })
}

/// Truncates a partner list to the configured negotiation budget.
fn cap<'a>(ids: &'a [ServerId], config: &BalanceConfig) -> &'a [ServerId] {
    match config.max_partners {
        Some(k) => &ids[..ids.len().min(k)],
        None => ids,
    }
}

/// Reusable working buffers for the balancing phases.
///
/// The shed and drain phases build several short-lived sorted lists *per
/// donor / per candidate* (partner lists, app working sets); with a few
/// hundred servers that used to mean thousands of heap allocations per
/// reallocation interval. A round-owned scratch turns them all into
/// clear-and-refill on buffers that reach steady-state capacity after the
/// first interval. Contents and iteration order are identical to the
/// fresh-`Vec` formulation, so reports and traces are byte-identical.
#[derive(Debug, Clone, Default)]
pub struct BalanceScratch {
    /// Donor / drain-candidate roster of the current phase.
    roster: Vec<ServerId>,
    /// Partner list: the leader's reply or the fallback receiver scan.
    partners: Vec<ServerId>,
    /// `(app, demand)` working set of the server being relieved or drained.
    apps: Vec<(AppId, f64)>,
}

/// Static label for a sleep state, for trace events.
fn cstate_label(state: CState) -> &'static str {
    match state {
        CState::C0 => "C0",
        CState::C1 => "C1",
        CState::C2 => "C2",
        CState::C3 => "C3",
        CState::C4 => "C4",
        CState::C5 => "C5",
        CState::C6 => "C6",
    }
}

/// Emits the trace event for one committed migration.
fn trace_migration(tracer: &mut dyn Tracer, now: SimTime, rec: &MigrationRecord) {
    tracer.event(
        now.ticks(),
        TraceEventKind::Migration {
            from: rec.from.0,
            to: rec.to.0,
            app: rec.app.0,
            demand: rec.demand,
        },
    );
}

/// Phase 1 — overloaded servers (R4, R5) shed VMs to underloaded
/// receivers.
#[allow(clippy::too_many_arguments)] // phases share the round's full context
fn shed_phase(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    config: &BalanceConfig,
    now: SimTime,
    tracer: &mut dyn Tracer,
    scratch: &mut BalanceScratch,
    outcome: &mut BalanceOutcome,
) {
    let BalanceScratch {
        roster: donors,
        partners,
        apps,
    } = scratch;
    // Donors sorted: R5 (urgent) first, then heaviest.
    donors.clear();
    donors.extend(
        servers
            .iter()
            .filter(|s| s.is_awake() && s.regime().is_overloaded())
            .map(Server::id),
    );
    donors.sort_by(|&a, &b| {
        let (sa, sb) = (&servers[a.index()], &servers[b.index()]);
        sb.regime()
            .index()
            .cmp(&sa.regime().index())
            .then(sb.load().total_cmp(&sa.load()))
            .then(a.cmp(&b))
    });

    for &donor in donors.iter() {
        if !servers[donor.index()].regime().is_overloaded() {
            continue; // already relieved by an earlier donor's receiver churn
        }
        let donor_regime = servers[donor.index()].regime();
        leader.receive_assistance_request(donor, donor_regime);
        tracer.event(
            now.ticks(),
            TraceEventKind::AssistanceRequested {
                server: donor.0,
                regime: donor_regime.index() as u8,
            },
        );
        // Leader proposes R1/R2 receivers; fall back to R3 servers with
        // headroom when the strict list is empty (see module docs).
        leader.find_receivers_into(donor, partners);
        if partners.is_empty() {
            partners.extend(
                servers
                    .iter()
                    .filter(|s| {
                        s.is_awake()
                            && s.id() != donor
                            && s.regime() == OperatingRegime::Optimal
                            && s.load() < config.shed_fill.ceiling(s)
                    })
                    .map(Server::id),
            );
            partners.sort_by(|&a, &b| {
                servers[a.index()]
                    .load()
                    .total_cmp(&servers[b.index()].load())
                    .then(a.cmp(&b))
            });
        }
        let receivers = cap(partners, config);

        // Shed apps, largest first, until back inside the optimal band or
        // the per-interval negotiation budget runs out.
        let mut moves = 0usize;
        loop {
            if moves >= config.shed_moves_per_donor {
                break;
            }
            let donor_srv = &servers[donor.index()];
            let excess = donor_srv.shed_pressure();
            if excess <= 0.0 {
                break;
            }
            // Prefer the *smallest* app that clears the excess in one move
            // (minimal churn); apps too small to clear it come after,
            // largest first.
            apps.clear();
            apps.extend(donor_srv.apps().iter().map(|a| (a.id, a.demand)));
            apps.sort_by(|a, b| {
                let a_clears = a.1 + EPS >= excess;
                let b_clears = b.1 + EPS >= excess;
                b_clears
                    .cmp(&a_clears)
                    .then_with(|| {
                        if a_clears && b_clears {
                            a.1.total_cmp(&b.1)
                        } else {
                            b.1.total_cmp(&a.1)
                        }
                    })
                    .then(a.0.cmp(&b.0))
            });

            let mut moved = false;
            'apps: for &(app, demand) in apps.iter() {
                for &rx in receivers {
                    let rx_srv = &servers[rx.index()];
                    if !rx_srv.is_awake() {
                        continue;
                    }
                    if rx_srv.load() + demand <= config.shed_fill.ceiling(rx_srv) + EPS {
                        if let Some(rec) =
                            commit_migration(servers, donor, rx, app, migration_model)
                        {
                            trace_migration(tracer, now, &rec);
                            outcome.migrations.push(rec);
                            ledger.record(DecisionKind::InClusterHorizontal);
                            moved = true;
                            moves += 1;
                        }
                        break 'apps;
                    }
                }
            }
            if !moved {
                break; // nothing placeable anywhere
            }
        }

        if servers[donor.index()].regime() == OperatingRegime::UndesirableHigh {
            outcome.unresolved_overloads.push(donor);
        }
    }
}

/// Phase 2 — R1 servers gather from remaining donors or drain-and-sleep.
#[allow(clippy::too_many_arguments)] // phases share the round's full context
fn drain_phase(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
    just_woken: &[ServerId],
    tracer: &mut dyn Tracer,
    scratch: &mut BalanceScratch,
    outcome: &mut BalanceOutcome,
) {
    let BalanceScratch {
        roster: candidates,
        partners,
        apps,
    } = scratch;
    let cluster_load = cluster_load_fraction(servers);
    // R1 candidates, emptiest first (cheapest to drain). A server whose
    // wake matured this round is exempt — it was woken to absorb load and
    // must not oscillate straight back to sleep.
    candidates.clear();
    candidates.extend(
        servers
            .iter()
            .filter(|s| {
                s.is_awake()
                    && s.regime() == OperatingRegime::UndesirableLow
                    && !just_woken.contains(&s.id())
            })
            .map(Server::id),
    );
    // Heterogeneous fleets drain the least energy-proportional machines
    // first: idle wattage is exactly the draw a sleep removes, so a
    // high-end server asleep buys more joules than a volume server
    // asleep. Within a wattage tier, emptiest first (cheapest to drain).
    // Homogeneous fleets tie on idle wattage, preserving the paper's
    // original emptiest-first order byte-for-byte.
    candidates.sort_by(|&a, &b| {
        use ecolb_energy::power::PowerModel;
        servers[b.index()]
            .power()
            .idle_power_w()
            .total_cmp(&servers[a.index()].power().idle_power_w())
            .then(
                servers[a.index()]
                    .load()
                    .total_cmp(&servers[b.index()].load()),
            )
            .then(a.cmp(&b))
    });

    let mut processed = 0usize;
    for &cand in candidates.iter() {
        if let Some(budget) = config.drain_candidates_per_interval {
            if processed >= budget {
                break; // leader defers remaining consolidation requests
            }
        }
        if servers[cand.index()].regime() != OperatingRegime::UndesirableLow
            || !servers[cand.index()].is_awake()
        {
            continue; // regime changed due to earlier drains landing here
        }
        processed += 1;
        leader.receive_assistance_request(cand, OperatingRegime::UndesirableLow);
        tracer.event(
            now.ticks(),
            TraceEventKind::AssistanceRequested {
                server: cand.0,
                regime: OperatingRegime::UndesirableLow.index() as u8,
            },
        );

        // Option A: gather from remaining overloaded donors (paper gives
        // this branch when R4/R5 servers exist).
        leader.find_donors_into(cand, partners);
        let donors = cap(partners, config);
        let mut gathered = false;
        for &donor in donors {
            loop {
                let donor_srv = &servers[donor.index()];
                if !donor_srv.is_awake() || donor_srv.shed_pressure() <= 0.0 {
                    break;
                }
                let cand_srv = &servers[cand.index()];
                let ceiling = config.shed_fill.ceiling(cand_srv);
                // Largest app that fits the candidate.
                let pick = donor_srv
                    .apps()
                    .iter()
                    .filter(|a| cand_srv.load() + a.demand <= ceiling + EPS)
                    .max_by(|x, y| x.demand.total_cmp(&y.demand))
                    .map(|a| a.id);
                match pick
                    .and_then(|app| commit_migration(servers, donor, cand, app, migration_model))
                {
                    Some(rec) => {
                        trace_migration(tracer, now, &rec);
                        outcome.migrations.push(rec);
                        ledger.record(DecisionKind::InClusterHorizontal);
                        gathered = true;
                    }
                    None => break,
                }
            }
            if servers[cand.index()].regime() != OperatingRegime::UndesirableLow {
                break; // candidate climbed out of R1
            }
        }
        if gathered {
            continue; // gathering resolved (or improved) this candidate
        }

        if !config.allow_sleep {
            outcome.failed_drains.push(cand);
            continue;
        }

        // Option B: drain into R2 receivers filled at most to the drain
        // ceiling. The per-interval transfer budget means a loaded server
        // drains over several intervals; it sleeps only once empty.
        partners.clear();
        partners.extend(
            servers
                .iter()
                .filter(|s| {
                    s.is_awake()
                        && s.id() != cand
                        && s.regime() == OperatingRegime::SuboptimalLow
                        && s.load() < config.drain_fill.ceiling(s)
                })
                .map(Server::id),
        );
        // Most spare drain capacity first maximises placement success.
        partners.sort_by(|&a, &b| {
            let ha = config.drain_fill.ceiling(&servers[a.index()]) - servers[a.index()].load();
            let hb = config.drain_fill.ceiling(&servers[b.index()]) - servers[b.index()].load();
            hb.total_cmp(&ha).then(a.cmp(&b))
        });
        let receivers = cap(partners, config);

        // Move the largest placeable apps within the interval budget.
        let mut moved = 0usize;
        while moved < config.drain_moves_per_candidate {
            apps.clear();
            apps.extend(
                servers[cand.index()]
                    .apps()
                    .iter()
                    .map(|a| (a.id, a.demand)),
            );
            apps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut placed = None;
            'search: for (app, demand) in apps.iter() {
                for &rx in receivers {
                    let s = &servers[rx.index()];
                    if s.is_awake() && s.load() + demand <= config.drain_fill.ceiling(s) + EPS {
                        placed = Some((*app, rx));
                        break 'search;
                    }
                }
            }
            match placed
                .and_then(|(app, rx)| commit_migration(servers, cand, rx, app, migration_model))
            {
                Some(rec) => {
                    trace_migration(tracer, now, &rec);
                    outcome.migrations.push(rec);
                    ledger.record(DecisionKind::InClusterHorizontal);
                    moved += 1;
                }
                None => break,
            }
        }

        if servers[cand.index()].app_count() == 0 {
            if let Some(state) = config.sleep_policy.choose(cluster_load) {
                servers[cand.index()].enter_sleep(now, state, sleep_model);
                leader.receive_report(cand, OperatingRegime::UndesirableLow, 0.0, true);
                tracer.event(
                    now.ticks(),
                    TraceEventKind::SleepEntered {
                        server: cand.0,
                        cstate: cstate_label(state),
                    },
                );
                outcome.slept.push((cand, state));
            }
        } else {
            outcome.failed_drains.push(cand);
        }
    }
}

/// Phase 3 — unresolved R5 servers trigger wake orders (action 5). Each
/// wake order passes through the fault hooks: an injected transition
/// failure loses the order and the server stays asleep.
#[allow(clippy::too_many_arguments)] // phases share the round's full context
fn wake_phase(
    servers: &mut [Server],
    leader: &mut Leader,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
    hooks: &mut dyn FaultHooks,
    stats: &mut RecoveryStats,
    tracer: &mut dyn Tracer,
    outcome: &mut BalanceOutcome,
) {
    if outcome.unresolved_overloads.is_empty() {
        return;
    }
    let still_critical: Vec<ServerId> = outcome
        .unresolved_overloads
        .iter()
        .copied()
        .filter(|id| servers[id.index()].regime() == OperatingRegime::UndesirableHigh)
        .collect();
    for _ in still_critical {
        let sleepers = leader.find_sleepers(servers);
        for id in sleepers.into_iter().take(config.wakes_per_emergency) {
            leader.issue_wake_order(id);
            tracer.event(now.ticks(), TraceEventKind::WakeOrdered { server: id.0 });
            if hooks.wake_fails(id) {
                stats.wake_failures += 1;
                tracer.event(now.ticks(), TraceEventKind::WakeFailed { server: id.0 });
                outcome.wake_failures.push(id);
            } else {
                servers[id.index()].begin_wake(now, sleep_model);
                outcome.woken.push(id);
            }
        }
    }
}

/// Per-interval reporting sweep through the fault hooks: every server's
/// report makes up to `retry.max_attempts` delivery attempts with
/// exponential backoff; a report that exhausts its budget leaves the
/// leader's previous directory entry stale until the next sweep. The
/// exhaustion is no longer silent: it counts toward
/// `RecoveryStats::reports_abandoned` (surfaced as the degradation
/// summary's `lost_reports`) and emits a `report_retries_exhausted`
/// trace event.
fn report_sweep_with_hooks(
    servers: &[Server],
    leader: &mut Leader,
    retry: &RetryPolicy,
    now: SimTime,
    hooks: &mut dyn FaultHooks,
    stats: &mut RecoveryStats,
    tracer: &mut dyn Tracer,
) {
    for s in servers {
        let mut delivered = false;
        for attempt in 1..=retry.max_attempts.max(1) {
            if attempt > 1 {
                stats.report_retries += 1;
                stats.retry_backoff_seconds += retry.backoff_before(attempt).as_secs_f64();
            }
            if hooks.report_lost(s.id(), attempt) {
                stats.reports_lost += 1;
                tracer.counter("balance.reports_lost", 1);
                continue;
            }
            leader.receive_report(s.id(), s.regime(), s.load(), s.is_sleeping());
            tracer.counter("balance.reports_delivered", 1);
            delivered = true;
            break;
        }
        if !delivered {
            stats.reports_abandoned += 1;
            tracer.event(
                now.ticks(),
                TraceEventKind::ReportRetriesExhausted {
                    server: s.id().0,
                    attempts: retry.max_attempts.max(1),
                },
            );
        }
    }
}

/// Runs one full balancing round at instant `now`. Servers whose pending
/// wake has completed by `now` are brought online first.
pub fn balance_round(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
) -> BalanceOutcome {
    balance_round_with_hooks(
        servers,
        leader,
        ledger,
        migration_model,
        sleep_model,
        config,
        now,
        &mut NoFaults,
        &mut RecoveryStats::default(),
    )
}

/// [`balance_round`] with an explicit fault injector: report delivery and
/// wake orders pass through `hooks`, recovery bookkeeping lands in
/// `stats`. With [`NoFaults`] this is exactly the fault-free round.
#[allow(clippy::too_many_arguments)] // the hooked variant adds two seams
pub fn balance_round_with_hooks(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
    hooks: &mut dyn FaultHooks,
    stats: &mut RecoveryStats,
) -> BalanceOutcome {
    balance_round_traced(
        servers,
        leader,
        ledger,
        migration_model,
        sleep_model,
        config,
        now,
        hooks,
        stats,
        &mut NoTrace,
    )
}

/// [`balance_round_with_hooks`] with a tracer: the round is bracketed by
/// a `balance` span and every protocol action (assistance requests,
/// migrations, sleep/wake transitions, report deliveries) lands in the
/// trace. With [`NoTrace`] nothing is recorded and the round is exactly
/// the untraced one.
#[allow(clippy::too_many_arguments)] // the traced variant adds one more seam
pub fn balance_round_traced(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
    hooks: &mut dyn FaultHooks,
    stats: &mut RecoveryStats,
    tracer: &mut dyn Tracer,
) -> BalanceOutcome {
    balance_round_scratch(
        servers,
        leader,
        ledger,
        migration_model,
        sleep_model,
        config,
        now,
        hooks,
        stats,
        tracer,
        &mut BalanceScratch::default(),
    )
}

/// [`balance_round_traced`] with caller-owned [`BalanceScratch`] so an
/// interval-driving loop pays the phases' working-buffer allocations once
/// per simulation instead of once per list per interval. Same results,
/// byte for byte.
#[allow(clippy::too_many_arguments)] // the reusing variant adds the scratch
pub fn balance_round_scratch(
    servers: &mut [Server],
    leader: &mut Leader,
    ledger: &mut DecisionLedger,
    migration_model: &MigrationCostModel,
    sleep_model: &SleepModel,
    config: &BalanceConfig,
    now: SimTime,
    hooks: &mut dyn FaultHooks,
    stats: &mut RecoveryStats,
    tracer: &mut dyn Tracer,
    scratch: &mut BalanceScratch,
) -> BalanceOutcome {
    tracer.span_enter(now.ticks(), SpanKind::Balance);
    // Complete wakes that have matured.
    let mut just_woken = Vec::new();
    for s in servers.iter_mut() {
        if let Some(t) = s.wake_ready_at() {
            if t <= now {
                s.complete_wake(now);
                tracer.event(
                    now.ticks(),
                    TraceEventKind::WakeCompleted { server: s.id().0 },
                );
                just_woken.push(s.id());
            }
        }
    }
    report_sweep_with_hooks(servers, leader, &config.retry, now, hooks, stats, tracer);
    let mut outcome = BalanceOutcome::default();
    if !config.enabled {
        tracer.span_exit(now.ticks(), SpanKind::Balance);
        return outcome; // no-balancing baseline: report sweep only
    }
    shed_phase(
        servers,
        leader,
        ledger,
        migration_model,
        config,
        now,
        tracer,
        scratch,
        &mut outcome,
    );
    drain_phase(
        servers,
        leader,
        ledger,
        migration_model,
        sleep_model,
        config,
        now,
        &just_woken,
        tracer,
        scratch,
        &mut outcome,
    );
    wake_phase(
        servers,
        leader,
        sleep_model,
        config,
        now,
        hooks,
        stats,
        tracer,
        &mut outcome,
    );
    tracer.span_exit(now.ticks(), SpanKind::Balance);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerPowerSpec;
    use ecolb_energy::regimes::RegimeBoundaries;
    use ecolb_workload::application::Application;

    fn boundaries() -> RegimeBoundaries {
        RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8)
    }

    fn mk_cluster(loads: &[&[f64]]) -> (Vec<Server>, Leader) {
        let mut next_app = 0u64;
        let servers: Vec<Server> = loads
            .iter()
            .enumerate()
            .map(|(i, apps)| {
                let mut s = Server::new(
                    ServerId(i as u32),
                    boundaries(),
                    ServerPowerSpec::default(),
                    SimTime::ZERO,
                );
                for &d in *apps {
                    s.place_app(Application::new(AppId(next_app), d, 0.01, 4.0));
                    next_app += 1;
                }
                s
            })
            .collect();
        let n = servers.len();
        (servers, Leader::new(n))
    }

    fn run(servers: &mut [Server], leader: &mut Leader, config: &BalanceConfig) -> BalanceOutcome {
        let mut ledger = DecisionLedger::new();
        balance_round(
            servers,
            leader,
            &mut ledger,
            &MigrationCostModel::default(),
            &SleepModel::default(),
            config,
            SimTime::ZERO,
        )
    }

    #[test]
    fn overloaded_server_sheds_to_underloaded() {
        // Server 0: R5 at 0.9; server 1: R2 at 0.25.
        let (mut servers, mut leader) = mk_cluster(&[&[0.5, 0.4], &[0.25]]);
        assert_eq!(servers[0].regime(), OperatingRegime::UndesirableHigh);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert!(!out.migrations.is_empty());
        assert!(
            !servers[0].regime().is_overloaded(),
            "donor relieved: {}",
            servers[0].load()
        );
        assert!(
            servers[1].load() <= 0.7 + 1e-9,
            "receiver capped at opt_high"
        );
    }

    #[test]
    fn shed_falls_back_to_optimal_receivers() {
        // Donor at 0.9 (R5); only other server is R3 at 0.4 with headroom.
        let (mut servers, mut leader) = mk_cluster(&[&[0.6, 0.3], &[0.4]]);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert_eq!(out.migrations.len(), 1);
        assert_eq!(out.migrations[0].to, ServerId(1));
        assert!((servers[1].load() - 0.7).abs() < 1e-9);
        assert!(!servers[0].regime().is_overloaded());
    }

    #[test]
    fn r1_server_drains_and_sleeps() {
        // Server 0: R1 at 0.1 (two small apps); servers 1, 2: R2 at 0.25
        // with drain room to opt_low = 0.3. A budget of 8 moves lets the
        // drain finish within one interval.
        let (mut servers, mut leader) = mk_cluster(&[&[0.05, 0.05], &[0.25], &[0.25]]);
        let config = BalanceConfig {
            drain_moves_per_candidate: 8,
            ..Default::default()
        };
        let out = run(&mut servers, &mut leader, &config);
        assert_eq!(out.slept.len(), 1);
        assert_eq!(out.slept[0].0, ServerId(0));
        assert!(servers[0].is_sleeping());
        assert_eq!(servers[0].app_count(), 0);
        // Low cluster load (≈ 0.2) → deep sleep C6.
        assert_eq!(out.slept[0].1, CState::C6);
        // Receivers never exceed opt_low.
        assert!(servers[1].load() <= 0.3 + 1e-9);
        assert!(servers[2].load() <= 0.3 + 1e-9);
    }

    #[test]
    fn drain_moves_only_what_fits() {
        // Candidate has one app too large for any receiver's drain room:
        // nothing moves, the candidate stays awake and is reported as a
        // failed drain (it will retry next interval).
        let (mut servers, mut leader) = mk_cluster(&[&[0.15], &[0.25], &[0.25]]);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert!(out.slept.is_empty());
        assert!(out.migrations.is_empty());
        assert_eq!(out.failed_drains, vec![ServerId(0)]);
        assert!(servers[0].is_awake());
        assert_eq!(servers[0].app_count(), 1);
    }

    #[test]
    fn drain_budget_spreads_over_intervals() {
        // Two apps, budget 1: the first round moves one app and reports a
        // failed (incomplete) drain; the second round finishes and sleeps.
        let (mut servers, mut leader) = mk_cluster(&[&[0.05, 0.05], &[0.25], &[0.25]]);
        let out1 = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert_eq!(out1.migrations.len(), 1);
        assert!(out1.slept.is_empty());
        assert_eq!(out1.failed_drains, vec![ServerId(0)]);
        let out2 = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert_eq!(out2.slept.len(), 1);
        assert!(servers[0].is_sleeping());
    }

    #[test]
    fn mixed_fleet_drains_high_idle_wattage_servers_first() {
        // Two fully drainable R1 idlers — server 0 a volume-class machine,
        // server 1 a high-end machine whose idle draw is several times
        // larger — plus two receivers with drain room. A candidate budget
        // of 1 forces a choice: sleeping the high-end idler removes the
        // most wattage, so the leader must spend the budget there.
        use crate::mix::ServerMix;
        use ecolb_energy::server_class::ServerClass;
        let mix = ServerMix::typical_enterprise();
        let classes = [
            ServerClass::Volume,
            ServerClass::HighEnd,
            ServerClass::Volume,
            ServerClass::Volume,
        ];
        let loads: [&[f64]; 4] = [&[0.05], &[0.05], &[0.25], &[0.25]];
        let mut next_app = 0u64;
        let mut servers: Vec<Server> = classes
            .iter()
            .zip(loads)
            .enumerate()
            .map(|(i, (&class, apps))| {
                let mut s = Server::new(
                    ServerId(i as u32),
                    boundaries(),
                    mix.power_spec(class),
                    SimTime::ZERO,
                );
                for &d in apps {
                    s.place_app(Application::new(AppId(next_app), d, 0.01, 4.0));
                    next_app += 1;
                }
                s
            })
            .collect();
        {
            use ecolb_energy::power::PowerModel;
            assert!(
                servers[1].power().idle_power_w() > servers[0].power().idle_power_w(),
                "the high-end machine idles hotter than the volume one"
            );
        }
        let mut leader = Leader::new(servers.len());
        let config = BalanceConfig {
            drain_candidates_per_interval: Some(1),
            ..Default::default()
        };
        let out = run(&mut servers, &mut leader, &config);
        assert_eq!(out.slept.len(), 1);
        assert_eq!(
            out.slept[0].0,
            ServerId(1),
            "the high-end idler sleeps first"
        );
        assert!(servers[1].is_sleeping());
        assert!(servers[0].is_awake(), "the volume idler waits its turn");
    }

    #[test]
    fn r1_prefers_gathering_when_donors_exist() {
        // Server 0: R1 at 0.1; server 1: R5 at 0.9.
        let (mut servers, mut leader) = mk_cluster(&[&[0.1], &[0.5, 0.4]]);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        // The shed phase already routes load to server 0 (it is the only
        // receiver), so server 0 must not sleep.
        assert!(out.slept.is_empty());
        assert!(servers[0].load() > 0.1);
        assert!(!servers[1].regime().is_overloaded());
    }

    #[test]
    fn busy_cluster_sleeps_shallow() {
        // Cluster load above 60 %: the drained server must pick C3.
        // Three heavily loaded servers plus one empty-ish one, with a
        // receiver that has drain room.
        let (mut servers, mut leader) =
            mk_cluster(&[&[0.05], &[0.28], &[0.69], &[0.69], &[0.69], &[0.69]]);
        // cluster load = (0.05+0.28+0.69*4)/6 = 0.515 → still C6. Push it up:
        servers[2].place_app(Application::new(AppId(90), 0.1, 0.01, 4.0));
        servers[3].place_app(Application::new(AppId(91), 0.1, 0.01, 4.0));
        servers[4].place_app(Application::new(AppId(92), 0.1, 0.01, 4.0));
        servers[5].place_app(Application::new(AppId(93), 0.1, 0.01, 4.0));
        // load = (0.05+0.28+0.79*4)/6 = 0.582 — close; add one more app.
        servers[2].place_app(Application::new(AppId(94), 0.2, 0.01, 4.0));
        let load = cluster_load_fraction(&servers);
        assert!(load > 0.6, "cluster load {load}");
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        if let Some(&(_, state)) = out.slept.first() {
            assert_eq!(state, CState::C3, "busy cluster must not use C6");
        }
    }

    #[test]
    fn unresolved_r5_wakes_a_sleeper() {
        let sleep_model = SleepModel::default();
        // Server 0: impossibly overloaded, single monolithic app nobody
        // can take; server 1 asleep.
        let (mut servers, mut leader) = mk_cluster(&[&[0.95], &[]]);
        servers[1].enter_sleep(SimTime::ZERO, CState::C3, &sleep_model);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        assert_eq!(out.woken, vec![ServerId(1)]);
        assert!(servers[1].wake_ready_at().is_some(), "wake in flight");
        assert!(out.unresolved_overloads.contains(&ServerId(0)));
    }

    #[test]
    fn matured_wakes_complete_at_round_start() {
        let sleep_model = SleepModel::default();
        let (mut servers, mut leader) = mk_cluster(&[&[0.5]]);
        let mut extra = Server::new(
            ServerId(1),
            boundaries(),
            ServerPowerSpec::default(),
            SimTime::ZERO,
        );
        extra.enter_sleep(SimTime::ZERO, CState::C3, &sleep_model);
        let ready = extra.begin_wake(SimTime::from_secs(1), &sleep_model);
        servers.push(extra);
        let mut leader2 = Leader::new(2);
        std::mem::swap(&mut leader, &mut leader2);
        let mut ledger = DecisionLedger::new();
        balance_round(
            &mut servers,
            &mut leader,
            &mut ledger,
            &MigrationCostModel::default(),
            &SleepModel::default(),
            &BalanceConfig::default(),
            ready + ecolb_simcore::time::SimDuration::from_secs(1),
        );
        assert!(servers[1].is_awake());
    }

    #[test]
    fn load_is_conserved_by_balancing() {
        let (mut servers, mut leader) =
            mk_cluster(&[&[0.5, 0.4], &[0.25], &[0.1], &[0.72], &[0.3, 0.3]]);
        let before: f64 = servers.iter().map(Server::load).sum();
        run(&mut servers, &mut leader, &BalanceConfig::default());
        let after: f64 = servers.iter().map(Server::load).sum();
        assert!(
            (before - after).abs() < 1e-9,
            "load conserved: {before} vs {after}"
        );
    }

    #[test]
    fn sleep_disabled_keeps_everyone_awake() {
        let (mut servers, mut leader) = mk_cluster(&[&[0.05, 0.05], &[0.25], &[0.25]]);
        let config = BalanceConfig {
            allow_sleep: false,
            ..Default::default()
        };
        let out = run(&mut servers, &mut leader, &config);
        assert!(out.slept.is_empty());
        assert!(servers.iter().all(Server::is_awake));
        assert_eq!(out.failed_drains, vec![ServerId(0)]);
    }

    #[test]
    fn partner_cap_limits_negotiation() {
        // Donor must spread over two receivers, but the cap allows one.
        let (mut servers, mut leader) = mk_cluster(&[&[0.45, 0.45], &[0.25], &[0.25]]);
        let config = BalanceConfig {
            max_partners: Some(1),
            ..Default::default()
        };
        let out = run(&mut servers, &mut leader, &config);
        let targets: std::collections::BTreeSet<ServerId> =
            out.migrations.iter().map(|m| m.to).collect();
        assert!(
            targets.len() <= 1,
            "negotiated with more partners than allowed"
        );
    }

    /// Scripted injector: fails every wake order and drops the first
    /// `lose_first_attempts` delivery attempts of every report.
    struct Scripted {
        fail_wakes: bool,
        lose_first_attempts: u32,
    }

    impl FaultHooks for Scripted {
        fn report_lost(&mut self, _from: ServerId, attempt: u32) -> bool {
            attempt <= self.lose_first_attempts
        }
        fn wake_fails(&mut self, _server: ServerId) -> bool {
            self.fail_wakes
        }
    }

    fn run_hooked(
        servers: &mut [Server],
        leader: &mut Leader,
        config: &BalanceConfig,
        hooks: &mut dyn FaultHooks,
        stats: &mut RecoveryStats,
    ) -> BalanceOutcome {
        let mut ledger = DecisionLedger::new();
        balance_round_with_hooks(
            servers,
            leader,
            &mut ledger,
            &MigrationCostModel::default(),
            &SleepModel::default(),
            config,
            SimTime::ZERO,
            hooks,
            stats,
        )
    }

    #[test]
    fn failed_wake_leaves_server_asleep() {
        let sleep_model = SleepModel::default();
        let (mut servers, mut leader) = mk_cluster(&[&[0.95], &[]]);
        servers[1].enter_sleep(SimTime::ZERO, CState::C3, &sleep_model);
        let mut hooks = Scripted {
            fail_wakes: true,
            lose_first_attempts: 0,
        };
        let mut stats = RecoveryStats::default();
        let out = run_hooked(
            &mut servers,
            &mut leader,
            &BalanceConfig::default(),
            &mut hooks,
            &mut stats,
        );
        assert_eq!(out.wake_failures, vec![ServerId(1)]);
        assert!(out.woken.is_empty());
        assert!(servers[1].is_sleeping());
        assert!(servers[1].wake_ready_at().is_none(), "no wake in flight");
        assert_eq!(stats.wake_failures, 1);
        assert_eq!(leader.stats().wake_orders, 1, "the order was still sent");
    }

    #[test]
    fn lost_reports_retry_with_backoff_then_deliver() {
        let (mut servers, mut leader) = mk_cluster(&[&[0.5], &[0.25]]);
        // Lose the first attempt of every report; the immediate retry
        // (attempt 2, backoff 100 ms) succeeds.
        let mut hooks = Scripted {
            fail_wakes: false,
            lose_first_attempts: 1,
        };
        let mut stats = RecoveryStats::default();
        run_hooked(
            &mut servers,
            &mut leader,
            &BalanceConfig::default(),
            &mut hooks,
            &mut stats,
        );
        assert_eq!(stats.reports_lost, 2);
        assert_eq!(stats.report_retries, 2);
        assert_eq!(stats.reports_abandoned, 0);
        assert!((stats.retry_backoff_seconds - 0.2).abs() < 1e-9);
        assert!(leader.entry(ServerId(0)).is_some(), "retry delivered");
    }

    #[test]
    fn exhausted_retries_leave_directory_stale() {
        let (mut servers, mut leader) = mk_cluster(&[&[0.5]]);
        let mut hooks = Scripted {
            fail_wakes: false,
            lose_first_attempts: u32::MAX,
        };
        let mut stats = RecoveryStats::default();
        run_hooked(
            &mut servers,
            &mut leader,
            &BalanceConfig::default(),
            &mut hooks,
            &mut stats,
        );
        assert_eq!(stats.reports_abandoned, 1);
        assert_eq!(stats.reports_lost, 3, "default budget is 3 attempts");
        assert!(
            leader.entry(ServerId(0)).is_none(),
            "never-delivered report leaves no entry"
        );
    }

    #[test]
    fn no_faults_hooks_match_plain_round() {
        let (mut a_servers, mut a_leader) =
            mk_cluster(&[&[0.5, 0.4], &[0.25], &[0.1], &[0.72], &[0.3, 0.3]]);
        let (mut b_servers, mut b_leader) =
            mk_cluster(&[&[0.5, 0.4], &[0.25], &[0.1], &[0.72], &[0.3, 0.3]]);
        let out_a = run(&mut a_servers, &mut a_leader, &BalanceConfig::default());
        let mut stats = RecoveryStats::default();
        let out_b = run_hooked(
            &mut b_servers,
            &mut b_leader,
            &BalanceConfig::default(),
            &mut NoFaults,
            &mut stats,
        );
        assert_eq!(out_a.migrations, out_b.migrations);
        assert_eq!(out_a.slept, out_b.slept);
        assert_eq!(out_a.woken, out_b.woken);
        assert_eq!(stats, RecoveryStats::default(), "no recovery work done");
        assert_eq!(a_leader.stats(), b_leader.stats());
        for (x, y) in a_servers.iter().zip(&b_servers) {
            assert_eq!(x.load(), y.load());
        }
    }

    /// `Server::take_app` uses `swap_remove`, so two servers hosting the
    /// same apps can store them in different orders depending on removal
    /// history (the cluster driver's evolve loop even breaks early over
    /// this, `cluster.rs`). Every selection loop in the balancing phases
    /// sorts its working set by `(demand, id)`, so in-memory order must
    /// never leak into decisions — pinned here by running one round over
    /// two clusters that differ *only* in app storage order and requiring
    /// byte-identical outcomes.
    #[test]
    fn app_storage_order_does_not_leak_into_decisions() {
        let mk = |shuffled: bool| {
            // Donor at 0.9 (R5) with three apps; two receivers.
            let (mut servers, leader) = mk_cluster(&[&[], &[0.25], &[0.25]]);
            let app = |id: u64, demand: f64| Application::new(AppId(id), demand, 0.01, 4.0);
            if shuffled {
                // Place a decoy between the real apps, then take it:
                // swap_remove leaves storage order [10, 12, 11].
                servers[0].place_app(app(10, 0.4));
                servers[0].place_app(app(99, 0.1));
                servers[0].place_app(app(11, 0.3));
                servers[0].place_app(app(12, 0.2));
                servers[0].take_app(AppId(99));
            } else {
                servers[0].place_app(app(10, 0.4));
                servers[0].place_app(app(11, 0.3));
                servers[0].place_app(app(12, 0.2));
            }
            (servers, leader)
        };
        let (mut a_servers, mut a_leader) = mk(false);
        let (mut b_servers, mut b_leader) = mk(true);
        assert_ne!(
            a_servers[0].apps().iter().map(|a| a.id).collect::<Vec<_>>(),
            b_servers[0].apps().iter().map(|a| a.id).collect::<Vec<_>>(),
            "precondition: storage orders actually differ"
        );
        let out_a = run(&mut a_servers, &mut a_leader, &BalanceConfig::default());
        let out_b = run(&mut b_servers, &mut b_leader, &BalanceConfig::default());
        assert!(!out_a.migrations.is_empty(), "round must do real work");
        assert_eq!(
            format!("{out_a:?}"),
            format!("{out_b:?}"),
            "outcome must be byte-identical across app storage orders"
        );
        for (x, y) in a_servers.iter().zip(&b_servers) {
            assert_eq!(x.load().to_bits(), y.load().to_bits());
        }
    }

    #[test]
    fn migration_records_carry_costs() {
        let (mut servers, mut leader) = mk_cluster(&[&[0.5, 0.4], &[0.25]]);
        let out = run(&mut servers, &mut leader, &BalanceConfig::default());
        for m in &out.migrations {
            assert!(m.cost.energy_j > 0.0);
            assert!(m.cost.duration.as_secs_f64() > 0.0);
            assert!(m.demand > 0.0);
        }
        assert!(out.migration_energy_j() > 0.0);
    }
}
