//! Event-driven cluster simulation.
//!
//! [`Cluster`] applies balancing decisions *logically* at interval
//! boundaries: a migrated VM is removed from its donor and placed on its
//! receiver in the same instant (capacity reservation semantics). That is
//! the right model for capacity questions, but it hides the paper's §3
//! timing questions — *how much time it takes to migrate a VM* (question
//! 8) and *to switch a sleeping server to a running state* (question 4).
//!
//! [`TimedClusterSim`] runs the same cluster on the discrete-event engine
//! of `ecolb-simcore`, scheduling one event per reallocation tick, per VM
//! arrival, and per wake completion. The capacity decisions are identical
//! to the synchronous cluster by construction (it drives the same
//! [`Cluster`]); what the timed layer adds is the **service-interruption
//! accounting**: while a VM image is on the wire its application does not
//! execute, and until a woken server reaches C0 its capacity is
//! unavailable. Both show up in the [`TimedRunReport`].

use crate::balance::MigrationRecord;
use crate::cluster::{Cluster, ClusterConfig, ClusterRunReport};
use crate::recovery::NoFaults;
use crate::server::ServerId;
use ecolb_metrics::summary::OnlineStats;
use ecolb_simcore::engine::{Control, Engine, RunOutcome};
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_trace::{NoTrace, Tracer};
use ecolb_workload::application::AppId;

/// Events of the timed cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// End of a reallocation interval: demand evolution + balancing.
    ReallocationTick,
    /// A migrated VM image finished its transfer and starts executing on
    /// the receiver.
    MigrationArrive {
        /// The application whose VM arrived.
        app: AppId,
        /// The receiving server.
        to: ServerId,
        /// Demand that was suspended while in flight.
        demand: f64,
    },
    /// A sleeping server ordered awake reaches C0.
    WakeComplete {
        /// The server that finished waking.
        server: ServerId,
    },
}

/// Timing metrics collected on top of the capacity simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRunReport {
    /// The underlying capacity-level report (identical to the synchronous
    /// cluster's).
    pub base: ClusterRunReport,
    /// Demand-seconds of service interruption: Σ demand × transfer time
    /// over all migrations (§3 question 8 turned into a QoS cost).
    pub downtime_demand_seconds: f64,
    /// Per-migration transfer-time statistics, seconds.
    pub transfer_time_s: OnlineStats,
    /// Per-wake latency statistics, seconds (§3 question 4).
    pub wake_latency_s: OnlineStats,
    /// Largest number of VM images simultaneously on the wire.
    pub max_in_flight: usize,
    /// Total events the engine processed.
    pub events_processed: u64,
}

impl TimedRunReport {
    /// Mean service interruption per committed migration, demand-seconds.
    /// Zero (not NaN) for runs that commit no migrations.
    pub fn mean_downtime_per_migration(&self) -> f64 {
        if self.base.migrations == 0 {
            0.0
        } else {
            self.downtime_demand_seconds / self.base.migrations as f64
        }
    }

    /// Mean VM transfer time, seconds; zero for zero-migration runs.
    pub fn mean_transfer_time_s(&self) -> f64 {
        if self.transfer_time_s.count() == 0 {
            0.0
        } else {
            self.transfer_time_s.mean()
        }
    }

    /// Mean wake latency, seconds; zero when no server was ever woken.
    pub fn mean_wake_latency_s(&self) -> f64 {
        if self.wake_latency_s.count() == 0 {
            0.0
        } else {
            self.wake_latency_s.mean()
        }
    }

    /// Service interruption per reallocation interval, demand-seconds;
    /// zero for zero-interval runs.
    pub fn downtime_per_interval(&self) -> f64 {
        if self.base.ratio_series.len() == 0 {
            0.0
        } else {
            self.downtime_demand_seconds / self.base.ratio_series.len() as f64
        }
    }
}

/// The event-driven wrapper.
#[derive(Debug)]
pub struct TimedClusterSim {
    cluster: Cluster,
    intervals: u64,
}

struct SimState {
    cluster: Cluster,
    intervals_left: u64,
    realloc_interval: SimDuration,
    downtime_demand_seconds: f64,
    transfer_time_s: OnlineStats,
    wake_latency_s: OnlineStats,
    in_flight: usize,
    max_in_flight: usize,
    arrivals_seen: u64,
    wakes_seen: u64,
}

impl TimedClusterSim {
    /// Creates the simulation for `intervals` reallocation intervals.
    pub fn new(config: ClusterConfig, seed: u64, intervals: u64) -> Self {
        TimedClusterSim {
            cluster: Cluster::new(config, seed),
            intervals,
        }
    }

    /// Runs to completion and returns the timing-augmented report.
    pub fn run(self) -> TimedRunReport {
        self.run_traced(&mut NoTrace)
    }

    /// [`TimedClusterSim::run`] with a tracer observing every engine
    /// dispatch and every cluster interval. With [`NoTrace`] the run is
    /// structurally identical to [`TimedClusterSim::run`] — same events,
    /// same clock, byte-identical [`TimedRunReport`].
    pub fn run_traced<T: Tracer>(self, tracer: &mut T) -> TimedRunReport {
        let realloc_interval = self.cluster.config().realloc_interval;
        // Pre-size the queue for the tick plus a typical interval's burst
        // of in-flight migration/wake events; the dispatch loop then never
        // reallocates it.
        let mut engine: Engine<SimEvent> = Engine::with_capacity(64);
        engine.schedule_at(SimTime::ZERO + realloc_interval, SimEvent::ReallocationTick);

        let mut state = SimState {
            cluster: self.cluster,
            intervals_left: self.intervals,
            realloc_interval,
            downtime_demand_seconds: 0.0,
            transfer_time_s: OnlineStats::new(),
            wake_latency_s: OnlineStats::new(),
            in_flight: 0,
            max_in_flight: 0,
            arrivals_seen: 0,
            wakes_seen: 0,
        };

        // Series the base Cluster::run would have recorded.
        let mut sleeping = ecolb_metrics::timeseries::TimeSeries::new("sleeping_servers");
        let mut load = ecolb_metrics::timeseries::TimeSeries::new("cluster_load");
        let initial_census = state.cluster.census();

        let outcome = engine.run_traced(&mut state, tracer, |state, sched, event| {
            match event {
                SimEvent::ReallocationTick => {
                    let now = sched.now();
                    let outcome = state
                        .cluster
                        .run_interval_traced(&mut NoFaults, sched.tracer());
                    let (asleep, frac) = state.cluster.interval_stats();
                    sleeping.push(asleep as f64);
                    load.push(frac);

                    // Timed effects of this interval's decisions: every VM
                    // transfer (scaling + protocol) becomes an arrival
                    // event. `MigrationRecord` is `Copy`, so an index loop
                    // sidesteps both the borrow conflict and the clone of
                    // the whole record list.
                    for r in 0..state.cluster.interval_migrations().len() {
                        let rec = state.cluster.interval_migrations()[r];
                        schedule_arrival(state, sched, &rec);
                    }
                    for &woken in &outcome.woken {
                        if let Some(ready) = state.cluster.servers()[woken.index()].wake_ready_at()
                        {
                            state.wake_latency_s.push((ready - now).as_secs_f64());
                            sched.schedule_at(ready, SimEvent::WakeComplete { server: woken });
                        }
                    }

                    state.intervals_left -= 1;
                    if state.intervals_left > 0 {
                        sched.schedule_in(state.realloc_interval, SimEvent::ReallocationTick);
                        Control::Continue
                    } else if sched.pending() == 0 {
                        Control::Stop
                    } else {
                        Control::Continue // drain remaining arrivals/wakes
                    }
                }
                SimEvent::MigrationArrive { .. } => {
                    state.arrivals_seen += 1;
                    state.in_flight -= 1;
                    Control::Continue
                }
                SimEvent::WakeComplete { .. } => {
                    // The wake is completed inside the next balance round
                    // (the cluster checks matured wakes); the event exists
                    // so the engine's clock observes the §3 latency.
                    state.wakes_seen += 1;
                    Control::Continue
                }
            }
        });
        debug_assert!(matches!(outcome, RunOutcome::Stopped | RunOutcome::Drained));

        let elapsed = state.cluster.now().as_secs_f64();
        let base = ClusterRunReport {
            initial_census,
            final_census: state.cluster.census(),
            ratio_series: state.cluster.ledger().ratio_series(),
            sleeping_series: sleeping,
            load_series: load,
            decision_totals: state.cluster.ledger().totals(),
            migrations: state.cluster.migrations(),
            energy: state.cluster.energy(),
            migration_energy_j: state.cluster.migration_energy_j(),
            reference_energy_j: state.cluster.reference_power_w() * elapsed,
            admission: state.cluster.admission_stats(),
            saturation_violations: state.cluster.saturation_violations(),
            undesirable_server_intervals: state.cluster.undesirable_server_intervals(),
        };
        TimedRunReport {
            base,
            downtime_demand_seconds: state.downtime_demand_seconds,
            transfer_time_s: state.transfer_time_s,
            wake_latency_s: state.wake_latency_s,
            max_in_flight: state.max_in_flight,
            events_processed: engine.events_processed(),
        }
    }
}

fn schedule_arrival<T: Tracer>(
    state: &mut SimState,
    sched: &mut ecolb_simcore::engine::Scheduler<'_, SimEvent, T>,
    rec: &MigrationRecord,
) {
    state.in_flight += 1;
    state.max_in_flight = state.max_in_flight.max(state.in_flight);
    let transfer = rec.cost.duration;
    state.transfer_time_s.push(transfer.as_secs_f64());
    state.downtime_demand_seconds += rec.demand * transfer.as_secs_f64();
    sched.schedule_in(
        transfer,
        SimEvent::MigrationArrive {
            app: rec.app,
            to: rec.to,
            demand: rec.demand,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::MigrationCostModel;
    use ecolb_workload::generator::WorkloadSpec;

    fn config(n: usize) -> ClusterConfig {
        ClusterConfig::paper(n, WorkloadSpec::paper_low_load())
    }

    #[test]
    fn timed_run_matches_synchronous_decisions() {
        let sim = TimedClusterSim::new(config(60), 5, 12);
        let timed = sim.run();
        let mut sync = Cluster::new(config(60), 5);
        let sync_report = sync.run(12);
        assert_eq!(timed.base.ratio_series, sync_report.ratio_series);
        assert_eq!(timed.base.decision_totals, sync_report.decision_totals);
        assert_eq!(timed.base.final_census, sync_report.final_census);
        assert_eq!(timed.base.migrations, sync_report.migrations);
        assert!((timed.base.energy.total_j() - sync_report.energy.total_j()).abs() < 1e-6);
    }

    #[test]
    fn downtime_accrues_with_migrations() {
        let timed = TimedClusterSim::new(config(80), 3, 15).run();
        if timed.base.migrations > 0 {
            assert!(timed.downtime_demand_seconds > 0.0);
            assert!(timed.transfer_time_s.count() == timed.base.migrations);
            assert!(timed.mean_downtime_per_migration() > 0.0);
        }
    }

    #[test]
    fn instant_network_means_zero_downtime_duration() {
        // With an (almost) infinite link and no VM start latency the
        // transfer takes ~0 s, so downtime vanishes even though the same
        // migrations happen.
        let mut cfg = config(80);
        cfg.migration = MigrationCostModel {
            link_gbps: 1e12,
            transfer_overhead_w: 0.0,
            vm_start_energy_j: 0.0,
            vm_start_latency_s: 0.0,
            dirty_page_factor: 1.0,
        };
        let timed = TimedClusterSim::new(cfg, 3, 15).run();
        assert!(
            timed.downtime_demand_seconds < 1e-3,
            "downtime {}",
            timed.downtime_demand_seconds
        );
    }

    #[test]
    fn events_processed_counts_all_kinds() {
        let timed = TimedClusterSim::new(config(80), 7, 10).run();
        // At least one event per tick, plus one per migration arrival.
        assert!(timed.events_processed >= 10 + timed.base.migrations);
    }

    #[test]
    fn in_flight_peak_is_sane() {
        let timed = TimedClusterSim::new(config(80), 9, 10).run();
        assert!(timed.max_in_flight as u64 <= timed.base.migrations);
    }

    #[test]
    fn zero_migration_run_reports_zero_ratios_not_nan() {
        // Freeze demand and disable balancing: nothing ever migrates, so
        // every ratio metric must degrade to 0.0, never NaN.
        let mut cfg = config(20);
        cfg.growth_prob = 0.0;
        cfg.shrink_prob = 0.0;
        cfg.balance.enabled = false;
        let timed = TimedClusterSim::new(cfg, 13, 5).run();
        assert_eq!(timed.base.migrations, 0);
        for v in [
            timed.mean_downtime_per_migration(),
            timed.mean_transfer_time_s(),
            timed.mean_wake_latency_s(),
            timed.downtime_per_interval(),
        ] {
            assert!(v.is_finite(), "ratio metric must be finite, got {v}");
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn timed_run_is_deterministic() {
        let a = TimedClusterSim::new(config(50), 21, 8).run();
        let b = TimedClusterSim::new(config(50), 21, 8).run();
        assert_eq!(a, b);
    }
}
