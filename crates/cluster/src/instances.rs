//! Instance snapshots: the cluster's server set as the serving layer
//! sees it.
//!
//! The serving seam (`ecolb-serve`) routes user requests to *instances*
//! — awake servers hosting VMs. It must not reach into [`Server`]
//! internals (that would couple request routing to the balancing
//! implementation), so the cluster exports a flat, canonically ordered
//! snapshot: one [`InstanceInfo`] per server, in server-id order. The
//! serving layer diffs successive snapshots into discovery change
//! events (wake/sleep/crash/load drift) — the sans-io analogue of a
//! service-discovery push channel.

use crate::server::{Server, ServerId};
use ecolb_energy::regimes::OperatingRegime;

/// One server as seen by the serving layer at a snapshot instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceInfo {
    /// The server's identity (stable across the run).
    pub id: ServerId,
    /// Whether the server is awake (C0) and can serve requests.
    pub awake: bool,
    /// Operating regime at snapshot time (paper §4 classification).
    pub regime: OperatingRegime,
    /// Normalized load fraction at snapshot time.
    pub load: f64,
    /// VMs hosted (0 for sleeping/crashed servers).
    pub vms: usize,
}

/// Fills `out` with one entry per server, in server-id order (cleared
/// first). Taking the buffer keeps the per-interval snapshot
/// allocation-free after the first call.
pub fn snapshot_into(servers: &[Server], out: &mut Vec<InstanceInfo>) {
    out.clear();
    out.reserve(servers.len());
    for (i, s) in servers.iter().enumerate() {
        out.push(InstanceInfo {
            id: ServerId(i as u32),
            awake: s.is_awake(),
            regime: s.regime(),
            load: s.load(),
            vms: s.app_count(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use ecolb_workload::generator::WorkloadSpec;

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let cluster = Cluster::new(ClusterConfig::paper(30, WorkloadSpec::paper_low_load()), 11);
        let mut out = Vec::new();
        cluster.instance_snapshot(&mut out);
        assert_eq!(out.len(), 30);
        for (i, inst) in out.iter().enumerate() {
            assert_eq!(inst.id, ServerId(i as u32));
            assert!(inst.awake, "fresh clusters start awake");
            assert!(inst.load >= 0.0);
        }
    }

    #[test]
    fn snapshot_reflects_crashes() {
        let mut cluster = Cluster::new(ClusterConfig::paper(10, WorkloadSpec::paper_low_load()), 3);
        let at = cluster.now();
        cluster.crash_server(ServerId(4), at);
        let mut out = Vec::new();
        cluster.instance_snapshot(&mut out);
        assert!(!out[4].awake);
        assert_eq!(out[4].vms, 0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn snapshot_reuses_the_buffer() {
        let cluster = Cluster::new(ClusterConfig::paper(5, WorkloadSpec::paper_low_load()), 3);
        let mut out = Vec::with_capacity(64);
        cluster.instance_snapshot(&mut out);
        cluster.instance_snapshot(&mut out);
        assert_eq!(out.len(), 5);
    }
}
