//! VM migration cost model.
//!
//! The paper's stated focus is *"the energy costs for migrating a VM when
//! we decide to either switch a server to a sleep state or force it to
//! operate within the boundaries of an energy optimal regime"* and it poses
//! questions 5–8 of §3: the energy to migrate a VM, the energy to start it
//! on the target, how to choose the target, and how long migration takes.
//!
//! This model answers them parametrically: a migration of an image of `G`
//! GiB over a link of `B` Gbit/s takes `8·G/B` seconds of transfer, during
//! which both NICs and a share of both hosts draw extra power; starting
//! the VM on the target costs a fixed boot energy and latency.

use ecolb_simcore::time::SimDuration;
use ecolb_workload::application::Application;

/// Parameters of the migration cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCostModel {
    /// Link bandwidth between any two cluster servers, Gbit/s (star
    /// topology: two hops through the top-of-rack fabric).
    pub link_gbps: f64,
    /// Extra power drawn on source + target while the transfer runs, Watts
    /// (NIC + memory-copy overhead on both ends).
    pub transfer_overhead_w: f64,
    /// Fixed energy to start the VM on the target (question 6), Joules.
    pub vm_start_energy_j: f64,
    /// Fixed latency to start the VM on the target, seconds.
    pub vm_start_latency_s: f64,
    /// Dirty-page factor for live migration: the bytes actually moved are
    /// `image × factor` (≥ 1.0; pre-copy rounds re-send written pages).
    pub dirty_page_factor: f64,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel {
            link_gbps: 10.0,
            transfer_overhead_w: 30.0,
            vm_start_energy_j: 150.0,
            vm_start_latency_s: 2.0,
            dirty_page_factor: 1.25,
        }
    }
}

/// The cost of one migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// End-to-end duration: transfer plus VM start.
    pub duration: SimDuration,
    /// Total energy in Joules (transfer overhead plus VM start).
    pub energy_j: f64,
    /// Bytes moved over the network.
    pub bytes_moved: u64,
}

impl MigrationCostModel {
    /// Creates a model, validating positivity.
    pub fn new(link_gbps: f64, transfer_overhead_w: f64, vm_start_energy_j: f64) -> Self {
        assert!(link_gbps > 0.0, "bandwidth must be positive");
        assert!(transfer_overhead_w >= 0.0 && vm_start_energy_j >= 0.0);
        MigrationCostModel {
            link_gbps,
            transfer_overhead_w,
            vm_start_energy_j,
            ..Default::default()
        }
    }

    /// Cost of migrating `app`'s VM (questions 5, 6, 8 of §3).
    pub fn cost_of(&self, app: &Application) -> MigrationCost {
        let bytes = (app.vm_image_gib * self.dirty_page_factor * 1024.0 * 1024.0 * 1024.0) as u64;
        let transfer_s = (bytes as f64 * 8.0) / (self.link_gbps * 1e9);
        let duration = SimDuration::from_secs_f64(transfer_s + self.vm_start_latency_s);
        let energy_j = self.transfer_overhead_w * transfer_s + self.vm_start_energy_j;
        MigrationCost {
            duration,
            energy_j,
            bytes_moved: bytes,
        }
    }

    /// Abstract cost units for a horizontal (in-cluster) scaling decision
    /// `q_k`: proportional to migration energy. Kept on the same scale as
    /// [`crate::messages::CommLedger::cost`] so the paper's cost ordering
    /// `p < j ≪ q` holds.
    pub fn decision_cost_q(&self, app: &Application) -> f64 {
        self.cost_of(app).energy_j / 10.0
    }
}

/// Abstract cost `p_k` of a vertical (local) scaling action: adjusting a
/// VM's resource allocation on its current host. Small and constant — no
/// data moves.
pub const VERTICAL_SCALING_COST_P: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_workload::application::AppId;

    fn app(image_gib: f64) -> Application {
        Application::new(AppId(1), 0.2, 0.01, image_gib)
    }

    #[test]
    fn cost_scales_with_image_size() {
        let m = MigrationCostModel::default();
        let small = m.cost_of(&app(1.0));
        let large = m.cost_of(&app(16.0));
        assert!(large.duration > small.duration);
        assert!(large.energy_j > small.energy_j);
        assert_eq!(large.bytes_moved, 16 * small.bytes_moved);
    }

    #[test]
    fn ten_gig_link_moves_4gib_in_about_4_seconds() {
        let m = MigrationCostModel {
            dirty_page_factor: 1.0,
            ..Default::default()
        };
        let c = m.cost_of(&app(4.0));
        // 4 GiB × 8 bits / 10 Gb/s ≈ 3.44 s + 2 s VM start.
        let secs = c.duration.as_secs_f64();
        assert!((secs - 5.44).abs() < 0.1, "duration {secs}");
    }

    #[test]
    fn dirty_pages_inflate_transfer() {
        let clean = MigrationCostModel {
            dirty_page_factor: 1.0,
            ..Default::default()
        };
        let dirty = MigrationCostModel {
            dirty_page_factor: 1.5,
            ..Default::default()
        };
        assert!(dirty.cost_of(&app(4.0)).bytes_moved > clean.cost_of(&app(4.0)).bytes_moved);
    }

    #[test]
    fn faster_link_is_cheaper_and_quicker() {
        let slow = MigrationCostModel::new(1.0, 30.0, 150.0);
        let fast = MigrationCostModel::new(40.0, 30.0, 150.0);
        let a = app(8.0);
        assert!(fast.cost_of(&a).duration < slow.cost_of(&a).duration);
        assert!(fast.cost_of(&a).energy_j < slow.cost_of(&a).energy_j);
    }

    #[test]
    fn vm_start_is_a_floor() {
        let m = MigrationCostModel::default();
        let c = m.cost_of(&app(0.001));
        assert!(c.energy_j >= m.vm_start_energy_j);
        assert!(c.duration.as_secs_f64() >= m.vm_start_latency_s);
    }

    #[test]
    fn cost_ordering_p_less_than_q() {
        let m = MigrationCostModel::default();
        let q = m.decision_cost_q(&app(4.0));
        assert!(
            VERTICAL_SCALING_COST_P < q / 10.0,
            "horizontal must dominate vertical: p={VERTICAL_SCALING_COST_P}, q={q}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        MigrationCostModel::new(0.0, 30.0, 150.0);
    }
}
