//! Heterogeneous server populations.
//!
//! §3 of the paper: *"In a heterogeneous environment the normalized system
//! performance and the normalized energy consumption differ from server to
//! server."* Boundaries already differ per server (sampled from the §4
//! uniform ranges); [`ServerMix`] adds the second axis — per-server
//! **power models** drawn from the Koomey classes of Table 1 (volume,
//! mid-range, high-end) at a configurable year.
//!
//! Normalized capacity stays 1.0 per server (the paper's model works in
//! normalized-performance units); what the class changes is how many
//! Watts a unit of normalized load costs.

use crate::server::ServerPowerSpec;
use ecolb_energy::server_class::{class_power_model, ServerClass};
use ecolb_simcore::rng::Rng;

/// Fractions of each server class in a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerMix {
    /// Fraction of volume servers.
    pub volume: f64,
    /// Fraction of mid-range servers.
    pub mid_range: f64,
    /// Fraction of high-end servers (the fractions must sum to 1).
    pub high_end: f64,
    /// Koomey-table year parameterising the class power models.
    pub year: u32,
}

impl ServerMix {
    /// All volume servers (the paper's implicit default).
    pub fn all_volume() -> Self {
        ServerMix {
            volume: 1.0,
            mid_range: 0.0,
            high_end: 0.0,
            year: 2006,
        }
    }

    /// A typical enterprise mix: mostly volume, some mid-range, a few
    /// high-end machines.
    pub fn typical_enterprise() -> Self {
        ServerMix {
            volume: 0.80,
            mid_range: 0.17,
            high_end: 0.03,
            year: 2006,
        }
    }

    /// Validates that the fractions form a distribution.
    pub fn validate(&self) {
        let sum = self.volume + self.mid_range + self.high_end;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "server mix fractions must sum to 1, got {sum}"
        );
        assert!(
            self.volume >= 0.0 && self.mid_range >= 0.0 && self.high_end >= 0.0,
            "fractions must be non-negative"
        );
    }

    /// Samples a class according to the mix.
    pub fn sample(&self, rng: &mut Rng) -> ServerClass {
        let x = rng.next_f64();
        if x < self.volume {
            ServerClass::Volume
        } else if x < self.volume + self.mid_range {
            ServerClass::MidRange
        } else {
            ServerClass::HighEnd
        }
    }

    /// The power spec for a class under this mix's year.
    pub fn power_spec(&self, class: ServerClass) -> ServerPowerSpec {
        ServerPowerSpec::Linear(class_power_model(class, self.year))
    }
}

impl Default for ServerMix {
    fn default() -> Self {
        Self::all_volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_energy::power::PowerModel;

    #[test]
    fn all_volume_samples_only_volume() {
        let mix = ServerMix::all_volume();
        mix.validate();
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), ServerClass::Volume);
        }
    }

    #[test]
    fn enterprise_mix_matches_fractions() {
        let mix = ServerMix::typical_enterprise();
        mix.validate();
        let mut rng = Rng::new(2);
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            match mix.sample(&mut rng) {
                ServerClass::Volume => counts[0] += 1,
                ServerClass::MidRange => counts[1] += 1,
                ServerClass::HighEnd => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.80).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.17).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.03).abs() < 0.01);
    }

    #[test]
    fn class_power_ordering_holds() {
        let mix = ServerMix::typical_enterprise();
        let vol = mix.power_spec(ServerClass::Volume).peak_power_w();
        let mid = mix.power_spec(ServerClass::MidRange).peak_power_w();
        let high = mix.power_spec(ServerClass::HighEnd).peak_power_w();
        assert!(vol < mid && mid < high, "{vol} < {mid} < {high}");
    }

    #[test]
    fn year_scales_the_models() {
        let old = ServerMix {
            year: 2000,
            ..ServerMix::all_volume()
        };
        let new = ServerMix {
            year: 2006,
            ..ServerMix::all_volume()
        };
        assert!(
            old.power_spec(ServerClass::Volume).peak_power_w()
                < new.power_spec(ServerClass::Volume).peak_power_w(),
            "power grew over the Table 1 years"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn validate_rejects_bad_fractions() {
        ServerMix {
            volume: 0.5,
            mid_range: 0.2,
            high_end: 0.1,
            year: 2006,
        }
        .validate();
    }
}
