//! Multi-cluster federation.
//!
//! §4 of the paper motivates the clustered organisation with scalability:
//! *"as the number of systems increase we add new clusters"*. Each cluster
//! keeps its own leader and runs the §4 protocol on local state; the
//! federation layer adds the inter-cluster tier — when one cluster runs
//! hot while another runs cold, whole applications migrate across cluster
//! boundaries over the (slower, costlier) core network.
//!
//! This is the paper's future-work tier, built to the same cost
//! discipline: a cross-cluster move is strictly more expensive than an
//! in-cluster one (`q_inter > q_intra > p`), so the federation only acts
//! on sustained imbalance beyond configurable watermarks.

use crate::cluster::{Cluster, ClusterConfig};
use crate::migration::MigrationCostModel;
use crate::server::Server;
use ecolb_metrics::timeseries::TimeSeries;
use ecolb_workload::application::Application;

/// Federation-level tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// A cluster above this load fraction is a cross-cluster donor.
    pub high_watermark: f64,
    /// A cluster below this load fraction is a cross-cluster receiver.
    pub low_watermark: f64,
    /// Maximum applications moved across clusters per interval.
    pub moves_per_interval: usize,
    /// Cost model of the inter-cluster core network (slower than the
    /// in-cluster fabric).
    pub inter_cluster_network: MigrationCostModel,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            high_watermark: 0.70,
            low_watermark: 0.45,
            moves_per_interval: 8,
            // A quarter of the in-cluster bandwidth, double the transfer
            // overhead: the WAN/core tier.
            inter_cluster_network: MigrationCostModel {
                link_gbps: 2.5,
                transfer_overhead_w: 60.0,
                ..MigrationCostModel::default()
            },
        }
    }
}

/// Result of a federation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationReport {
    /// Per-cluster load series.
    pub cluster_loads: Vec<TimeSeries>,
    /// Applications moved across cluster boundaries.
    pub cross_migrations: u64,
    /// Energy charged to cross-cluster transfers, Joules.
    pub cross_migration_energy_j: f64,
    /// Per-interval spread between the hottest and coldest cluster.
    pub load_spread: TimeSeries,
    /// Total servers asleep across the federation at the end.
    pub sleeping_total: usize,
}

/// A set of clusters with an inter-cluster balancing tier.
#[derive(Debug)]
pub struct Federation {
    clusters: Vec<Cluster>,
    config: FederationConfig,
    cross_migrations: u64,
    cross_migration_energy_j: f64,
}

impl Federation {
    /// Builds a federation; each cluster gets an independent seed derived
    /// from `seed`.
    pub fn new(configs: Vec<ClusterConfig>, config: FederationConfig, seed: u64) -> Self {
        assert!(!configs.is_empty(), "federation needs at least one cluster");
        assert!(
            config.low_watermark < config.high_watermark,
            "watermarks inverted: {} >= {}",
            config.low_watermark,
            config.high_watermark
        );
        let clusters = configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| Cluster::new(c, seed.wrapping_add(0x9E37 * (i as u64 + 1))))
            .collect();
        Federation {
            clusters,
            config,
            cross_migrations: 0,
            cross_migration_energy_j: 0.0,
        }
    }

    /// The member clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Cross-cluster migrations so far.
    pub fn cross_migrations(&self) -> u64 {
        self.cross_migrations
    }

    /// Load fraction of each cluster.
    pub fn loads(&self) -> Vec<f64> {
        self.clusters.iter().map(Cluster::load_fraction).collect()
    }

    /// Mean load fraction across member clusters — a defined 0.0
    /// (never NaN) for an empty federation, matching the guard style of
    /// [`Cluster::interval_stats`].
    pub fn mean_load(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        self.loads().iter().sum::<f64>() / self.clusters.len() as f64
    }

    /// One federation interval: every cluster runs its own reallocation
    /// interval, then the inter-cluster tier moves applications from hot
    /// clusters to cold ones.
    pub fn run_interval(&mut self) {
        for c in &mut self.clusters {
            c.run_interval();
        }
        self.rebalance_across_clusters();
    }

    fn rebalance_across_clusters(&mut self) {
        for _ in 0..self.config.moves_per_interval {
            let loads = self.loads();
            let (hot, &hot_load) = match loads.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))
            {
                Some(x) => x,
                None => return,
            };
            let (cold, &cold_load) =
                match loads.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
                    Some(x) => x,
                    None => return,
                };
            if hot == cold
                || hot_load < self.config.high_watermark
                || cold_load > self.config.low_watermark
            {
                return; // no sustained imbalance
            }
            if !self.move_one_app(hot, cold) {
                return; // nothing movable
            }
        }
    }

    /// Moves the largest app of the hot cluster's most loaded server onto
    /// the cold cluster's fullest fitting server. Returns false when no
    /// placement exists.
    fn move_one_app(&mut self, hot: usize, cold: usize) -> bool {
        let donor_server = match self.clusters[hot]
            .servers()
            .iter()
            .filter(|s| s.is_awake() && s.app_count() > 0)
            .max_by(|a, b| a.load().total_cmp(&b.load()))
        {
            Some(s) => s.id(),
            None => return false,
        };
        // The donor passed the `app_count() > 0` filter, so it has a
        // largest app; bail out rather than panic if that ever changes.
        let app_id = match self.clusters[hot].servers()[donor_server.index()]
            .apps()
            .iter()
            .max_by(|a, b| a.demand.total_cmp(&b.demand))
        {
            Some(a) => a.id,
            None => return false,
        };
        // Find a receiver in the cold cluster before committing the take.
        let Some(demand) = self.clusters[hot].servers()[donor_server.index()]
            .apps()
            .iter()
            .find(|a| a.id == app_id)
            .map(|a| a.demand)
        else {
            return false;
        };
        let receiver = self.clusters[cold]
            .servers()
            .iter()
            .filter(|s| s.is_awake() && s.load() + demand <= s.boundaries().opt_high)
            .max_by(|a, b| a.load().total_cmp(&b.load()))
            .map(Server::id);
        let Some(receiver) = receiver else {
            return false;
        };

        let Some(app) = self.clusters[hot].take_app_for_federation(donor_server, app_id) else {
            return false;
        };
        let app: Application = app;
        let cost = self.config.inter_cluster_network.cost_of(&app);
        self.cross_migration_energy_j += cost.energy_j;
        self.cross_migrations += 1;
        self.clusters[cold].place_app_for_federation(receiver, app);
        true
    }

    /// Runs `intervals` federation intervals.
    pub fn run(&mut self, intervals: u64) -> FederationReport {
        let mut cluster_loads: Vec<TimeSeries> = (0..self.clusters.len())
            .map(|i| TimeSeries::new(format!("cluster{i}_load")))
            .collect();
        let mut load_spread = TimeSeries::new("load_spread");
        for _ in 0..intervals {
            self.run_interval();
            let loads = self.loads();
            for (ts, &l) in cluster_loads.iter_mut().zip(&loads) {
                ts.push(l);
            }
            let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
            load_spread.push(max - min);
        }
        FederationReport {
            cluster_loads,
            cross_migrations: self.cross_migrations,
            cross_migration_energy_j: self.cross_migration_energy_j,
            load_spread,
            sleeping_total: self.clusters.iter().map(Cluster::sleeping_count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_workload::generator::WorkloadSpec;

    fn federation(loads: &[WorkloadSpec], seed: u64) -> Federation {
        let configs = loads.iter().map(|w| ClusterConfig::paper(60, *w)).collect();
        // A 70 %-load cluster hovers right at the default watermark;
        // tighten it so the imbalance is unambiguous for the tests.
        let config = FederationConfig {
            high_watermark: 0.60,
            ..Default::default()
        };
        Federation::new(configs, config, seed)
    }

    #[test]
    fn imbalanced_federation_moves_apps_to_the_cold_cluster() {
        let mut fed = federation(
            &[
                WorkloadSpec::paper_high_load(),
                WorkloadSpec::paper_low_load(),
            ],
            1,
        );
        let before = fed.loads();
        assert!(before[0] > before[1]);
        let report = fed.run(15);
        assert!(report.cross_migrations > 0, "hot→cold transfers happened");
        assert!(report.cross_migration_energy_j > 0.0);
        // The spread narrows relative to the start.
        let spread = report.load_spread.values();
        assert!(
            spread.last().unwrap() < spread.first().unwrap(),
            "spread {:?} should narrow",
            (spread.first(), spread.last())
        );
    }

    #[test]
    fn balanced_federation_stays_put() {
        let mut fed = federation(
            &[
                WorkloadSpec::paper_low_load(),
                WorkloadSpec::paper_low_load(),
            ],
            2,
        );
        let report = fed.run(10);
        assert_eq!(report.cross_migrations, 0, "no imbalance, no WAN traffic");
    }

    #[test]
    fn single_cluster_federation_is_a_noop_tier() {
        let mut fed = federation(&[WorkloadSpec::paper_high_load()], 3);
        let report = fed.run(5);
        assert_eq!(report.cross_migrations, 0);
        assert_eq!(report.cluster_loads.len(), 1);
    }

    #[test]
    fn watermarks_gate_transfers() {
        let configs = vec![
            ClusterConfig::paper(60, WorkloadSpec::paper_high_load()),
            ClusterConfig::paper(60, WorkloadSpec::paper_low_load()),
        ];
        // Impossible watermark: hot threshold above any achievable load.
        let config = FederationConfig {
            high_watermark: 0.99,
            ..Default::default()
        };
        let mut fed = Federation::new(configs, config, 4);
        let report = fed.run(10);
        assert_eq!(report.cross_migrations, 0);
    }

    #[test]
    fn federation_runs_are_deterministic() {
        let mk = || {
            federation(
                &[
                    WorkloadSpec::paper_high_load(),
                    WorkloadSpec::paper_low_load(),
                ],
                5,
            )
        };
        let a = mk().run(8);
        let b = mk().run(8);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn rejects_inverted_watermarks() {
        let configs = vec![ClusterConfig::paper(10, WorkloadSpec::paper_low_load())];
        let config = FederationConfig {
            high_watermark: 0.3,
            low_watermark: 0.6,
            ..Default::default()
        };
        Federation::new(configs, config, 0);
    }
}
