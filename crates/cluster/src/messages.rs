//! Leader ↔ server messaging and communication-cost accounting.
//!
//! The paper's cluster is organised as a **star topology**: every server is
//! connected to the leader, reports its regime periodically, and the leader
//! brokers load-balancing partners (§4). Each server also tracks
//! `j_k(t + τ_k)` — *"cost of communication and data transfer to or from
//! the leader for the next reallocation interval"*. This module defines
//! the message vocabulary and the per-server communication ledger behind
//! `j_k`.

use crate::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_workload::application::AppId;

/// Protocol messages exchanged over the star topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → leader periodic report of its regime and load.
    RegimeReport {
        /// Reporting server.
        from: ServerId,
        /// Regime it will operate in next interval.
        regime: OperatingRegime,
        /// Its current normalized load.
        load: f64,
    },
    /// Server → leader: R1/R5 notification requesting partner search.
    AssistanceRequest {
        /// Requesting server.
        from: ServerId,
        /// Regime that triggered the request.
        regime: OperatingRegime,
    },
    /// Leader → server: candidate partners with estimated transfer costs.
    PartnerList {
        /// Receiving server.
        to: ServerId,
        /// `(candidate, candidate load)` pairs.
        candidates: Vec<(ServerId, f64)>,
    },
    /// Server ↔ server: direct negotiation proposing a VM transfer.
    TransferProposal {
        /// Donor server.
        from: ServerId,
        /// Proposed receiver.
        to: ServerId,
        /// Application (VM) to move.
        app: AppId,
        /// Demand of the application.
        demand: f64,
    },
    /// Receiver's answer to a proposal.
    TransferAnswer {
        /// Answering server.
        from: ServerId,
        /// Original donor.
        to: ServerId,
        /// Application concerned.
        app: AppId,
        /// Acceptance flag.
        accept: bool,
    },
    /// Leader → sleeping server: wake-up order (R5 with no partners, §4
    /// action 5).
    WakeOrder {
        /// Server to wake.
        to: ServerId,
    },
}

impl Message {
    /// Approximate wire size in bytes, used for the communication-cost
    /// model. Control messages are small and fixed-size; the partner list
    /// scales with its length.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Message::RegimeReport { .. } => 24,
            Message::AssistanceRequest { .. } => 16,
            Message::PartnerList { candidates, .. } => 16 + 12 * candidates.len() as u64,
            Message::TransferProposal { .. } => 32,
            Message::TransferAnswer { .. } => 20,
            Message::WakeOrder { .. } => 12,
        }
    }
}

/// Per-server communication ledger (the `j_k` cost input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommLedger {
    /// Messages sent by this server (or to it by the leader).
    pub messages: u64,
    /// Total bytes across those messages.
    pub bytes: u64,
}

impl CommLedger {
    /// Records one message.
    pub fn record(&mut self, msg: &Message) {
        self.messages += 1;
        self.bytes += msg.wire_bytes();
    }

    /// Communication cost `j_k` in abstract cost units: a fixed per-message
    /// overhead plus a per-byte term. The constants keep control traffic
    /// cheap relative to a VM migration (q_k), matching the paper's cost
    /// ordering `p < j ≪ q`.
    pub fn cost(&self) -> f64 {
        self.messages as f64 * 0.01 + self.bytes as f64 * 1e-4
    }

    /// Merges another ledger.
    pub fn merge(&mut self, other: &CommLedger) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Cluster-wide message statistics kept by the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Regime reports received.
    pub regime_reports: u64,
    /// Assistance requests received.
    pub assistance_requests: u64,
    /// Partner lists sent.
    pub partner_lists: u64,
    /// Transfer proposals observed.
    pub transfer_proposals: u64,
    /// Transfer answers observed.
    pub transfer_answers: u64,
    /// Wake orders issued.
    pub wake_orders: u64,
}

impl MessageStats {
    /// Tallies one message into the appropriate counter.
    pub fn record(&mut self, msg: &Message) {
        match msg {
            Message::RegimeReport { .. } => self.regime_reports += 1,
            Message::AssistanceRequest { .. } => self.assistance_requests += 1,
            Message::PartnerList { .. } => self.partner_lists += 1,
            Message::TransferProposal { .. } => self.transfer_proposals += 1,
            Message::TransferAnswer { .. } => self.transfer_answers += 1,
            Message::WakeOrder { .. } => self.wake_orders += 1,
        }
    }

    /// Total messages recorded.
    pub fn total(&self) -> u64 {
        self.regime_reports
            + self.assistance_requests
            + self.partner_lists
            + self.transfer_proposals
            + self.transfer_answers
            + self.wake_orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_partner_list() {
        let short = Message::PartnerList {
            to: ServerId(0),
            candidates: vec![],
        };
        let long = Message::PartnerList {
            to: ServerId(0),
            candidates: (0..10).map(|i| (ServerId(i), 0.5)).collect(),
        };
        assert_eq!(short.wire_bytes(), 16);
        assert_eq!(long.wire_bytes(), 16 + 120);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = CommLedger::default();
        l.record(&Message::WakeOrder { to: ServerId(1) });
        l.record(&Message::AssistanceRequest {
            from: ServerId(1),
            regime: OperatingRegime::UndesirableHigh,
        });
        assert_eq!(l.messages, 2);
        assert_eq!(l.bytes, 28);
        assert!(l.cost() > 0.0);
    }

    #[test]
    fn ledger_merge_sums() {
        let mut a = CommLedger {
            messages: 2,
            bytes: 40,
        };
        a.merge(&CommLedger {
            messages: 3,
            bytes: 60,
        });
        assert_eq!(
            a,
            CommLedger {
                messages: 5,
                bytes: 100
            }
        );
    }

    #[test]
    fn cost_grows_with_traffic() {
        let light = CommLedger {
            messages: 1,
            bytes: 20,
        };
        let heavy = CommLedger {
            messages: 100,
            bytes: 4000,
        };
        assert!(heavy.cost() > light.cost());
    }

    #[test]
    fn stats_classify_messages() {
        let mut s = MessageStats::default();
        s.record(&Message::RegimeReport {
            from: ServerId(0),
            regime: OperatingRegime::Optimal,
            load: 0.5,
        });
        s.record(&Message::TransferProposal {
            from: ServerId(0),
            to: ServerId(1),
            app: AppId(7),
            demand: 0.1,
        });
        s.record(&Message::TransferAnswer {
            from: ServerId(1),
            to: ServerId(0),
            app: AppId(7),
            accept: true,
        });
        s.record(&Message::WakeOrder { to: ServerId(2) });
        assert_eq!(s.regime_reports, 1);
        assert_eq!(s.transfer_proposals, 1);
        assert_eq!(s.transfer_answers, 1);
        assert_eq!(s.wake_orders, 1);
        assert_eq!(s.total(), 4);
    }
}
