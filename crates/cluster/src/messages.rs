//! Leader ↔ server messaging and communication-cost accounting.
//!
//! The paper's cluster is organised as a **star topology**: every server is
//! connected to the leader, reports its regime periodically, and the leader
//! brokers load-balancing partners (§4). Each server also tracks
//! `j_k(t + τ_k)` — *"cost of communication and data transfer to or from
//! the leader for the next reallocation interval"*. This module defines
//! the message vocabulary and the per-server communication ledger behind
//! `j_k`.

use crate::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_simcore::time::SimDuration;
use ecolb_workload::application::AppId;

/// Protocol messages exchanged over the star topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → leader periodic report of its regime and load.
    RegimeReport {
        /// Reporting server.
        from: ServerId,
        /// Regime it will operate in next interval.
        regime: OperatingRegime,
        /// Its current normalized load.
        load: f64,
    },
    /// Server → leader: R1/R5 notification requesting partner search.
    AssistanceRequest {
        /// Requesting server.
        from: ServerId,
        /// Regime that triggered the request.
        regime: OperatingRegime,
    },
    /// Leader → server: candidate partners with estimated transfer costs.
    PartnerList {
        /// Receiving server.
        to: ServerId,
        /// `(candidate, candidate load)` pairs.
        candidates: Vec<(ServerId, f64)>,
    },
    /// Server ↔ server: direct negotiation proposing a VM transfer.
    TransferProposal {
        /// Donor server.
        from: ServerId,
        /// Proposed receiver.
        to: ServerId,
        /// Application (VM) to move.
        app: AppId,
        /// Demand of the application.
        demand: f64,
    },
    /// Receiver's answer to a proposal.
    TransferAnswer {
        /// Answering server.
        from: ServerId,
        /// Original donor.
        to: ServerId,
        /// Application concerned.
        app: AppId,
        /// Acceptance flag.
        accept: bool,
    },
    /// Leader → sleeping server: wake-up order (R5 with no partners, §4
    /// action 5).
    WakeOrder {
        /// Server to wake.
        to: ServerId,
    },
    /// Leader → all servers: periodic liveness beacon. Missing beacons
    /// trigger timeout-based failover in the recovery protocol.
    Heartbeat {
        /// Current leader.
        leader: ServerId,
        /// Election epoch the beacon belongs to.
        epoch: u64,
    },
    /// Broadcast announcing a completed failover: the new leader and the
    /// epoch it starts.
    LeaderElected {
        /// Newly elected leader (lowest-id live server).
        leader: ServerId,
        /// New election epoch.
        epoch: u64,
    },
}

impl Message {
    /// Approximate wire size in bytes, used for the communication-cost
    /// model. Control messages are small and fixed-size; the partner list
    /// scales with its length.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Message::RegimeReport { .. } => 24,
            Message::AssistanceRequest { .. } => 16,
            Message::PartnerList { candidates, .. } => 16 + 12 * candidates.len() as u64,
            Message::TransferProposal { .. } => 32,
            Message::TransferAnswer { .. } => 20,
            Message::WakeOrder { .. } => 12,
            Message::Heartbeat { .. } => 16,
            Message::LeaderElected { .. } => 16,
        }
    }
}

/// Per-server communication ledger (the `j_k` cost input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommLedger {
    /// Messages sent by this server (or to it by the leader).
    pub messages: u64,
    /// Total bytes across those messages.
    pub bytes: u64,
}

impl CommLedger {
    /// Records one message.
    pub fn record(&mut self, msg: &Message) {
        self.messages += 1;
        self.bytes += msg.wire_bytes();
    }

    /// Communication cost `j_k` in abstract cost units: a fixed per-message
    /// overhead plus a per-byte term. The constants keep control traffic
    /// cheap relative to a VM migration (q_k), matching the paper's cost
    /// ordering `p < j ≪ q`.
    pub fn cost(&self) -> f64 {
        self.messages as f64 * 0.01 + self.bytes as f64 * 1e-4
    }

    /// Merges another ledger.
    pub fn merge(&mut self, other: &CommLedger) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Cluster-wide message statistics kept by the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Regime reports received.
    pub regime_reports: u64,
    /// Assistance requests received.
    pub assistance_requests: u64,
    /// Partner lists sent.
    pub partner_lists: u64,
    /// Transfer proposals observed.
    pub transfer_proposals: u64,
    /// Transfer answers observed.
    pub transfer_answers: u64,
    /// Wake orders issued.
    pub wake_orders: u64,
    /// Liveness beacons sent by the leader.
    pub heartbeats: u64,
    /// Leader-election announcements observed.
    pub elections: u64,
}

impl MessageStats {
    /// Tallies one message into the appropriate counter.
    pub fn record(&mut self, msg: &Message) {
        match msg {
            Message::RegimeReport { .. } => self.regime_reports += 1,
            Message::AssistanceRequest { .. } => self.assistance_requests += 1,
            Message::PartnerList { .. } => self.partner_lists += 1,
            Message::TransferProposal { .. } => self.transfer_proposals += 1,
            Message::TransferAnswer { .. } => self.transfer_answers += 1,
            Message::WakeOrder { .. } => self.wake_orders += 1,
            Message::Heartbeat { .. } => self.heartbeats += 1,
            Message::LeaderElected { .. } => self.elections += 1,
        }
    }

    /// Total messages recorded.
    pub fn total(&self) -> u64 {
        self.regime_reports
            + self.assistance_requests
            + self.partner_lists
            + self.transfer_proposals
            + self.transfer_answers
            + self.wake_orders
            + self.heartbeats
            + self.elections
    }
}

/// Bounded retry-with-backoff policy for messages lost on a faulty link.
///
/// The sender makes up to `max_attempts` tries; attempt `n` (1-based)
/// waits `base_backoff × 2^(n−2)` before resending, i.e. the first
/// attempt is immediate and each retry doubles the wait. After the last
/// failed attempt the message is abandoned and the receiver simply works
/// from stale state until the next reporting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts (including the first). 0 is treated as 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Backoff waited *before* the given 1-based attempt: zero for the
    /// first attempt, `base × 2^(attempt−2)` afterwards (saturating on
    /// overflow).
    pub fn backoff_before(&self, attempt: u32) -> SimDuration {
        if attempt <= 1 {
            return SimDuration::ZERO;
        }
        let doublings = attempt - 2;
        let factor = if doublings >= 63 {
            u64::MAX
        } else {
            1u64 << doublings
        };
        SimDuration::from_ticks(self.base_backoff.ticks().saturating_mul(factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_partner_list() {
        let short = Message::PartnerList {
            to: ServerId(0),
            candidates: vec![],
        };
        let long = Message::PartnerList {
            to: ServerId(0),
            candidates: (0..10).map(|i| (ServerId(i), 0.5)).collect(),
        };
        assert_eq!(short.wire_bytes(), 16);
        assert_eq!(long.wire_bytes(), 16 + 120);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = CommLedger::default();
        l.record(&Message::WakeOrder { to: ServerId(1) });
        l.record(&Message::AssistanceRequest {
            from: ServerId(1),
            regime: OperatingRegime::UndesirableHigh,
        });
        assert_eq!(l.messages, 2);
        assert_eq!(l.bytes, 28);
        assert!(l.cost() > 0.0);
    }

    #[test]
    fn ledger_merge_sums() {
        let mut a = CommLedger {
            messages: 2,
            bytes: 40,
        };
        a.merge(&CommLedger {
            messages: 3,
            bytes: 60,
        });
        assert_eq!(
            a,
            CommLedger {
                messages: 5,
                bytes: 100
            }
        );
    }

    #[test]
    fn cost_grows_with_traffic() {
        let light = CommLedger {
            messages: 1,
            bytes: 20,
        };
        let heavy = CommLedger {
            messages: 100,
            bytes: 4000,
        };
        assert!(heavy.cost() > light.cost());
    }

    #[test]
    fn stats_classify_messages() {
        let mut s = MessageStats::default();
        s.record(&Message::RegimeReport {
            from: ServerId(0),
            regime: OperatingRegime::Optimal,
            load: 0.5,
        });
        s.record(&Message::TransferProposal {
            from: ServerId(0),
            to: ServerId(1),
            app: AppId(7),
            demand: 0.1,
        });
        s.record(&Message::TransferAnswer {
            from: ServerId(1),
            to: ServerId(0),
            app: AppId(7),
            accept: true,
        });
        s.record(&Message::WakeOrder { to: ServerId(2) });
        s.record(&Message::Heartbeat {
            leader: ServerId(0),
            epoch: 0,
        });
        s.record(&Message::LeaderElected {
            leader: ServerId(1),
            epoch: 1,
        });
        assert_eq!(s.regime_reports, 1);
        assert_eq!(s.transfer_proposals, 1);
        assert_eq!(s.transfer_answers, 1);
        assert_eq!(s.wake_orders, 1);
        assert_eq!(s.heartbeats, 1);
        assert_eq!(s.elections, 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn recovery_messages_have_fixed_wire_size() {
        let hb = Message::Heartbeat {
            leader: ServerId(0),
            epoch: 9,
        };
        let el = Message::LeaderElected {
            leader: ServerId(3),
            epoch: 1,
        };
        assert_eq!(hb.wire_bytes(), 16);
        assert_eq!(el.wire_bytes(), 16);
    }

    #[test]
    fn retry_backoff_doubles_after_immediate_first_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(1), SimDuration::ZERO);
        assert_eq!(p.backoff_before(2), SimDuration::from_millis(100));
        assert_eq!(p.backoff_before(3), SimDuration::from_millis(200));
        assert_eq!(p.backoff_before(4), SimDuration::from_millis(400));
        assert_eq!(p.backoff_before(0), SimDuration::ZERO);
    }

    #[test]
    fn retry_backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: SimDuration::from_secs(1),
        };
        let huge = p.backoff_before(200);
        assert_eq!(huge, SimDuration::from_ticks(u64::MAX));
    }
}
