//! The cluster: servers + leader + the reallocation-interval driver.
//!
//! [`Cluster`] assembles the heterogeneous model of §4: `n` servers with
//! per-server regime boundaries sampled from the paper's uniform ranges,
//! initial loads from a [`WorkloadSpec`] band, and a leader on a star
//! topology. [`Cluster::run_interval`] executes one reallocation interval
//! `τ`:
//!
//! 1. **demand evolution** — each application may request a demand increase
//!    (bounded by its `λ_{i,k}`), served by **vertical scaling** when the
//!    host has free capacity below `α^{opt,h}` (a low-cost *local*
//!    decision, `p_k`) or by **horizontal scaling** — migrating the VM to a
//!    receiver — otherwise (a high-cost *in-cluster* decision, `q_k`);
//!    demands also decay stochastically, keeping the cluster load roughly
//!    stationary as in the paper's 40-interval runs;
//! 2. **balancing** — the full §4 regime protocol
//!    ([`crate::balance::balance_round`]);
//! 3. **accounting** — energy meters advance, the decision ledger closes
//!    the interval, and the census/sleeper series gain a point.

use crate::admission::{
    AdmissionController, AdmissionPolicy, AdmissionStats, ArrivalSpec, ServiceRequest,
};
use crate::balance::{
    balance_round_scratch, cluster_load_fraction, BalanceConfig, BalanceOutcome, BalanceScratch,
    MigrationRecord,
};
use crate::leader::Leader;
use crate::messages::Message;
use crate::migration::MigrationCostModel;
use crate::mix::ServerMix;
use crate::recovery::{FaultHooks, NoFaults, RecoveryConfig, RecoveryStats};
use crate::scaling::{DecisionKind, DecisionLedger, IntervalCounts};
use crate::server::{Server, ServerId};
use ecolb_energy::accounting::EnergyBreakdown;
use ecolb_energy::regimes::{OperatingRegime, RegimeBoundaries, RegimeCensus};
use ecolb_energy::sleep::SleepModel;
use ecolb_metrics::timeseries::TimeSeries;
use ecolb_simcore::rng::Rng;
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_trace::{NoTrace, SpanKind, TraceEventKind, Tracer};
use ecolb_workload::application::{AppId, Application};
use ecolb_workload::generator::{generate_server_apps, AppIdAllocator, WorkloadSpec};

/// Demand floor below which a VM is decommissioned (its application has
/// effectively gone idle).
const VM_RETIRE_FLOOR: f64 = 0.005;

/// Full configuration of a cluster experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of servers `n`.
    pub n_servers: usize,
    /// Initial workload band and application parameters.
    pub workload: WorkloadSpec,
    /// Balancing-round tunables.
    pub balance: BalanceConfig,
    /// VM migration cost model.
    pub migration: MigrationCostModel,
    /// Sleep transition model.
    pub sleep: SleepModel,
    /// Reallocation interval length `τ`.
    pub realloc_interval: SimDuration,
    /// Per-application, per-interval probability of a demand-growth
    /// request (a *scaling decision*).
    pub growth_prob: f64,
    /// Per-application, per-interval probability of silent demand decay
    /// (no decision recorded; keeps the load stationary).
    pub shrink_prob: f64,
    /// Optional stream of new service requests per interval.
    pub arrivals: Option<ArrivalSpec>,
    /// Admission policy for new service requests.
    pub admission: AdmissionPolicy,
    /// Heterogeneous server-class mix (power models per Table 1 class).
    pub server_mix: ServerMix,
}

impl ClusterConfig {
    /// The paper's experiment configuration for a given cluster size and
    /// load band. The leader's consolidation budget scales with the
    /// cluster (it is one coordinator serialising housekeeping), which is
    /// what stretches the low-load settling transient to the ~20 intervals
    /// Figure 3 shows.
    pub fn paper(n_servers: usize, workload: WorkloadSpec) -> Self {
        ClusterConfig {
            n_servers,
            workload,
            balance: BalanceConfig {
                drain_candidates_per_interval: Some((n_servers / 6).max(4)),
                ..BalanceConfig::default()
            },
            migration: MigrationCostModel::default(),
            sleep: SleepModel::default(),
            realloc_interval: SimDuration::from_secs(300),
            growth_prob: 0.05,
            shrink_prob: 0.05,
            arrivals: None,
            admission: AdmissionPolicy::AlwaysAdmit,
            server_mix: ServerMix::all_volume(),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper(100, WorkloadSpec::paper_low_load())
    }
}

/// Result of a multi-interval run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRunReport {
    /// Census of awake servers before any balancing.
    pub initial_census: RegimeCensus,
    /// Census of awake servers after the final interval.
    pub final_census: RegimeCensus,
    /// Per-interval in-cluster/local decision ratio (Figure 3).
    pub ratio_series: TimeSeries,
    /// Per-interval count of sleeping servers (Table 2 input).
    pub sleeping_series: TimeSeries,
    /// Per-interval cluster load fraction.
    pub load_series: TimeSeries,
    /// Lifetime decision totals.
    pub decision_totals: IntervalCounts,
    /// Total VM migrations committed.
    pub migrations: u64,
    /// Cluster energy over the run (server draw).
    pub energy: EnergyBreakdown,
    /// Energy charged to VM migrations, Joules.
    pub migration_energy_j: f64,
    /// Energy the same cluster would have used with every server awake at
    /// its initial load for the whole run (the "always-on" reference).
    pub reference_energy_j: f64,
    /// Admission statistics (all zero when no arrival stream is
    /// configured).
    pub admission: AdmissionStats,
    /// QoS violations: server-intervals spent saturated (demand above
    /// physical capacity — requests queue and response times blow up).
    pub saturation_violations: u64,
    /// Server-intervals spent in an undesirable regime (R1 or R5) — the
    /// paper's second policy-quality metric.
    pub undesirable_server_intervals: u64,
}

impl ClusterRunReport {
    /// Energy-savings fraction versus the always-on reference.
    pub fn savings_fraction(&self) -> f64 {
        if self.reference_energy_j <= 0.0 {
            return 0.0;
        }
        1.0 - (self.energy.total_j() + self.migration_energy_j) / self.reference_energy_j
    }
}

/// Reusable per-interval working storage, struct-of-arrays style: the
/// interval driver's hot loops (receiver pooling, regime classification,
/// digest dup-detection, balancing-phase lists) write into these compact
/// buffers instead of allocating fresh `Vec`s each interval. After the
/// first interval every buffer sits at steady-state capacity, so the
/// interval loop runs allocation-free. Purely an execution detail:
/// contents and iteration order match the allocating formulation exactly,
/// keeping reports and traces byte-identical.
#[derive(Debug, Clone, Default)]
struct IntervalScratch {
    /// Balancing-phase working buffers (rosters, partner lists, app sets).
    balance: BalanceScratch,
    /// Receiver pool for horizontal scaling: `(server, remaining room)`.
    pool: Vec<(ServerId, f64)>,
    /// Batched per-server `(awake, regime, load)` classification feeding
    /// the QoS census and the per-interval regime samples.
    samples: Vec<(bool, OperatingRegime, f64)>,
    /// Digest duplicate-detection bitmap, VM-id indexed.
    digest_seen: Vec<bool>,
    /// Digest overflow ids (VMs minted by a foreign allocator).
    digest_overflow: Vec<u64>,
}

/// A simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<Server>,
    leader: Leader,
    ledger: DecisionLedger,
    rng: Rng,
    ids: AppIdAllocator,
    now: SimTime,
    interval_index: u64,
    migration_energy_j: f64,
    migrations: u64,
    /// Every VM transfer committed in the most recent interval (evolve
    /// phase and balance phase), for the timed simulation layer.
    interval_migrations: Vec<MigrationRecord>,
    admission: AdmissionController,
    saturation_violations: u64,
    undesirable_server_intervals: u64,
    /// Table 1 class of each server, aligned with `servers`.
    classes: Vec<ecolb_energy::server_class::ServerClass>,
    /// Average power (Watts) the initial placement would burn on awake
    /// servers — the always-on reference rate.
    reference_power_w: f64,
    /// Server currently hosting the leader role.
    leader_host: ServerId,
    /// Election epoch: bumped on every completed failover.
    leader_epoch: u64,
    /// Consecutive intervals without a leader heartbeat.
    missed_heartbeats: u32,
    /// Recovery-protocol tunables.
    recovery: RecoveryConfig,
    /// Recovery-protocol accounting (all zero in fault-free runs).
    recovery_stats: RecoveryStats,
    /// VM-ledger counters behind the per-interval state digest, which
    /// the chaos invariant checker balances against the id allocator:
    /// `created + imported == hosted + retired + orphaned + exported`.
    vms_retired: u64,
    vms_orphaned: u64,
    vms_imported: u64,
    vms_exported: u64,
    /// Reusable interval working buffers (see [`IntervalScratch`]).
    scratch: IntervalScratch,
}

impl Cluster {
    /// Builds a cluster: per-server boundaries sampled from the paper's
    /// ranges, apps from the workload band, all servers awake in C0.
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        assert!(config.n_servers > 0, "cluster needs at least one server");
        assert!(
            config.growth_prob >= 0.0
                && config.shrink_prob >= 0.0
                && config.growth_prob + config.shrink_prob <= 1.0,
            "growth/shrink probabilities must fit in [0, 1]"
        );
        config.server_mix.validate();
        let mut rng = Rng::new(seed);
        let mut ids = AppIdAllocator::new();
        let mut servers = Vec::with_capacity(config.n_servers);
        let mut classes = Vec::with_capacity(config.n_servers);
        let mut reference_power_w = 0.0;
        for i in 0..config.n_servers {
            let boundaries = RegimeBoundaries::sample_paper(&mut rng);
            let class = config.server_mix.sample(&mut rng);
            let power = config.server_mix.power_spec(class);
            classes.push(class);
            let mut server = Server::new(ServerId(i as u32), boundaries, power, SimTime::ZERO);
            for app in generate_server_apps(&config.workload, &mut ids, &mut rng) {
                server.place_app(app);
            }
            reference_power_w += {
                use ecolb_energy::power::PowerModel;
                server.power().power_w(server.normalized_performance())
            };
            servers.push(server);
        }
        let leader = Leader::new(config.n_servers);
        let config_admission = config.admission;
        Cluster {
            config,
            servers,
            leader,
            ledger: DecisionLedger::new(),
            rng,
            ids,
            now: SimTime::ZERO,
            interval_index: 0,
            migration_energy_j: 0.0,
            migrations: 0,
            interval_migrations: Vec::new(),
            admission: AdmissionController::new(config_admission),
            saturation_violations: 0,
            undesirable_server_intervals: 0,
            classes,
            reference_power_w,
            leader_host: ServerId(0),
            leader_epoch: 0,
            missed_heartbeats: 0,
            recovery: RecoveryConfig::default(),
            recovery_stats: RecoveryStats::default(),
            vms_retired: 0,
            vms_orphaned: 0,
            vms_imported: 0,
            vms_exported: 0,
            scratch: IntervalScratch::default(),
        }
    }

    /// The servers (read-only).
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The leader (read-only).
    pub fn leader(&self) -> &Leader {
        &self.leader
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of completed reallocation intervals.
    pub fn intervals_run(&self) -> u64 {
        self.interval_index
    }

    /// Census of the awake servers' regimes, live.
    pub fn census(&self) -> RegimeCensus {
        let mut c = RegimeCensus::new();
        for s in &self.servers {
            if s.is_awake() {
                c.record(s.regime());
            }
        }
        c
    }

    /// Number of servers currently in a sleep state (or waking).
    pub fn sleeping_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_sleeping()).count()
    }

    /// Current cluster load fraction.
    pub fn load_fraction(&self) -> f64 {
        cluster_load_fraction(&self.servers)
    }

    /// Sleeping-server count and cluster load fraction in one pass over
    /// the servers — the per-interval series sampling used to make two.
    /// The load sum accumulates in server order, exactly like
    /// [`cluster_load_fraction`], so the result is bit-identical.
    pub fn interval_stats(&self) -> (usize, f64) {
        if self.servers.is_empty() {
            return (0, 0.0);
        }
        let mut sleeping = 0usize;
        let mut load = 0.0f64;
        for s in &self.servers {
            sleeping += usize::from(s.is_sleeping());
            load += s.load();
        }
        (sleeping, load / self.servers.len() as f64)
    }

    /// Mean load fraction over the *awake* servers only — the per-
    /// instance load the serving layer balances against. A defined 0.0
    /// (never NaN) when every server is asleep or crashed.
    pub fn awake_load_fraction(&self) -> f64 {
        let mut awake = 0usize;
        let mut load = 0.0f64;
        for s in &self.servers {
            if s.is_awake() {
                awake += 1;
                load += s.load();
            }
        }
        if awake == 0 {
            0.0
        } else {
            load / awake as f64
        }
    }

    /// Fills `out` with the serving layer's instance snapshot: one
    /// [`crate::instances::InstanceInfo`] per server, in server-id
    /// order. See [`crate::instances`].
    pub fn instance_snapshot(&self, out: &mut Vec<crate::instances::InstanceInfo>) {
        crate::instances::snapshot_into(&self.servers, out);
    }

    /// Sum of all servers' energy breakdowns.
    pub fn energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for s in &self.servers {
            total.merge(&s.energy());
        }
        total
    }

    /// The decision ledger.
    pub fn ledger(&self) -> &DecisionLedger {
        &self.ledger
    }

    /// Energy charged to VM migrations so far, Joules.
    pub fn migration_energy_j(&self) -> f64 {
        self.migration_energy_j
    }

    /// Total VM migrations committed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Every VM transfer of the most recent interval (both scaling
    /// migrations and protocol migrations), for timed replay.
    pub fn interval_migrations(&self) -> &[MigrationRecord] {
        &self.interval_migrations
    }

    /// Admission statistics so far.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Removes an application on behalf of the federation tier, which
    /// does its own cost accounting for the inter-cluster transfer.
    pub fn take_app_for_federation(&mut self, server: ServerId, app: AppId) -> Option<Application> {
        let app = self.servers[server.index()].take_app(app)?;
        self.servers[server.index()].migrations_out += 1;
        self.vms_exported += 1;
        Some(app)
    }

    /// Places an application delivered by the federation tier.
    pub fn place_app_for_federation(&mut self, server: ServerId, app: Application) {
        self.servers[server.index()].migrations_in += 1;
        self.vms_imported += 1;
        self.servers[server.index()].place_app(app);
    }

    /// Saturation violations so far (server-intervals with demand above
    /// capacity).
    pub fn saturation_violations(&self) -> u64 {
        self.saturation_violations
    }

    /// Undesirable-regime server-intervals so far.
    pub fn undesirable_server_intervals(&self) -> u64 {
        self.undesirable_server_intervals
    }

    /// Table 1 class of each server, aligned with [`Cluster::servers`].
    pub fn server_classes(&self) -> &[ecolb_energy::server_class::ServerClass] {
        &self.classes
    }

    /// Cumulative energy per server class, Joules.
    pub fn energy_by_class(&self) -> Vec<(ecolb_energy::server_class::ServerClass, f64)> {
        use ecolb_energy::server_class::ServerClass;
        let mut totals = [
            (ServerClass::Volume, 0.0),
            (ServerClass::MidRange, 0.0),
            (ServerClass::HighEnd, 0.0),
        ];
        for (server, &class) in self.servers.iter().zip(&self.classes) {
            let slot = match class {
                ServerClass::Volume => &mut totals[0].1,
                ServerClass::MidRange => &mut totals[1].1,
                ServerClass::HighEnd => &mut totals[2].1,
            };
            *slot += server.energy().total_j();
        }
        totals.to_vec()
    }

    /// New-request arrivals + admission processing (step 0).
    fn admit_arrivals(&mut self) {
        let Some(spec) = self.config.arrivals else {
            // Even without arrivals, retry anything queued earlier.
            if self.admission.queue_len() > 0 {
                self.admission.process(
                    &mut self.servers,
                    &mut self.leader,
                    &mut self.ids,
                    &self.config.sleep,
                    self.now,
                );
            }
            return;
        };
        let count =
            ecolb_simcore::dist::Poisson::new(spec.mean_per_interval).sample_count(&mut self.rng);
        for _ in 0..count {
            let demand = self.rng.uniform(spec.demand_lo, spec.demand_hi);
            let lambda = self.rng.uniform(
                self.config.workload.lambda_lo,
                self.config.workload.lambda_hi,
            );
            let image = self.rng.uniform(
                self.config.workload.image_gib_lo,
                self.config.workload.image_gib_hi,
            );
            self.admission.submit(ServiceRequest {
                demand,
                lambda,
                image_gib: image,
            });
        }
        self.admission.process(
            &mut self.servers,
            &mut self.leader,
            &mut self.ids,
            &self.config.sleep,
            self.now,
        );
    }

    /// Power the initial placement would draw with every server awake —
    /// the always-on reference rate, Watts.
    pub fn reference_power_w(&self) -> f64 {
        self.reference_power_w
    }

    /// Demand evolution + scaling decisions for one interval (step 1).
    fn evolve_and_scale(&mut self, tracer: &mut dyn Tracer) {
        // Receiver pool for horizontal requests: awake servers with spare
        // room below their opt_high ceiling, fullest first (best-fit keeps
        // the workload concentrated). Remaining room is tracked locally so
        // one pool serves the whole interval; the buffer itself is interval
        // scratch, reused across intervals.
        let pool = &mut self.scratch.pool;
        pool.clear();
        pool.extend(
            self.servers
                .iter()
                .filter(|s| s.is_awake())
                .map(|s| (s.id(), s.boundaries().opt_high - s.load()))
                .filter(|&(_, room)| room > 0.0),
        );
        pool.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        // least room first = fullest first

        let vm_cap = self.config.workload.max_app_demand;
        for i in 0..self.servers.len() {
            if !self.servers[i].is_awake() {
                continue;
            }
            let n_apps = self.servers[i].app_count();
            let mut retire = false;
            for a in 0..n_apps {
                let r = self.rng.next_f64();
                if r < self.config.growth_prob {
                    // Growth request of U(0, λ].
                    let (app_id, demand, lambda, image) = {
                        let app = &self.servers[i].apps()[a];
                        (app.id, app.demand, app.lambda, app.vm_image_gib)
                    };
                    let delta = self.rng.uniform(0.0, lambda);
                    if demand + delta > vm_cap {
                        // The VM is at its size ceiling: the application
                        // must **scale out** — a new VM on another, lightly
                        // loaded server (the paper's horizontal scaling:
                        // "creation of additional VMs … on lightly loaded
                        // servers"). The VM image travels, so this is an
                        // in-cluster decision.
                        let slot = pool
                            .iter_mut()
                            .find(|(id, room)| *id != ServerId(i as u32) && *room >= delta);
                        match slot {
                            Some((rx_id, room)) => {
                                let rx = *rx_id;
                                *room -= delta;
                                let new_lambda = self.rng.uniform(
                                    self.config.workload.lambda_lo,
                                    self.config.workload.lambda_hi,
                                );
                                let vm = Application::new(
                                    self.ids.alloc(),
                                    delta.clamp(VM_RETIRE_FLOOR, 1.0),
                                    new_lambda,
                                    image,
                                );
                                let cost = self.config.migration.cost_of(&vm);
                                self.migration_energy_j += cost.energy_j;
                                self.migrations += 1;
                                self.servers[rx.index()].migrations_in += 1;
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Migration {
                                        from: i as u32,
                                        to: rx.0,
                                        app: vm.id.0,
                                        demand: vm.demand,
                                    },
                                );
                                self.interval_migrations.push(MigrationRecord {
                                    from: ServerId(i as u32),
                                    to: rx,
                                    app: vm.id,
                                    demand: vm.demand,
                                    cost,
                                });
                                self.servers[rx.index()].place_app(vm);
                                self.ledger.record(DecisionKind::InClusterHorizontal);
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Decision {
                                        decision: DecisionKind::InClusterHorizontal.label(),
                                    },
                                );
                            }
                            None => {
                                self.ledger.record(DecisionKind::Deferred);
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Decision {
                                        decision: DecisionKind::Deferred.label(),
                                    },
                                );
                            }
                        }
                    } else if self.servers[i].load() + delta
                        <= self.servers[i].boundaries().sopt_high
                    {
                        // Vertical scaling is feasible while the server has
                        // free capacity — up to the suboptimal-high edge;
                        // the balancing protocol sheds the excess later if
                        // the server leaves its optimal band. Grow in place.
                        self.servers[i].apps_mut()[a].demand += delta;
                        self.servers[i].refresh_load();
                        self.ledger.record(DecisionKind::LocalVertical);
                        tracer.event(
                            self.now.ticks(),
                            TraceEventKind::Decision {
                                decision: DecisionKind::LocalVertical.label(),
                            },
                        );
                    } else {
                        // No local headroom: migrate the grown VM elsewhere.
                        let grown = demand + delta;
                        let slot = pool
                            .iter_mut()
                            .find(|(id, room)| *id != ServerId(i as u32) && *room >= grown);
                        // Take the app before reserving receiver room so a
                        // missing app degrades to a deferred decision
                        // instead of leaking pool capacity.
                        let taken = match slot {
                            Some((rx_id, room)) => match self.servers[i].take_app(app_id) {
                                Some(app) => {
                                    let rx = *rx_id;
                                    *room -= grown;
                                    Some((rx, app))
                                }
                                None => None,
                            },
                            None => None,
                        };
                        match taken {
                            Some((rx, mut app)) => {
                                app.demand = grown;
                                let cost = self.config.migration.cost_of(&app);
                                self.migration_energy_j += cost.energy_j;
                                self.migrations += 1;
                                self.servers[i].migrations_out += 1;
                                self.servers[rx.index()].migrations_in += 1;
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Migration {
                                        from: i as u32,
                                        to: rx.0,
                                        app: app.id.0,
                                        demand: app.demand,
                                    },
                                );
                                self.interval_migrations.push(MigrationRecord {
                                    from: ServerId(i as u32),
                                    to: rx,
                                    app: app.id,
                                    demand: app.demand,
                                    cost,
                                });
                                self.servers[rx.index()].place_app(app);
                                self.ledger.record(DecisionKind::InClusterHorizontal);
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Decision {
                                        decision: DecisionKind::InClusterHorizontal.label(),
                                    },
                                );
                                // The app vacated slot `a`; stop iterating
                                // this server's tail conservatively
                                // (swap_remove reordered the apps).
                                break;
                            }
                            None => {
                                self.ledger.record(DecisionKind::Deferred);
                                tracer.event(
                                    self.now.ticks(),
                                    TraceEventKind::Decision {
                                        decision: DecisionKind::Deferred.label(),
                                    },
                                );
                            }
                        }
                    }
                } else if r < self.config.growth_prob + self.config.shrink_prob {
                    // Silent decay of U(0, λ]; idle VMs are decommissioned.
                    let lambda = self.servers[i].apps()[a].lambda;
                    let delta = self.rng.uniform(0.0, lambda);
                    let app = &mut self.servers[i].apps_mut()[a];
                    app.demand = (app.demand - delta).max(VM_RETIRE_FLOOR);
                    if app.demand <= VM_RETIRE_FLOOR {
                        retire = true;
                    }
                    self.servers[i].refresh_load();
                }
            }
            if retire {
                let before = self.servers[i].app_count();
                self.servers[i]
                    .apps_mut()
                    .retain(|a| a.demand > VM_RETIRE_FLOOR);
                self.vms_retired += (before - self.servers[i].app_count()) as u64;
                self.servers[i].refresh_load();
            }
        }
    }

    /// Server currently hosting the leader role.
    pub fn leader_host(&self) -> ServerId {
        self.leader_host
    }

    /// Current election epoch (bumped on every completed failover).
    pub fn leader_epoch(&self) -> u64 {
        self.leader_epoch
    }

    /// Recovery-protocol accounting so far (all zero in fault-free runs).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Replaces the recovery-protocol tunables.
    pub fn set_recovery_config(&mut self, cfg: RecoveryConfig) {
        self.recovery = cfg;
    }

    /// True while the leader host is crash-stopped and no successor has
    /// been elected yet — the cluster cannot balance.
    pub fn leaderless(&self) -> bool {
        self.servers[self.leader_host.index()].is_crashed()
    }

    /// Crash-stops a server at instant `at`, returning its orphaned VMs.
    /// The leader's directory forgets the host immediately (the paper's
    /// star topology makes link death observable). No-op on an
    /// already-crashed host.
    pub fn crash_server(&mut self, id: ServerId, at: SimTime) -> Vec<Application> {
        if self.servers[id.index()].is_crashed() {
            return Vec::new();
        }
        let orphans = self.servers[id.index()].crash(at);
        self.vms_orphaned += orphans.len() as u64;
        self.leader.mark_offline(id);
        self.recovery_stats.servers_crashed += 1;
        orphans
    }

    /// Repairs a crashed server at instant `at`; it reboots through the
    /// C6 wake path and returns the instant it will be serviceable.
    /// `None` if the server was not crashed.
    pub fn recover_server(&mut self, id: ServerId, at: SimTime) -> Option<SimTime> {
        if !self.servers[id.index()].is_crashed() {
            return None;
        }
        let ready = self.servers[id.index()].recover(at, &self.config.sleep);
        self.recovery_stats.servers_recovered += 1;
        Some(ready)
    }

    /// Re-admits VMs orphaned by a host crash through the admission
    /// queue: the owners resubmit their service requests and placement
    /// follows the normal admission path next interval.
    pub fn readmit_orphans(&mut self, orphans: Vec<Application>) {
        for app in orphans {
            self.recovery_stats.orphans_readmitted += 1;
            self.admission.submit(ServiceRequest {
                demand: app.demand.clamp(VM_RETIRE_FLOOR, 1.0),
                lambda: app.lambda,
                image_gib: app.vm_image_gib,
            });
        }
    }

    /// Elects a successor leader: the lowest-id awake server, falling
    /// back to the lowest-id non-crashed one (woken if asleep). The new
    /// leader starts from an empty directory and rebuilds it with a full
    /// report sweep. Returns `false` when no live server remains.
    fn fail_over(&mut self, tracer: &mut dyn Tracer) -> bool {
        let successor = self
            .servers
            .iter()
            .find(|s| s.is_awake())
            .map(Server::id)
            .or_else(|| {
                self.servers
                    .iter()
                    .find(|s| !s.is_crashed())
                    .map(Server::id)
            });
        let Some(new_leader) = successor else {
            return false;
        };
        self.leader_host = new_leader;
        self.leader_epoch += 1;
        self.missed_heartbeats = 0;
        self.recovery_stats.failovers += 1;
        tracer.event(
            self.now.ticks(),
            TraceEventKind::Failover {
                new_leader: new_leader.0,
                epoch: self.leader_epoch,
            },
        );
        self.leader.observe(&Message::LeaderElected {
            leader: new_leader,
            epoch: self.leader_epoch,
        });
        self.leader.reset_directory();
        self.leader.full_report_sweep(&self.servers);
        for s in &self.servers {
            if s.is_crashed() {
                self.leader.mark_offline(s.id());
            }
        }
        if self.servers[new_leader.index()].is_sleeping()
            && self.servers[new_leader.index()].wake_ready_at().is_none()
        {
            self.servers[new_leader.index()].begin_wake(self.now, &self.config.sleep);
        }
        true
    }

    /// Heartbeat bookkeeping at the top of each interval: a live leader
    /// beacons and resets the miss counter; a dead one accumulates misses
    /// until the timeout elects a successor.
    fn heartbeat_check(&mut self, tracer: &mut dyn Tracer) {
        if !self.servers[self.leader_host.index()].is_crashed() {
            self.missed_heartbeats = 0;
            self.recovery_stats.heartbeats_sent += 1;
            self.leader.observe(&Message::Heartbeat {
                leader: self.leader_host,
                epoch: self.leader_epoch,
            });
            tracer.event(
                self.now.ticks(),
                TraceEventKind::HeartbeatSent {
                    leader: self.leader_host.0,
                },
            );
            return;
        }
        self.missed_heartbeats += 1;
        self.recovery_stats.heartbeats_missed += 1;
        tracer.event(
            self.now.ticks(),
            TraceEventKind::HeartbeatMissed {
                consecutive: self.missed_heartbeats,
            },
        );
        if self.missed_heartbeats >= self.recovery.heartbeat_timeout_intervals {
            self.fail_over(tracer);
        }
    }

    /// Runs one reallocation interval; returns the balancing outcome.
    pub fn run_interval(&mut self) -> BalanceOutcome {
        self.run_interval_with_hooks(&mut NoFaults)
    }

    /// [`Cluster::run_interval`] with an explicit fault injector. With
    /// [`NoFaults`] the behaviour — and every report — is identical to
    /// the plain entry point: the hook layer draws no randomness and the
    /// recovery bookkeeping never reaches [`ClusterRunReport`].
    pub fn run_interval_with_hooks(&mut self, hooks: &mut dyn FaultHooks) -> BalanceOutcome {
        self.run_interval_traced(hooks, &mut NoTrace)
    }

    /// [`Cluster::run_interval_with_hooks`] with a tracer: the interval is
    /// bracketed by an `interval` span (covering the τ it simulates) and
    /// every scaling decision, regime sample, migration, sleep/wake
    /// transition, and leader-liveness action lands in the trace. With
    /// [`NoTrace`] nothing is recorded and the interval is exactly the
    /// untraced one — same state evolution, same reports.
    pub fn run_interval_traced(
        &mut self,
        hooks: &mut dyn FaultHooks,
        tracer: &mut dyn Tracer,
    ) -> BalanceOutcome {
        self.interval_migrations.clear();
        tracer.span_enter(self.now.ticks(), SpanKind::Interval);
        // Advance the clock by τ and integrate every meter under the state
        // that held during the interval.
        self.now += self.config.realloc_interval;
        for s in &mut self.servers {
            s.meter_advance(self.now);
        }
        tracer.event(
            self.now.ticks(),
            TraceEventKind::IntervalStarted {
                index: self.interval_index,
            },
        );

        // Recovery protocol: leader liveness check before any brokering.
        self.heartbeat_check(tracer);

        // Step 0: new service requests and admission control.
        self.admit_arrivals();

        // Step 1: demand evolution and scaling decisions.
        self.evolve_and_scale(tracer);

        // QoS census for the interval that just elapsed: saturated
        // servers violated response times, undesirable regimes violated
        // the energy-optimality objective (the paper's metric #2).
        // Classification is batched: one pass over the (large) `Server`
        // structs fills a compact struct-of-arrays snapshot, and the
        // census/trace pass walks that instead — each server's regime is
        // classified once per interval, in server order, so the emitted
        // samples are unchanged.
        let samples = &mut self.scratch.samples;
        samples.clear();
        samples.extend(
            self.servers
                .iter()
                .map(|s| (s.is_awake(), s.regime(), s.load())),
        );
        for (i, &(awake, regime, load)) in samples.iter().enumerate() {
            if awake {
                if load > 1.0 + 1e-9 {
                    self.saturation_violations += 1;
                }
                if regime.is_undesirable() {
                    self.undesirable_server_intervals += 1;
                }
                if tracer.enabled() {
                    tracer.event(
                        self.now.ticks(),
                        TraceEventKind::RegimeSample {
                            server: i as u32,
                            regime: regime.index() as u8,
                            load,
                        },
                    );
                }
            }
        }

        // Step 2: the §4 balancing protocol — skipped entirely while the
        // cluster is leaderless (nobody brokers partners), which is where
        // failed consolidations accumulate.
        let outcome = if self.leaderless() {
            for s in &mut self.servers {
                if let Some(t) = s.wake_ready_at() {
                    if t <= self.now {
                        s.complete_wake(self.now);
                        tracer.event(
                            self.now.ticks(),
                            TraceEventKind::WakeCompleted { server: s.id().0 },
                        );
                    }
                }
            }
            let failed = self
                .servers
                .iter()
                .filter(|s| s.is_awake() && s.regime().is_undesirable())
                .count() as u64;
            self.recovery_stats.failed_consolidations += failed;
            self.recovery_stats.leaderless_intervals += 1;
            BalanceOutcome::default()
        } else {
            balance_round_scratch(
                &mut self.servers,
                &mut self.leader,
                &mut self.ledger,
                &self.config.migration,
                &self.config.sleep,
                &self.config.balance,
                self.now,
                hooks,
                &mut self.recovery_stats,
                tracer,
                &mut self.scratch.balance,
            )
        };
        self.migration_energy_j += outcome.migration_energy_j();
        self.migrations += outcome.migrations.len() as u64;
        self.interval_migrations
            .extend_from_slice(&outcome.migrations);

        // Step 3: close the interval.
        let counts = self.ledger.close_interval();
        tracer.event(
            self.now.ticks(),
            TraceEventKind::IntervalClosed {
                index: self.interval_index,
                local: counts.local,
                in_cluster: counts.in_cluster,
                deferred: counts.deferred,
            },
        );
        if tracer.wants_digest() {
            self.emit_digest(tracer);
        }
        tracer.span_exit(self.now.ticks(), SpanKind::Interval);
        self.interval_index += 1;
        outcome
    }

    /// Emits the end-of-interval [`TraceEventKind::StateDigest`] the
    /// chaos invariant checker validates: the VM ledger, the server
    /// power-state census and the leader view. Only called when the
    /// active tracer asks for digests ([`Tracer::wants_digest`]), so
    /// golden traces and untraced runs are unaffected.
    fn emit_digest(&mut self, tracer: &mut dyn Tracer) {
        let mut hosted = 0u64;
        let mut awake = 0u32;
        let mut sleeping = 0u32;
        let mut crashed = 0u32;
        let mut sleeping_hosting = 0u32;
        // Duplicate detection is a linear scan over an id-indexed bitmap
        // (ids are allocated densely from 0), not a sort — the digest is
        // emitted every interval and must stay cheap enough to leave the
        // checker on. The bitmap and overflow list are interval scratch:
        // cleared and refilled, never re-allocated at steady state. Ids
        // minted by a *different* cluster's allocator (federation imports
        // in tests) can exceed the local bound; they fall back to a sort
        // over the normally-empty overflow list.
        let seen = &mut self.scratch.digest_seen;
        seen.clear();
        seen.resize(self.ids.allocated() as usize, false);
        let overflow = &mut self.scratch.digest_overflow;
        overflow.clear();
        let mut dup_hosted = 0u64;
        // Per-Koomey-class cumulative energy (volume, mid-range,
        // high-end): the checker cross-foots these against the fleet
        // total, so a server drawing joules under the wrong class meter
        // is caught at the next digest.
        let mut class_energy = [0.0f64; 3];
        for (s, &class) in self.servers.iter().zip(&self.classes) {
            class_energy[class as usize] += s.energy().total_j();
            hosted += s.app_count() as u64;
            for app in s.apps() {
                match seen.get_mut(app.id.0 as usize) {
                    Some(slot) if *slot => dup_hosted += 1,
                    Some(slot) => *slot = true,
                    None => overflow.push(app.id.0),
                }
            }
            if s.is_crashed() {
                crashed += 1;
            } else if s.is_awake() {
                awake += 1;
            } else {
                sleeping += 1;
            }
            if !s.is_awake() && s.app_count() > 0 {
                sleeping_hosting += 1;
            }
        }
        if !overflow.is_empty() {
            overflow.sort_unstable();
            dup_hosted += overflow.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        }
        tracer.event(
            self.now.ticks(),
            TraceEventKind::StateDigest {
                interval: self.interval_index,
                hosted,
                dup_hosted,
                queued: self.admission.queue_len() as u64,
                created: self.ids.allocated(),
                retired: self.vms_retired,
                orphaned: self.vms_orphaned,
                imported: self.vms_imported,
                exported: self.vms_exported,
                awake,
                sleeping,
                crashed,
                sleeping_hosting,
                leader: self.leader_host.0,
                leader_crashed: self.leaderless(),
                epoch: self.leader_epoch,
                energy_j: self.energy().total_j() + self.migration_energy_j,
                energy_volume_j: class_energy[0],
                energy_midrange_j: class_energy[1],
                energy_highend_j: class_energy[2],
                energy_migration_j: self.migration_energy_j,
                saturation: self.saturation_violations,
            },
        );
    }

    /// Runs `intervals` reallocation intervals and assembles the report.
    pub fn run(&mut self, intervals: u64) -> ClusterRunReport {
        let initial_census = self.census();
        let mut sleeping = TimeSeries::new("sleeping_servers");
        let mut load = TimeSeries::new("cluster_load");
        for _ in 0..intervals {
            self.run_interval();
            let (asleep, frac) = self.interval_stats();
            sleeping.push(asleep as f64);
            load.push(frac);
        }
        let elapsed = self.now.as_secs_f64();
        ClusterRunReport {
            initial_census,
            final_census: self.census(),
            ratio_series: self.ledger.ratio_series(),
            sleeping_series: sleeping,
            load_series: load,
            decision_totals: self.ledger.totals(),
            migrations: self.migrations,
            energy: self.energy(),
            migration_energy_j: self.migration_energy_j,
            reference_energy_j: self.reference_power_w * elapsed,
            admission: self.admission.stats(),
            saturation_violations: self.saturation_violations,
            undesirable_server_intervals: self.undesirable_server_intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ClusterConfig {
        ClusterConfig::paper(50, WorkloadSpec::paper_low_load())
    }

    #[test]
    fn construction_places_initial_load_in_band() {
        let c = Cluster::new(small_config(), 1);
        for s in c.servers() {
            assert!(s.load() >= 0.20 - 0.021, "load {}", s.load());
            assert!(s.load() <= 0.40 + 1e-9, "load {}", s.load());
            assert!(s.is_awake());
        }
        assert_eq!(c.census().total(), 50);
    }

    #[test]
    fn same_seed_same_run() {
        let mut a = Cluster::new(small_config(), 42);
        let mut b = Cluster::new(small_config(), 42);
        let ra = a.run(10);
        let rb = b.run(10);
        assert_eq!(ra, rb, "bit-identical reports for identical seeds");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Cluster::new(small_config(), 1);
        let mut b = Cluster::new(small_config(), 2);
        assert_ne!(a.run(5).ratio_series, b.run(5).ratio_series);
    }

    #[test]
    fn load_is_roughly_stationary() {
        let mut c = Cluster::new(small_config(), 3);
        let before = c.load_fraction();
        c.run(40);
        let after = c.load_fraction();
        assert!(
            (after - before).abs() < 0.12,
            "load drifted {before} → {after}"
        );
    }

    #[test]
    fn interval_count_and_clock_advance() {
        let mut c = Cluster::new(small_config(), 4);
        c.run(7);
        assert_eq!(c.intervals_run(), 7);
        assert_eq!(c.now(), SimTime::from_secs(7 * 300));
    }

    #[test]
    fn ratio_series_has_one_point_per_interval() {
        let mut c = Cluster::new(small_config(), 5);
        let r = c.run(12);
        assert_eq!(r.ratio_series.len(), 12);
        assert_eq!(r.sleeping_series.len(), 12);
        assert_eq!(r.load_series.len(), 12);
    }

    #[test]
    fn decisions_accumulate() {
        let mut c = Cluster::new(small_config(), 6);
        let r = c.run(20);
        assert!(
            r.decision_totals.local > 0,
            "some vertical scaling happened"
        );
        assert!(
            r.decision_totals.local + r.decision_totals.in_cluster > 50,
            "a 50-server cluster over 20 intervals makes many decisions"
        );
    }

    #[test]
    fn energy_accrues_and_reference_dominates_when_sleeping() {
        let mut c = Cluster::new(ClusterConfig::paper(100, WorkloadSpec::paper_low_load()), 7);
        let r = c.run(30);
        assert!(r.energy.total_j() > 0.0);
        assert!(r.reference_energy_j > 0.0);
        // With sleeping enabled at 30 % load, we never burn more than the
        // always-on reference by more than the migration overhead.
        assert!(
            r.energy.total_j() < r.reference_energy_j * 1.10,
            "managed {} vs reference {}",
            r.energy.total_j(),
            r.reference_energy_j
        );
    }

    #[test]
    fn high_load_cluster_never_sleeps_servers() {
        let mut c = Cluster::new(
            ClusterConfig::paper(100, WorkloadSpec::paper_high_load()),
            8,
        );
        let r = c.run(20);
        let max_sleeping = r
            .sleeping_series
            .values()
            .iter()
            .copied()
            .fold(0.0_f64, f64::max);
        assert!(
            max_sleeping <= 2.0,
            "at 70 % load consolidation opportunities are rare, saw {max_sleeping}"
        );
    }

    #[test]
    fn census_total_counts_awake_only() {
        let mut c = Cluster::new(small_config(), 9);
        c.run(30);
        let census_total = c.census().total() as usize;
        assert_eq!(census_total + c.sleeping_count(), 50);
    }

    #[test]
    fn leader_crash_fails_over_to_lowest_id_live_server() {
        let mut c = Cluster::new(small_config(), 11);
        assert_eq!(c.leader_host(), ServerId(0));
        let orphans = c.crash_server(ServerId(0), c.now());
        assert!(!orphans.is_empty(), "initial placement hosts apps");
        c.readmit_orphans(orphans);
        assert!(c.leaderless());

        // Interval 1 after the crash: one heartbeat missed, below the
        // 2-interval timeout → the cluster idles leaderless.
        c.run_interval();
        assert!(c.leaderless());
        assert_eq!(c.recovery_stats().leaderless_intervals, 1);
        assert!(c.recovery_stats().failed_consolidations > 0);

        // Interval 2: timeout reached → failover, balancing resumes.
        c.run_interval();
        assert!(!c.leaderless());
        assert_eq!(c.leader_epoch(), 1);
        assert_eq!(c.recovery_stats().failovers, 1);
        assert_eq!(
            c.leader_host(),
            ServerId(1),
            "successor is the lowest-id awake server"
        );
        assert!(c.recovery_stats().orphans_readmitted > 0);
        assert_eq!(c.leader().stats().elections, 1);
    }

    #[test]
    fn crashed_non_leader_is_dropped_and_recovers() {
        let mut c = Cluster::new(small_config(), 12);
        let orphans = c.crash_server(ServerId(5), c.now());
        let n_orphans = orphans.len();
        c.readmit_orphans(orphans);
        assert!(!c.leaderless(), "leader survived");
        assert!(c.leader().entry(ServerId(5)).is_none());
        assert!(c.crash_server(ServerId(5), c.now()).is_empty(), "no-op");
        c.run_interval();
        assert_eq!(c.recovery_stats().orphans_readmitted as usize, n_orphans);
        let ready = c.recover_server(ServerId(5), c.now()).expect("was crashed");
        assert!(ready > c.now(), "reboot takes wake latency");
        assert_eq!(c.recover_server(ServerId(5), c.now()), None, "no-op");
        assert_eq!(c.recovery_stats().servers_crashed, 1);
        assert_eq!(c.recovery_stats().servers_recovered, 1);
    }

    #[test]
    fn fault_free_hooked_run_matches_plain_run() {
        let mut a = Cluster::new(small_config(), 42);
        let mut b = Cluster::new(small_config(), 42);
        for _ in 0..10 {
            a.run_interval();
            b.run_interval_with_hooks(&mut NoFaults);
        }
        assert_eq!(a.energy(), b.energy());
        assert_eq!(a.migrations(), b.migrations());
        assert_eq!(a.leader().stats(), b.leader().stats());
        assert_eq!(a.recovery_stats(), b.recovery_stats());
        let s = b.recovery_stats();
        assert_eq!(s.heartbeats_sent, 10, "live leader beacons every interval");
        assert_eq!(
            RecoveryStats {
                heartbeats_sent: 0,
                ..s
            },
            RecoveryStats::default(),
            "no recovery work in a fault-free run"
        );
        assert_eq!(b.leader_epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_empty_cluster() {
        let mut cfg = small_config();
        cfg.n_servers = 0;
        Cluster::new(cfg, 0);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn rejects_bad_probabilities() {
        let mut cfg = small_config();
        cfg.growth_prob = 0.9;
        cfg.shrink_prob = 0.9;
        Cluster::new(cfg, 0);
    }
}
