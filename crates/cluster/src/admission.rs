//! Admission control for new service requests.
//!
//! §3 of the paper: *"the admission control can restrict the acceptance of
//! additional load when the available capacity of the servers is low"*,
//! and §6: with strict admission control, *"new service requests for large
//! amounts of resources can be delayed until the system is able to turn on
//! a number of sleeping servers to satisfy the additional demand."*
//!
//! [`AdmissionController`] sits in front of the cluster: new
//! [`ServiceRequest`]s are queued, and each reallocation interval the
//! controller tries to place them on awake servers with headroom below
//! their `α^{opt,h}`. What happens to the unplaceable ones is the
//! [`AdmissionPolicy`]:
//!
//! * [`AdmissionPolicy::AlwaysAdmit`] — force-place on the least-loaded
//!   awake server even if that overloads it (the elastic-cloud promise,
//!   paid for in regime violations);
//! * [`AdmissionPolicy::CapacityThreshold`] — reject outright when the
//!   cluster load exceeds a threshold, otherwise delay;
//! * [`AdmissionPolicy::DelayAndWake`] — delay and order sleeping servers
//!   awake to create the missing capacity (the §6 behaviour).

use crate::balance::cluster_load_fraction;
use crate::leader::Leader;
use crate::server::{Server, ServerId};
use ecolb_energy::sleep::SleepModel;
use ecolb_simcore::time::SimTime;
use ecolb_workload::application::Application;
use ecolb_workload::generator::AppIdAllocator;
use std::collections::VecDeque;

/// A new service request: an application looking for a home.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRequest {
    /// CPU demand, fraction of one server's capacity.
    pub demand: f64,
    /// Maximum per-interval demand growth once admitted.
    pub lambda: f64,
    /// VM image size in GiB.
    pub image_gib: f64,
}

/// What to do with requests the cluster cannot place right now.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdmissionPolicy {
    /// Admit everything; unplaceable requests land on the least-loaded
    /// awake server even if that pushes it out of its optimal band.
    #[default]
    AlwaysAdmit,
    /// Reject new work when the cluster load exceeds `max_load`; delay
    /// (re-queue) below it.
    CapacityThreshold {
        /// Cluster-load fraction above which requests are rejected.
        max_load: f64,
    },
    /// Delay unplaceable requests and wake sleeping servers to create
    /// capacity (§6).
    DelayAndWake {
        /// Maximum wake orders issued per interval.
        wakes_per_interval: usize,
    },
}

/// Lifetime admission statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests placed on a server.
    pub admitted: u64,
    /// Requests rejected permanently.
    pub rejected: u64,
    /// Wake orders issued on behalf of queued requests.
    pub wakes_triggered: u64,
}

impl AdmissionStats {
    /// Requests currently neither admitted nor rejected.
    pub fn pending(&self) -> u64 {
        self.submitted - self.admitted - self.rejected
    }

    /// Fraction of resolved requests that were admitted; 1.0 when nothing
    /// has resolved yet.
    pub fn admit_fraction(&self) -> f64 {
        let resolved = self.admitted + self.rejected;
        if resolved == 0 {
            1.0
        } else {
            self.admitted as f64 / resolved as f64
        }
    }
}

/// A stochastic stream of new service requests: each reallocation
/// interval `Poisson(mean_per_interval)` requests arrive with demands
/// uniform in `[demand_lo, demand_hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Mean new requests per reallocation interval.
    pub mean_per_interval: f64,
    /// Smallest request demand.
    pub demand_lo: f64,
    /// Largest request demand.
    pub demand_hi: f64,
}

impl ArrivalSpec {
    /// Creates a spec, validating the demand band.
    pub fn new(mean_per_interval: f64, demand_lo: f64, demand_hi: f64) -> Self {
        assert!(
            mean_per_interval >= 0.0,
            "arrival rate must be non-negative"
        );
        assert!(
            0.0 < demand_lo && demand_lo <= demand_hi && demand_hi <= 1.0,
            "demand band ({demand_lo}, {demand_hi}] invalid"
        );
        ArrivalSpec {
            mean_per_interval,
            demand_lo,
            demand_hi,
        }
    }
}

/// The queue + policy in front of the cluster.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    queue: VecDeque<ServiceRequest>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Creates a controller with the given policy.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionController {
            policy,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a new request; placement happens at the next
    /// [`AdmissionController::process`] call.
    pub fn submit(&mut self, request: ServiceRequest) {
        assert!(
            request.demand > 0.0 && request.demand <= 1.0,
            "demand outside (0, 1]"
        );
        self.stats.submitted += 1;
        self.queue.push_back(request);
    }

    /// Tries to place every queued request, applying the policy to the
    /// unplaceable ones. Returns the number admitted this call.
    pub fn process(
        &mut self,
        servers: &mut [Server],
        leader: &mut Leader,
        ids: &mut AppIdAllocator,
        sleep_model: &SleepModel,
        now: SimTime,
    ) -> u64 {
        let mut admitted = 0u64;
        let mut wakes_left = match self.policy {
            AdmissionPolicy::DelayAndWake { wakes_per_interval } => wakes_per_interval,
            _ => 0,
        };
        let mut still_queued = VecDeque::new();

        while let Some(req) = self.queue.pop_front() {
            // Preferred placement: the fullest awake server that still has
            // headroom below α^{opt,h} (consolidation-friendly best fit).
            let target = servers
                .iter()
                .filter(|s| s.is_awake() && s.load() + req.demand <= s.boundaries().opt_high)
                .max_by(|a, b| a.load().total_cmp(&b.load()))
                .map(Server::id);

            match target {
                Some(id) => {
                    place(servers, id, &req, ids);
                    admitted += 1;
                }
                None => match self.policy {
                    AdmissionPolicy::AlwaysAdmit => {
                        // Least-loaded awake server takes it regardless.
                        let fallback = servers
                            .iter()
                            .filter(|s| s.is_awake())
                            .min_by(|a, b| a.load().total_cmp(&b.load()))
                            .map(Server::id);
                        match fallback {
                            Some(id) => {
                                place(servers, id, &req, ids);
                                admitted += 1;
                            }
                            None => {
                                // Whole cluster asleep: nothing can host
                                // anything; delay rather than lose work.
                                still_queued.push_back(req);
                            }
                        }
                    }
                    AdmissionPolicy::CapacityThreshold { max_load } => {
                        if cluster_load_fraction(servers) > max_load {
                            self.stats.rejected += 1;
                        } else {
                            still_queued.push_back(req);
                        }
                    }
                    AdmissionPolicy::DelayAndWake { .. } => {
                        if wakes_left > 0 {
                            if let Some(&sleeper) = leader.find_sleepers(servers).first() {
                                leader.issue_wake_order(sleeper);
                                servers[sleeper.index()].begin_wake(now, sleep_model);
                                self.stats.wakes_triggered += 1;
                                wakes_left -= 1;
                            }
                        }
                        still_queued.push_back(req);
                    }
                },
            }
        }
        self.queue = still_queued;
        self.stats.admitted += admitted;
        admitted
    }
}

fn place(servers: &mut [Server], id: ServerId, req: &ServiceRequest, ids: &mut AppIdAllocator) {
    let app = Application::new(ids.alloc(), req.demand, req.lambda, req.image_gib);
    servers[id.index()].place_app(app);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerPowerSpec;
    use ecolb_energy::regimes::RegimeBoundaries;
    use ecolb_energy::sleep::CState;
    use ecolb_workload::application::{AppId, Application};

    fn mk_server(id: u32, load: f64) -> Server {
        let mut s = Server::new(
            ServerId(id),
            RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8),
            ServerPowerSpec::default(),
            SimTime::ZERO,
        );
        if load > 0.0 {
            s.place_app(Application::new(AppId(1000 + id as u64), load, 0.01, 4.0));
        }
        s
    }

    fn req(demand: f64) -> ServiceRequest {
        ServiceRequest {
            demand,
            lambda: 0.01,
            image_gib: 4.0,
        }
    }

    fn process(ctl: &mut AdmissionController, servers: &mut [Server], leader: &mut Leader) -> u64 {
        let mut ids = AppIdAllocator::new();
        ctl.process(
            servers,
            leader,
            &mut ids,
            &SleepModel::default(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn places_on_fullest_fitting_server() {
        let mut servers = vec![mk_server(0, 0.2), mk_server(1, 0.5), mk_server(2, 0.65)];
        let mut leader = Leader::new(3);
        let mut ctl = AdmissionController::new(AdmissionPolicy::AlwaysAdmit);
        ctl.submit(req(0.1));
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 1);
        // 0.65 + 0.1 > 0.7 → fullest *fitting* is server 1.
        assert!((servers[1].load() - 0.6).abs() < 1e-9);
        assert_eq!(ctl.stats().admitted, 1);
        assert_eq!(ctl.queue_len(), 0);
    }

    #[test]
    fn always_admit_overloads_rather_than_refuse() {
        let mut servers = vec![mk_server(0, 0.68), mk_server(1, 0.69)];
        let mut leader = Leader::new(2);
        let mut ctl = AdmissionController::new(AdmissionPolicy::AlwaysAdmit);
        ctl.submit(req(0.2)); // fits nobody's optimal band
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 1);
        // Least loaded (server 0) took it and left its band.
        assert!((servers[0].load() - 0.88).abs() < 1e-9);
    }

    #[test]
    fn threshold_rejects_when_cluster_hot() {
        let mut servers = vec![mk_server(0, 0.69), mk_server(1, 0.69)];
        let mut leader = Leader::new(2);
        let mut ctl =
            AdmissionController::new(AdmissionPolicy::CapacityThreshold { max_load: 0.6 });
        ctl.submit(req(0.2));
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 0);
        assert_eq!(ctl.stats().rejected, 1);
        assert_eq!(ctl.queue_len(), 0);
        assert_eq!(ctl.stats().admit_fraction(), 0.0);
    }

    #[test]
    fn threshold_delays_when_cluster_cool() {
        // Both servers nearly at their band edge but the cluster is cool:
        // the request waits instead of being dropped.
        let mut servers = vec![mk_server(0, 0.65), mk_server(1, 0.1)];
        let mut leader = Leader::new(2);
        let mut ctl =
            AdmissionController::new(AdmissionPolicy::CapacityThreshold { max_load: 0.6 });
        ctl.submit(req(0.68)); // too big for anyone's headroom
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 0);
        assert_eq!(ctl.stats().rejected, 0);
        assert_eq!(ctl.queue_len(), 1, "delayed, not dropped");
        assert_eq!(ctl.stats().pending(), 1);
    }

    #[test]
    fn delay_and_wake_orders_a_sleeper() {
        let sleep_model = SleepModel::default();
        let mut servers = vec![mk_server(0, 0.69), mk_server(1, 0.0)];
        servers[1].enter_sleep(SimTime::ZERO, CState::C3, &sleep_model);
        let mut leader = Leader::new(2);
        let mut ctl = AdmissionController::new(AdmissionPolicy::DelayAndWake {
            wakes_per_interval: 1,
        });
        ctl.submit(req(0.3));
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 0, "not placeable yet");
        assert_eq!(ctl.stats().wakes_triggered, 1);
        assert!(servers[1].wake_ready_at().is_some(), "wake in flight");
        assert_eq!(ctl.queue_len(), 1);

        // Once the wake completes, the retry succeeds.
        let ready = servers[1].wake_ready_at().unwrap();
        servers[1].complete_wake(ready);
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 1);
        assert_eq!(ctl.queue_len(), 0);
        assert!((servers[1].load() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn wake_budget_is_respected() {
        let sleep_model = SleepModel::default();
        let mut servers = vec![
            mk_server(0, 0.69),
            mk_server(1, 0.0),
            mk_server(2, 0.0),
            mk_server(3, 0.0),
        ];
        for s in &mut servers[1..] {
            s.enter_sleep(SimTime::ZERO, CState::C3, &sleep_model);
        }
        let mut leader = Leader::new(4);
        let mut ctl = AdmissionController::new(AdmissionPolicy::DelayAndWake {
            wakes_per_interval: 2,
        });
        for _ in 0..5 {
            ctl.submit(req(0.3));
        }
        process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(ctl.stats().wakes_triggered, 2, "budget caps wakes");
    }

    #[test]
    fn queue_drains_over_multiple_rounds() {
        let mut servers = vec![mk_server(0, 0.4)];
        let mut leader = Leader::new(1);
        let mut ctl =
            AdmissionController::new(AdmissionPolicy::CapacityThreshold { max_load: 0.9 });
        ctl.submit(req(0.25)); // fits (0.4 + 0.25 < 0.7)
        ctl.submit(req(0.25)); // won't fit after the first lands (0.65+0.25)
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 1);
        assert_eq!(ctl.queue_len(), 1);
        // Free capacity (app shrinks / departs) and retry.
        let taken: Vec<_> = servers[0].drain_apps();
        assert!(!taken.is_empty());
        let n = process(&mut ctl, &mut servers, &mut leader);
        assert_eq!(n, 1);
        assert_eq!(ctl.stats().pending(), 0);
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn rejects_invalid_demand() {
        AdmissionController::new(AdmissionPolicy::AlwaysAdmit).submit(req(0.0));
    }
}
