//! The simulated server.
//!
//! Each server `S_k` carries the **static information** the paper lists in
//! §4 — its identifier and the four regime boundaries `α^{sopt,l}_k`,
//! `α^{opt,l}_k`, `α^{opt,h}_k`, `α^{sopt,h}_k` — and **dynamic
//! information**: the hosted applications (one VM each), the load, the
//! operating regime, and the CPU (C-)state. An [`EnergyMeter`] integrates
//! the server's power draw over simulated time.

use ecolb_energy::accounting::{EnergyBreakdown, EnergyMeter};
use ecolb_energy::power::{LinearPowerModel, PiecewisePowerModel, PowerModel, SubsystemPowerModel};
use ecolb_energy::regimes::{OperatingRegime, RegimeBoundaries};
use ecolb_energy::sleep::{CState, SleepModel};
use ecolb_simcore::time::SimTime;
use ecolb_workload::application::{AppId, Application};
use std::fmt;

/// Cluster-unique server identifier (index into the cluster's server
/// vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The vector index this id denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The power model attached to a server — an enum so heterogeneous clusters
/// can mix model families without dynamic dispatch in the metering hot
/// path.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerPowerSpec {
    /// Idle + proportional line.
    Linear(LinearPowerModel),
    /// SPECpower-style measured curve.
    Piecewise(PiecewisePowerModel),
    /// Per-subsystem composite.
    Subsystem(SubsystemPowerModel),
}

impl PowerModel for ServerPowerSpec {
    fn power_w(&self, u: f64) -> f64 {
        match self {
            ServerPowerSpec::Linear(m) => m.power_w(u),
            ServerPowerSpec::Piecewise(m) => m.power_w(u),
            ServerPowerSpec::Subsystem(m) => m.power_w(u),
        }
    }
}

impl Default for ServerPowerSpec {
    fn default() -> Self {
        ServerPowerSpec::Linear(LinearPowerModel::typical_volume_server())
    }
}

/// A simulated server.
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    boundaries: RegimeBoundaries,
    power: ServerPowerSpec,
    apps: Vec<Application>,
    load: f64,
    cstate: CState,
    /// Set while a wake-up is in flight: the instant the server reaches C0.
    wake_ready_at: Option<SimTime>,
    /// Set while the server is crash-stopped (out of service until
    /// repaired through [`Server::recover`]).
    crashed: bool,
    meter: EnergyMeter,
    /// Lifetime counts of VMs migrated in/out, for reporting.
    pub migrations_in: u64,
    /// Lifetime count of VMs migrated away from this server.
    pub migrations_out: u64,
}

impl Server {
    /// Creates an awake, empty server.
    pub fn new(
        id: ServerId,
        boundaries: RegimeBoundaries,
        power: ServerPowerSpec,
        t0: SimTime,
    ) -> Self {
        Server {
            id,
            boundaries,
            power,
            apps: Vec::new(),
            load: 0.0,
            cstate: CState::C0,
            wake_ready_at: None,
            crashed: false,
            meter: EnergyMeter::new(t0),
            migrations_in: 0,
            migrations_out: 0,
        }
    }

    /// The server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The static regime boundaries.
    pub fn boundaries(&self) -> &RegimeBoundaries {
        &self.boundaries
    }

    /// The power model.
    pub fn power(&self) -> &ServerPowerSpec {
        &self.power
    }

    /// Current normalized load (sum of hosted application demands, clamped
    /// to 1 for regime purposes — demand beyond capacity queues rather than
    /// executes).
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Load usable as normalized performance `a(t)`.
    pub fn normalized_performance(&self) -> f64 {
        self.load.min(1.0)
    }

    /// Current operating regime (meaningful only while awake).
    pub fn regime(&self) -> OperatingRegime {
        self.boundaries.classify(self.normalized_performance())
    }

    /// Current C-state.
    pub fn cstate(&self) -> CState {
        self.cstate
    }

    /// True when the server is awake and able to execute.
    pub fn is_awake(&self) -> bool {
        !self.crashed && self.cstate == CState::C0 && self.wake_ready_at.is_none()
    }

    /// True while the server is crash-stopped (out of service; not
    /// eligible for wake orders until repaired).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// True when asleep or still waking.
    pub fn is_sleeping(&self) -> bool {
        !self.is_awake()
    }

    /// The instant a pending wake completes, if one is in flight.
    pub fn wake_ready_at(&self) -> Option<SimTime> {
        self.wake_ready_at
    }

    /// The hosted applications.
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// Number of hosted applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Mutable access for demand evolution. Call [`Server::refresh_load`]
    /// after mutating demands.
    pub fn apps_mut(&mut self) -> &mut Vec<Application> {
        &mut self.apps
    }

    /// Recomputes the cached load after external demand mutation.
    pub fn refresh_load(&mut self) {
        self.load = self.apps.iter().map(|a| a.demand).sum();
    }

    /// Advances this server's energy meter to `now` under its current
    /// state. Must be called *before* any state change that alters power
    /// draw. This runs once per server per interval — no clones, no
    /// allocation: `ServerPowerSpec` itself is the [`PowerModel`] and the
    /// meter/power fields borrow disjointly.
    pub fn meter_advance(&mut self, now: SimTime) {
        let u = self.normalized_performance();
        self.meter.advance(now, &self.power, self.cstate, u);
    }

    /// Places an application on this server (it must be awake).
    pub fn place_app(&mut self, app: Application) {
        debug_assert!(self.is_awake(), "placing app on sleeping {}", self.id);
        self.load += app.demand;
        self.apps.push(app);
    }

    /// Removes an application by id, returning it; `None` when absent.
    pub fn take_app(&mut self, id: AppId) -> Option<Application> {
        let idx = self.apps.iter().position(|a| a.id == id)?;
        let app = self.apps.swap_remove(idx);
        self.load -= app.demand;
        if self.apps.is_empty() {
            self.load = 0.0; // kill accumulated rounding drift
        }
        Some(app)
    }

    /// Removes and returns all applications (drain before sleeping).
    pub fn drain_apps(&mut self) -> Vec<Application> {
        self.load = 0.0;
        std::mem::take(&mut self.apps)
    }

    /// Switches an idle server into `target` sleep state, charging the
    /// transition energy. Panics if the server still hosts applications.
    pub fn enter_sleep(&mut self, now: SimTime, target: CState, sleep_model: &SleepModel) {
        assert!(
            self.apps.is_empty(),
            "{} cannot sleep with {} apps",
            self.id,
            self.apps.len()
        );
        assert!(target.is_sleeping(), "enter_sleep needs a sleep state");
        self.meter_advance(now);
        self.meter.record_transition(sleep_model, target);
        self.cstate = target;
        self.wake_ready_at = None;
    }

    /// Crash-stops the server at `now`: the energy meter is settled under
    /// the pre-crash state, every hosted VM is lost (returned as orphans
    /// for re-admission elsewhere), and the host drops to C6 residual
    /// draw until repaired. A crashed server is neither awake nor
    /// eligible for wake orders.
    pub fn crash(&mut self, now: SimTime) -> Vec<Application> {
        self.meter_advance(now);
        self.crashed = true;
        self.cstate = CState::C6;
        self.wake_ready_at = None;
        self.drain_apps()
    }

    /// Repairs a crashed server at `now`: the host reboots through the
    /// normal C6 wake path (full setup energy and latency) and returns
    /// the instant it reaches C0. No-op returning `now` for servers that
    /// were not crashed.
    pub fn recover(&mut self, now: SimTime, sleep_model: &SleepModel) -> SimTime {
        if !self.crashed {
            return now;
        }
        self.meter_advance(now);
        self.crashed = false;
        self.begin_wake(now, sleep_model)
    }

    /// Begins waking the server; it reaches C0 after the sleep state's wake
    /// latency, during which it burns near-peak power (paper §3). Returns
    /// the completion instant. No-op returning `now` when already awake,
    /// and for crashed servers (a dead host cannot honour a wake order —
    /// it must be repaired through [`Server::recover`] first).
    pub fn begin_wake(&mut self, now: SimTime, sleep_model: &SleepModel) -> SimTime {
        if self.crashed {
            return now;
        }
        if self.is_awake() {
            return now;
        }
        if let Some(t) = self.wake_ready_at {
            return t; // already waking
        }
        self.meter_advance(now);
        let latency = sleep_model.wake_latency(self.cstate);
        self.meter.record_setup(&self.power, latency);
        let ready = now + latency;
        self.wake_ready_at = Some(ready);
        ready
    }

    /// Completes a pending wake (to be called at the instant returned by
    /// [`Server::begin_wake`]).
    pub fn complete_wake(&mut self, now: SimTime) {
        if let Some(t) = self.wake_ready_at {
            debug_assert!(now >= t, "wake completed early");
            self.meter_advance(now);
            self.cstate = CState::C0;
            self.wake_ready_at = None;
        }
    }

    /// Cumulative energy usage.
    pub fn energy(&self) -> EnergyBreakdown {
        self.meter.breakdown()
    }

    /// Free capacity before the load crosses the upper edge of the optimal
    /// band — the budget for **vertical scaling** (paper §5: "vertical
    /// scaling allows a VM … to acquire additional resources from the local
    /// server … only feasible if the server has sufficient free capacity").
    pub fn vertical_headroom(&self) -> f64 {
        if !self.is_awake() {
            return 0.0;
        }
        self.boundaries.headroom_to_opt_high(self.load)
    }

    /// Load above the optimal band that should be shed (horizontal
    /// scaling / migration pressure).
    pub fn shed_pressure(&self) -> f64 {
        self.boundaries
            .excess_over_opt_high(self.normalized_performance())
    }

    /// Capacity this server can absorb from donors while staying inside
    /// the optimal band.
    pub fn absorb_capacity(&self) -> f64 {
        self.vertical_headroom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_energy::regimes::RegimeBoundaries;
    use ecolb_workload::application::{AppId, Application};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn server() -> Server {
        Server::new(
            ServerId(0),
            RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8),
            ServerPowerSpec::default(),
            t(0),
        )
    }

    fn app(id: u64, demand: f64) -> Application {
        Application::new(AppId(id), demand, 0.01, 4.0)
    }

    #[test]
    fn placement_updates_load_and_regime() {
        let mut s = server();
        assert_eq!(s.regime(), OperatingRegime::UndesirableLow);
        s.place_app(app(1, 0.5));
        assert!((s.load() - 0.5).abs() < 1e-12);
        assert_eq!(s.regime(), OperatingRegime::Optimal);
        s.place_app(app(2, 0.4));
        assert_eq!(s.regime(), OperatingRegime::UndesirableHigh);
    }

    #[test]
    fn take_app_restores_load() {
        let mut s = server();
        s.place_app(app(1, 0.3));
        s.place_app(app(2, 0.2));
        let a = s.take_app(AppId(1)).unwrap();
        assert_eq!(a.id, AppId(1));
        assert!((s.load() - 0.2).abs() < 1e-12);
        assert_eq!(s.take_app(AppId(99)), None);
    }

    #[test]
    fn drain_empties_server() {
        let mut s = server();
        s.place_app(app(1, 0.3));
        s.place_app(app(2, 0.2));
        let apps = s.drain_apps();
        assert_eq!(apps.len(), 2);
        assert_eq!(s.load(), 0.0);
        assert_eq!(s.app_count(), 0);
    }

    #[test]
    fn sleep_wake_cycle() {
        let sm = SleepModel::default();
        let mut s = server();
        s.enter_sleep(t(10), CState::C6, &sm);
        assert!(s.is_sleeping());
        assert_eq!(s.cstate(), CState::C6);
        let ready = s.begin_wake(t(100), &sm);
        assert!(ready > t(100));
        assert!(s.is_sleeping(), "still waking");
        assert_eq!(s.wake_ready_at(), Some(ready));
        s.complete_wake(ready);
        assert!(s.is_awake());
        assert_eq!(s.cstate(), CState::C0);
    }

    #[test]
    fn begin_wake_is_idempotent() {
        let sm = SleepModel::default();
        let mut s = server();
        s.enter_sleep(t(0), CState::C3, &sm);
        let r1 = s.begin_wake(t(5), &sm);
        let r2 = s.begin_wake(t(6), &sm);
        assert_eq!(r1, r2, "second call returns the in-flight completion");
    }

    #[test]
    fn wake_on_awake_server_is_noop() {
        let sm = SleepModel::default();
        let mut s = server();
        assert_eq!(s.begin_wake(t(7), &sm), t(7));
        assert!(s.is_awake());
    }

    #[test]
    #[should_panic(expected = "cannot sleep")]
    fn sleep_with_apps_panics() {
        let sm = SleepModel::default();
        let mut s = server();
        s.place_app(app(1, 0.1));
        s.enter_sleep(t(0), CState::C3, &sm);
    }

    #[test]
    fn energy_accrues_while_awake_and_asleep() {
        let sm = SleepModel::default();
        let mut s = server();
        s.place_app(app(1, 0.5));
        s.meter_advance(t(100));
        let awake = s.energy().total_j();
        assert!(awake > 0.0);
        s.take_app(AppId(1));
        s.meter_advance(t(100)); // no time passes
        s.enter_sleep(t(100), CState::C6, &sm);
        s.meter_advance(t(200));
        let after_sleep = s.energy();
        assert!(after_sleep.sleep_j > 0.0);
        assert!(after_sleep.transition_j > 0.0);
    }

    #[test]
    fn sleeping_burns_less_than_running() {
        let sm = SleepModel::default();
        let mut awake = server();
        awake.place_app(app(1, 0.5));
        awake.meter_advance(t(1000));

        let mut asleep = server();
        asleep.enter_sleep(t(0), CState::C6, &sm);
        asleep.meter_advance(t(1000));

        assert!(asleep.energy().total_j() < 0.2 * awake.energy().total_j());
    }

    #[test]
    fn headroom_and_shed_pressure() {
        let mut s = server();
        s.place_app(app(1, 0.5));
        assert!((s.vertical_headroom() - 0.2).abs() < 1e-12);
        assert_eq!(s.shed_pressure(), 0.0);
        s.place_app(app(2, 0.4));
        assert_eq!(s.vertical_headroom(), 0.0);
        assert!((s.shed_pressure() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sleeping_server_has_no_headroom() {
        let sm = SleepModel::default();
        let mut s = server();
        s.enter_sleep(t(0), CState::C3, &sm);
        assert_eq!(s.vertical_headroom(), 0.0);
        assert_eq!(s.absorb_capacity(), 0.0);
    }

    #[test]
    fn refresh_load_after_demand_mutation() {
        let mut s = server();
        s.place_app(app(1, 0.2));
        s.apps_mut()[0].demand = 0.6;
        s.refresh_load();
        assert!((s.load() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn crash_orphans_apps_and_takes_host_offline() {
        let mut s = server();
        s.place_app(app(1, 0.3));
        s.place_app(app(2, 0.2));
        let orphans = s.crash(t(100));
        assert_eq!(orphans.len(), 2);
        assert!(s.is_crashed());
        assert!(!s.is_awake());
        assert!(s.is_sleeping(), "a crashed host cannot execute");
        assert_eq!(s.app_count(), 0);
        assert_eq!(s.load(), 0.0);
        assert_eq!(s.cstate(), CState::C6, "dead host draws residual power");
    }

    #[test]
    fn crashed_server_ignores_wake_orders() {
        let sm = SleepModel::default();
        let mut s = server();
        s.crash(t(0));
        assert_eq!(s.begin_wake(t(5), &sm), t(5));
        assert!(s.wake_ready_at().is_none(), "no wake in flight");
        assert!(s.is_crashed());
    }

    #[test]
    fn recover_reboots_through_the_c6_wake_path() {
        let sm = SleepModel::default();
        let mut s = server();
        s.place_app(app(1, 0.4));
        s.crash(t(10));
        let before = s.energy().total_j();
        let ready = s.recover(t(100), &sm);
        assert!(!s.is_crashed());
        assert_eq!(ready, t(100) + sm.wake_latency(CState::C6));
        assert!(s.is_sleeping(), "still booting");
        assert!(s.energy().total_j() > before, "reboot charges setup energy");
        s.complete_wake(ready);
        assert!(s.is_awake());
    }

    #[test]
    fn recover_on_healthy_server_is_noop() {
        let sm = SleepModel::default();
        let mut s = server();
        assert_eq!(s.recover(t(7), &sm), t(7));
        assert!(s.is_awake());
    }

    #[test]
    fn overloaded_performance_clamps_at_capacity() {
        let mut s = server();
        s.place_app(app(1, 0.9));
        s.place_app(app(2, 0.9));
        assert!(s.load() > 1.0);
        assert_eq!(s.normalized_performance(), 1.0);
        assert_eq!(s.regime(), OperatingRegime::UndesirableHigh);
    }
}
