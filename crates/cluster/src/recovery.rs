//! Failure-recovery protocol: fault hooks, configuration, and accounting.
//!
//! The paper's star-shaped cluster silently assumes the leader never dies
//! and messages never drop. This module defines the seam through which a
//! fault-injection layer (the `ecolb-faults` crate) perturbs the protocol,
//! plus the recovery bookkeeping the cluster keeps while it heals:
//! heartbeat-timeout failover, directory rebuild, bounded retry-with-backoff
//! for lost reports, and wake orders that fail outright.
//!
//! The hook trait defaults to "nothing ever fails", and the no-fault
//! implementation [`NoFaults`] is a zero-sized type whose methods are
//! trivially inlined — running the cluster through the hooked entry points
//! with `NoFaults` is byte-identical to the unhooked code path.

use crate::messages::RetryPolicy;
use crate::server::ServerId;

/// Decision points a fault injector may perturb. Every method has a
/// "nothing fails" default so implementors only override the faults they
/// model. Implementations own their randomness (keyed RNG streams), which
/// keeps the cluster's RNG untouched and no-fault runs byte-identical.
pub trait FaultHooks {
    /// Called once per delivery attempt of a server → leader regime
    /// report. Return `true` to drop this attempt on the floor.
    fn report_lost(&mut self, from: ServerId, attempt: u32) -> bool {
        let _ = (from, attempt);
        false
    }

    /// Called when the leader issues a wake order. Return `true` to make
    /// the sleep → C0 transition fail: the order is lost and the server
    /// stays asleep.
    fn wake_fails(&mut self, server: ServerId) -> bool {
        let _ = server;
        false
    }
}

/// The trivial injector: no message is ever lost, no transition ever
/// fails. Used by the plain (fault-free) cluster entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHooks for NoFaults {}

/// Tunables of the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Consecutive reallocation intervals without a leader heartbeat
    /// before the survivors elect a successor.
    pub heartbeat_timeout_intervals: u32,
    /// Retry policy for regime reports lost on the star links.
    pub retry: RetryPolicy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_timeout_intervals: 2,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters describing how much recovery work a run performed. Kept
/// separate from [`crate::messages::MessageStats`] so the fault-free
/// report layout is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Heartbeats the live leader sent (one per interval).
    pub heartbeats_sent: u64,
    /// Intervals in which the expected heartbeat never arrived.
    pub heartbeats_missed: u64,
    /// Completed leader failovers (epoch bumps).
    pub failovers: u64,
    /// Intervals spent with no live leader — no balancing happens.
    pub leaderless_intervals: u64,
    /// Consolidation opportunities missed while leaderless: awake servers
    /// in an undesirable regime during a leaderless interval.
    pub failed_consolidations: u64,
    /// Report delivery attempts dropped by the injector.
    pub reports_lost: u64,
    /// Retries performed after a lost report.
    pub report_retries: u64,
    /// Reports abandoned after exhausting the retry budget (the leader
    /// works from a stale directory entry until the next sweep).
    pub reports_abandoned: u64,
    /// Total simulated seconds spent in retry backoff.
    pub retry_backoff_seconds: f64,
    /// Wake orders that failed (server stayed asleep).
    pub wake_failures: u64,
    /// Orphaned VMs re-admitted after their host crashed.
    pub orphans_readmitted: u64,
    /// Server crash events applied.
    pub servers_crashed: u64,
    /// Server recovery events applied.
    pub servers_recovered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_drops_anything() {
        let mut h = NoFaults;
        for attempt in 1..=5 {
            assert!(!h.report_lost(ServerId(0), attempt));
        }
        assert!(!h.wake_fails(ServerId(3)));
    }

    #[test]
    fn default_config_is_two_interval_timeout() {
        let c = RecoveryConfig::default();
        assert_eq!(c.heartbeat_timeout_intervals, 2);
        assert_eq!(c.retry, RetryPolicy::default());
    }

    #[test]
    fn stats_default_to_zero() {
        let s = RecoveryStats::default();
        assert_eq!(s.failovers, 0);
        assert_eq!(s.retry_backoff_seconds, 0.0);
    }
}
