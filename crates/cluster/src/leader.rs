//! The cluster leader.
//!
//! In the paper's clustered organisation every server reports its regime to
//! a **leader** over a star topology; the leader answers assistance
//! requests by searching its directory for suitable partners (§4). The
//! leader never moves load itself — servers *"negotiate directly with the
//! potential partners"* — it only brokers candidates and issues wake
//! orders.

use crate::messages::{Message, MessageStats};
use crate::server::{Server, ServerId};
use ecolb_energy::regimes::{OperatingRegime, RegimeCensus};

/// A directory entry: the last state a server reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectoryEntry {
    /// Reported operating regime.
    pub regime: OperatingRegime,
    /// Reported normalized load.
    pub load: f64,
    /// Whether the server reported itself asleep.
    pub sleeping: bool,
}

/// The cluster leader: regime directory + partner search + message
/// accounting.
///
/// Partner searches are on the per-candidate hot path of the balancing
/// round, so the leader keeps two occupancy counters (awake underloaded /
/// awake overloaded entries) in sync with the directory. When a counter is
/// zero the search answers in O(1) instead of scanning the whole
/// directory — at low cluster load "no donors anywhere" is the common
/// case, which used to cost O(n) per drain candidate.
#[derive(Debug, Clone)]
pub struct Leader {
    directory: Vec<Option<DirectoryEntry>>,
    stats: MessageStats,
    /// Count of directory entries with `!sleeping && regime.is_underloaded()`.
    underloaded_awake: u32,
    /// Count of directory entries with `!sleeping && regime.is_overloaded()`.
    overloaded_awake: u32,
    /// Reusable sort buffer for the partner searches.
    scratch: Vec<(ServerId, OperatingRegime, f64)>,
}

/// This entry's contribution to the (underloaded, overloaded) occupancy
/// counters.
fn occupancy(e: &DirectoryEntry) -> (u32, u32) {
    if e.sleeping {
        (0, 0)
    } else {
        (
            u32::from(e.regime.is_underloaded()),
            u32::from(e.regime.is_overloaded()),
        )
    }
}

impl Leader {
    /// Creates a leader for a cluster of `n` servers.
    pub fn new(n: usize) -> Self {
        Leader {
            directory: vec![None; n],
            stats: MessageStats::default(),
            underloaded_awake: 0,
            overloaded_awake: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of directory slots.
    pub fn capacity(&self) -> usize {
        self.directory.len()
    }

    /// Ingests a regime report (paper: "the leader is informed
    /// periodically about the regime of each server of the cluster").
    pub fn receive_report(
        &mut self,
        from: ServerId,
        regime: OperatingRegime,
        load: f64,
        sleeping: bool,
    ) {
        let msg = Message::RegimeReport { from, regime, load };
        self.stats.record(&msg);
        let entry = DirectoryEntry {
            regime,
            load,
            sleeping,
        };
        let slot = &mut self.directory[from.index()];
        if let Some(old) = slot {
            let (u, o) = occupancy(old);
            self.underloaded_awake -= u;
            self.overloaded_awake -= o;
        }
        let (u, o) = occupancy(&entry);
        self.underloaded_awake += u;
        self.overloaded_awake += o;
        *slot = Some(entry);
    }

    /// Refreshes the whole directory from live server state — the
    /// per-interval reporting sweep.
    pub fn full_report_sweep(&mut self, servers: &[Server]) {
        for s in servers {
            self.receive_report(s.id(), s.regime(), s.load(), s.is_sleeping());
        }
    }

    /// The last-reported directory entry for a server.
    pub fn entry(&self, id: ServerId) -> Option<DirectoryEntry> {
        self.directory[id.index()]
    }

    /// Census of awake servers by regime, from the directory.
    pub fn census(&self) -> RegimeCensus {
        let mut census = RegimeCensus::new();
        for e in self.directory.iter().flatten() {
            if !e.sleeping {
                census.record(e.regime);
            }
        }
        census
    }

    /// Searches for **receivers**: awake servers reported in R1 or R2,
    /// excluding `requester`. Sorted by *descending* load — filling the
    /// fullest underloaded server first concentrates the workload, which is
    /// the paper's consolidation objective. Accounts the partner-list
    /// message.
    pub fn find_receivers(&mut self, requester: ServerId) -> Vec<ServerId> {
        let mut out = Vec::new();
        self.find_receivers_into(requester, &mut out);
        out
    }

    /// [`Leader::find_receivers`], writing the ids into a caller-owned
    /// buffer so hot loops can reuse the allocation. `out` is cleared
    /// first.
    pub fn find_receivers_into(&mut self, requester: ServerId, out: &mut Vec<ServerId>) {
        out.clear();
        // The reply — possibly an empty list — always counts as one
        // partner-list message; the variant counter is all `record` would
        // update, so bump it directly instead of materialising a
        // `Message::PartnerList` with a cloned candidate vec.
        self.stats.partner_lists += 1;
        if self.underloaded_awake == 0 {
            return;
        }
        self.scratch.clear();
        self.scratch
            .extend(self.directory.iter().enumerate().filter_map(|(i, e)| {
                let e = (*e)?;
                let id = ServerId(i as u32);
                (id != requester && !e.sleeping && e.regime.is_underloaded())
                    .then_some((id, e.regime, e.load))
            }));
        // total_cmp keeps the broker panic-free even if a load ever went
        // NaN; ordering for finite loads is identical to partial_cmp.
        self.scratch
            .sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        out.extend(self.scratch.iter().map(|&(id, _, _)| id));
    }

    /// Searches for **donors**: awake servers reported in R4 or R5,
    /// excluding `requester`. R5 (urgent) first, then by descending load.
    pub fn find_donors(&mut self, requester: ServerId) -> Vec<ServerId> {
        let mut out = Vec::new();
        self.find_donors_into(requester, &mut out);
        out
    }

    /// [`Leader::find_donors`], writing the ids into a caller-owned buffer
    /// so hot loops can reuse the allocation. `out` is cleared first.
    pub fn find_donors_into(&mut self, requester: ServerId, out: &mut Vec<ServerId>) {
        out.clear();
        self.stats.partner_lists += 1;
        if self.overloaded_awake == 0 {
            return;
        }
        self.scratch.clear();
        self.scratch
            .extend(self.directory.iter().enumerate().filter_map(|(i, e)| {
                let e = (*e)?;
                let id = ServerId(i as u32);
                (id != requester && !e.sleeping && e.regime.is_overloaded())
                    .then_some((id, e.regime, e.load))
            }));
        self.scratch.sort_by(|a, b| {
            b.1.index()
                .cmp(&a.1.index())
                .then(b.2.total_cmp(&a.2))
                .then(a.0.cmp(&b.0))
        });
        out.extend(self.scratch.iter().map(|&(id, _, _)| id));
    }

    /// Sleeping servers eligible for a wake order (§4 action 5), shallowest
    /// sleep first — C3 servers wake far faster and cheaper than C6.
    pub fn find_sleepers(&self, servers: &[Server]) -> Vec<ServerId> {
        let mut out: Vec<(ServerId, u8)> = servers
            .iter()
            .filter(|s| s.is_sleeping() && s.wake_ready_at().is_none() && !s.is_crashed())
            .map(|s| (s.id(), s.cstate().depth()))
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out.into_iter().map(|(id, _)| id).collect()
    }

    /// Issues (and accounts) a wake order.
    pub fn issue_wake_order(&mut self, to: ServerId) {
        self.stats.record(&Message::WakeOrder { to });
        if let Some(e) = &mut self.directory[to.index()] {
            let (u, o) = occupancy(e);
            self.underloaded_awake -= u;
            self.overloaded_awake -= o;
            e.sleeping = false; // optimistic: the server is now waking
            let (u, o) = occupancy(e);
            self.underloaded_awake += u;
            self.overloaded_awake += o;
        }
    }

    /// Drops a server from the directory — called when the host is known
    /// to have crashed, so the broker stops offering it as a partner until
    /// it reports again after recovery.
    pub fn mark_offline(&mut self, id: ServerId) {
        if let Some(e) = self.directory[id.index()].take() {
            let (u, o) = occupancy(&e);
            self.underloaded_awake -= u;
            self.overloaded_awake -= o;
        }
    }

    /// Forgets every directory entry while keeping message statistics.
    /// A freshly elected leader starts from an empty directory and must
    /// rebuild it with a [`Leader::full_report_sweep`].
    pub fn reset_directory(&mut self) {
        for e in &mut self.directory {
            *e = None;
        }
        self.underloaded_awake = 0;
        self.overloaded_awake = 0;
    }

    /// Records an assistance request from a server.
    pub fn receive_assistance_request(&mut self, from: ServerId, regime: OperatingRegime) {
        self.stats
            .record(&Message::AssistanceRequest { from, regime });
    }

    /// Records a server↔server negotiation message (for cluster-wide
    /// accounting; negotiation itself is peer-to-peer).
    pub fn observe(&mut self, msg: &Message) {
        self.stats.record(msg);
    }

    /// Cluster-wide message statistics.
    pub fn stats(&self) -> MessageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerPowerSpec;
    use ecolb_energy::regimes::RegimeBoundaries;
    use ecolb_energy::sleep::{CState, SleepModel};
    use ecolb_simcore::time::SimTime;
    use ecolb_workload::application::{AppId, Application};

    fn mk_server(id: u32, load: f64) -> Server {
        let mut s = Server::new(
            ServerId(id),
            RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8),
            ServerPowerSpec::default(),
            SimTime::ZERO,
        );
        if load > 0.0 {
            s.place_app(Application::new(AppId(id as u64), load, 0.01, 4.0));
        }
        s
    }

    #[test]
    fn report_sweep_builds_census() {
        let servers = vec![mk_server(0, 0.1), mk_server(1, 0.5), mk_server(2, 0.95)];
        let mut leader = Leader::new(3);
        leader.full_report_sweep(&servers);
        let census = leader.census();
        assert_eq!(census.count(OperatingRegime::UndesirableLow), 1);
        assert_eq!(census.count(OperatingRegime::Optimal), 1);
        assert_eq!(census.count(OperatingRegime::UndesirableHigh), 1);
        assert_eq!(leader.stats().regime_reports, 3);
    }

    #[test]
    fn receivers_are_underloaded_and_sorted_fullest_first() {
        let servers = vec![
            mk_server(0, 0.05),
            mk_server(1, 0.25),
            mk_server(2, 0.5),
            mk_server(3, 0.22),
        ];
        let mut leader = Leader::new(4);
        leader.full_report_sweep(&servers);
        let rx = leader.find_receivers(ServerId(2));
        // 0.25 (R2) then 0.22 (R2) then 0.05 (R1); the optimal server 2 is
        // the requester and excluded anyway.
        assert_eq!(rx, vec![ServerId(1), ServerId(3), ServerId(0)]);
        assert_eq!(leader.stats().partner_lists, 1);
    }

    #[test]
    fn requester_never_appears_in_its_own_list() {
        let servers = vec![mk_server(0, 0.1), mk_server(1, 0.1)];
        let mut leader = Leader::new(2);
        leader.full_report_sweep(&servers);
        let rx = leader.find_receivers(ServerId(0));
        assert_eq!(rx, vec![ServerId(1)]);
    }

    #[test]
    fn donors_put_r5_before_r4() {
        let servers = vec![mk_server(0, 0.75), mk_server(1, 0.9), mk_server(2, 0.78)];
        let mut leader = Leader::new(3);
        leader.full_report_sweep(&servers);
        let dn = leader.find_donors(ServerId(2));
        // Server 1 is R5; server 0 is R4. Requester 2 excluded.
        assert_eq!(dn, vec![ServerId(1), ServerId(0)]);
    }

    #[test]
    fn sleeping_servers_are_invisible_to_search() {
        let sm = SleepModel::default();
        let mut servers = vec![mk_server(0, 0.0), mk_server(1, 0.25)];
        servers[0].enter_sleep(SimTime::ZERO, CState::C6, &sm);
        let mut leader = Leader::new(2);
        leader.full_report_sweep(&servers);
        let rx = leader.find_receivers(ServerId(1));
        assert!(
            rx.is_empty(),
            "sleeping server must not be offered as receiver"
        );
        assert_eq!(
            leader.census().total(),
            1,
            "census counts awake servers only"
        );
    }

    #[test]
    fn find_sleepers_orders_shallow_first() {
        let sm = SleepModel::default();
        let mut servers = vec![mk_server(0, 0.0), mk_server(1, 0.0), mk_server(2, 0.5)];
        servers[0].enter_sleep(SimTime::ZERO, CState::C6, &sm);
        servers[1].enter_sleep(SimTime::ZERO, CState::C3, &sm);
        let leader = Leader::new(3);
        let sl = leader.find_sleepers(&servers);
        assert_eq!(sl, vec![ServerId(1), ServerId(0)], "C3 wakes before C6");
    }

    #[test]
    fn wake_order_updates_directory_and_stats() {
        let sm = SleepModel::default();
        let mut servers = vec![mk_server(0, 0.0)];
        servers[0].enter_sleep(SimTime::ZERO, CState::C3, &sm);
        let mut leader = Leader::new(1);
        leader.full_report_sweep(&servers);
        assert!(leader.entry(ServerId(0)).unwrap().sleeping);
        leader.issue_wake_order(ServerId(0));
        assert!(!leader.entry(ServerId(0)).unwrap().sleeping);
        assert_eq!(leader.stats().wake_orders, 1);
    }

    #[test]
    fn mark_offline_hides_server_until_next_report() {
        let servers = vec![mk_server(0, 0.25), mk_server(1, 0.5)];
        let mut leader = Leader::new(2);
        leader.full_report_sweep(&servers);
        leader.mark_offline(ServerId(0));
        assert!(leader.entry(ServerId(0)).is_none());
        assert!(
            leader.find_receivers(ServerId(1)).is_empty(),
            "crashed host must not be brokered as a partner"
        );
        leader.full_report_sweep(&servers);
        assert!(leader.entry(ServerId(0)).is_some());
    }

    #[test]
    fn reset_directory_clears_entries_but_keeps_stats() {
        let servers = vec![mk_server(0, 0.25), mk_server(1, 0.5)];
        let mut leader = Leader::new(2);
        leader.full_report_sweep(&servers);
        let reports_before = leader.stats().regime_reports;
        leader.reset_directory();
        assert!(leader.entry(ServerId(0)).is_none());
        assert!(leader.entry(ServerId(1)).is_none());
        assert_eq!(leader.census().total(), 0);
        assert_eq!(
            leader.stats().regime_reports,
            reports_before,
            "message accounting survives failover"
        );
    }

    #[test]
    fn crashed_servers_are_not_wake_candidates() {
        let sm = SleepModel::default();
        let mut servers = vec![mk_server(0, 0.0), mk_server(1, 0.0)];
        servers[0].enter_sleep(SimTime::ZERO, CState::C3, &sm);
        servers[1].crash(SimTime::ZERO);
        let leader = Leader::new(2);
        assert_eq!(
            leader.find_sleepers(&servers),
            vec![ServerId(0)],
            "a dead host cannot honour a wake order"
        );
    }

    /// The occupancy counters used for the O(1) "no partners" early exit
    /// must track every directory mutation path (report, wake order,
    /// offline, reset) — drift would make searches silently return empty.
    #[test]
    fn occupancy_counters_track_directory_mutations() {
        let sm = SleepModel::default();
        let mut servers = vec![
            mk_server(0, 0.1),
            mk_server(1, 0.9),
            mk_server(2, 0.25),
            mk_server(3, 0.0),
        ];
        servers[3].enter_sleep(SimTime::ZERO, CState::C3, &sm);
        let mut leader = Leader::new(4);
        leader.full_report_sweep(&servers);
        // Re-reporting the same server must not double count.
        leader.full_report_sweep(&servers);
        assert_eq!(
            leader.find_receivers(ServerId(1)),
            vec![ServerId(2), ServerId(0)]
        );
        assert_eq!(leader.find_donors(ServerId(0)), vec![ServerId(1)]);
        // Waking server 3 makes its (unloaded ⇒ R1) entry visible.
        leader.issue_wake_order(ServerId(3));
        assert_eq!(
            leader.find_receivers(ServerId(1)),
            vec![ServerId(2), ServerId(0), ServerId(3)]
        );
        // Knocking out the only donor must drop the search to empty (and
        // the empty reply still counts as a partner-list message).
        leader.mark_offline(ServerId(1));
        let lists_before = leader.stats().partner_lists;
        assert!(leader.find_donors(ServerId(0)).is_empty());
        assert_eq!(leader.stats().partner_lists, lists_before + 1);
        leader.reset_directory();
        assert!(leader.find_receivers(ServerId(1)).is_empty());
        assert!(leader.find_donors(ServerId(0)).is_empty());
        // A fresh sweep rebuilds counters from scratch.
        leader.full_report_sweep(&servers);
        assert_eq!(leader.find_donors(ServerId(0)), vec![ServerId(1)]);
    }

    #[test]
    fn assistance_requests_counted() {
        let mut leader = Leader::new(1);
        leader.receive_assistance_request(ServerId(0), OperatingRegime::UndesirableHigh);
        assert_eq!(leader.stats().assistance_requests, 1);
    }
}
