//! Scaling decisions and the in-cluster/local decision ledger.
//!
//! §5 of the paper distinguishes **vertical scaling** — a VM acquires more
//! resources from its current host, low cost `p_k`, only feasible with
//! local free capacity — from **horizontal scaling** — creating/moving VMs
//! on other servers, high cost `q_k` (leader communication plus image
//! transport). The evaluation's headline series (Figure 3, Table 2) is the
//! per-interval **ratio of in-cluster (high-cost) to local (low-cost)
//! decisions**; [`DecisionLedger`] records it.

use ecolb_metrics::timeseries::TimeSeries;

/// The kind of a scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Vertical scaling served locally (cost `p_k`).
    LocalVertical,
    /// Horizontal scaling — a VM migrated inside the cluster (cost `q_k`
    /// plus leader communication `j_k`).
    InClusterHorizontal,
    /// A growth request that could be satisfied neither locally nor in the
    /// cluster this interval (demand deferred; counted separately, not in
    /// the ratio).
    Deferred,
}

impl DecisionKind {
    /// Stable snake_case label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::LocalVertical => "local_vertical",
            DecisionKind::InClusterHorizontal => "in_cluster_horizontal",
            DecisionKind::Deferred => "deferred",
        }
    }
}

/// Per-interval decision counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalCounts {
    /// Local vertical-scaling decisions.
    pub local: u64,
    /// In-cluster horizontal-scaling decisions (migrations).
    pub in_cluster: u64,
    /// Deferred growth requests.
    pub deferred: u64,
}

impl IntervalCounts {
    /// The in-cluster/local ratio for this interval. When no local
    /// decision occurred the denominator is taken as 1 (the paper's plots
    /// never divide by zero because vertical actions dominate, but early
    /// intervals of small clusters can be degenerate).
    pub fn ratio(&self) -> f64 {
        self.in_cluster as f64 / (self.local.max(1)) as f64
    }

    /// Total decisions counted in the ratio.
    pub fn total(&self) -> u64 {
        self.local + self.in_cluster
    }
}

/// Accumulates decisions over a run, closing one [`IntervalCounts`] per
/// reallocation interval.
#[derive(Debug, Clone, Default)]
pub struct DecisionLedger {
    current: IntervalCounts,
    closed: Vec<IntervalCounts>,
}

impl DecisionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision in the open interval.
    pub fn record(&mut self, kind: DecisionKind) {
        match kind {
            DecisionKind::LocalVertical => self.current.local += 1,
            DecisionKind::InClusterHorizontal => self.current.in_cluster += 1,
            DecisionKind::Deferred => self.current.deferred += 1,
        }
    }

    /// Closes the open interval and starts the next one, returning the
    /// closed counts.
    pub fn close_interval(&mut self) -> IntervalCounts {
        let done = std::mem::take(&mut self.current);
        self.closed.push(done);
        done
    }

    /// Counts of the currently open interval.
    pub fn open_interval(&self) -> IntervalCounts {
        self.current
    }

    /// All closed intervals in order.
    pub fn intervals(&self) -> &[IntervalCounts] {
        &self.closed
    }

    /// The Figure 3 series: per-interval in-cluster/local ratios.
    pub fn ratio_series(&self) -> TimeSeries {
        TimeSeries::from_values(
            "in_cluster_to_local_ratio",
            self.closed.iter().map(|c| c.ratio()).collect(),
        )
    }

    /// Lifetime totals across closed intervals.
    pub fn totals(&self) -> IntervalCounts {
        let mut t = IntervalCounts::default();
        for c in &self.closed {
            t.local += c.local;
            t.in_cluster += c.in_cluster;
            t.deferred += c.deferred;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_open_interval() {
        let mut l = DecisionLedger::new();
        l.record(DecisionKind::LocalVertical);
        l.record(DecisionKind::LocalVertical);
        l.record(DecisionKind::InClusterHorizontal);
        let open = l.open_interval();
        assert_eq!(open.local, 2);
        assert_eq!(open.in_cluster, 1);
        assert_eq!(open.total(), 3);
    }

    #[test]
    fn close_interval_resets_and_stores() {
        let mut l = DecisionLedger::new();
        l.record(DecisionKind::InClusterHorizontal);
        let c = l.close_interval();
        assert_eq!(c.in_cluster, 1);
        assert_eq!(l.open_interval(), IntervalCounts::default());
        assert_eq!(l.intervals().len(), 1);
    }

    #[test]
    fn ratio_with_and_without_locals() {
        let c = IntervalCounts {
            local: 4,
            in_cluster: 2,
            deferred: 0,
        };
        assert!((c.ratio() - 0.5).abs() < 1e-12);
        let degenerate = IntervalCounts {
            local: 0,
            in_cluster: 3,
            deferred: 0,
        };
        assert_eq!(degenerate.ratio(), 3.0, "denominator floors at 1");
    }

    #[test]
    fn deferred_does_not_enter_ratio() {
        let c = IntervalCounts {
            local: 2,
            in_cluster: 2,
            deferred: 100,
        };
        assert!((c.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn ratio_series_matches_intervals() {
        let mut l = DecisionLedger::new();
        l.record(DecisionKind::InClusterHorizontal);
        l.record(DecisionKind::LocalVertical);
        l.close_interval(); // ratio 1.0
        l.record(DecisionKind::LocalVertical);
        l.record(DecisionKind::LocalVertical);
        l.record(DecisionKind::InClusterHorizontal);
        l.close_interval(); // ratio 0.5
        let ts = l.ratio_series();
        assert_eq!(ts.values(), &[1.0, 0.5]);
    }

    #[test]
    fn totals_sum_closed_intervals() {
        let mut l = DecisionLedger::new();
        l.record(DecisionKind::LocalVertical);
        l.close_interval();
        l.record(DecisionKind::InClusterHorizontal);
        l.record(DecisionKind::Deferred);
        l.close_interval();
        // Open-interval records are not in totals.
        l.record(DecisionKind::LocalVertical);
        let t = l.totals();
        assert_eq!(t.local, 1);
        assert_eq!(t.in_cluster, 1);
        assert_eq!(t.deferred, 1);
    }
}
