//! # ecolb-cluster
//!
//! The clustered cloud model of *"Energy-aware Load Balancing Policies for
//! the Cloud Ecosystem"* (Paya & Marinescu, 2014), §4–5:
//!
//! * [`server`] — servers with per-server regime boundaries, C-states and
//!   energy meters;
//! * [`leader`] — the star-topology cluster leader: regime directory,
//!   partner search, wake orders;
//! * [`messages`] — the protocol vocabulary and `j_k` communication costs;
//! * [`migration`] — the VM migration cost model (§3 questions 5–8);
//! * [`scaling`] — vertical vs horizontal decisions and the
//!   in-cluster/local ratio ledger (Figure 3 / Table 2);
//! * [`balance`] — one round of the §4 regime protocol (shed, drain &
//!   sleep, wake);
//! * [`cluster`] — the reallocation-interval driver tying it together;
//! * [`sim`] — the event-driven timed variant (migration/wake latencies);
//! * [`admission`] — §3/§6 admission control with arrival streams;
//! * [`instances`] — the flat instance snapshot the serving layer
//!   (`ecolb-serve`) diffs into discovery change events;
//! * [`federation`] — the multi-cluster tier (§4 scalability);
//! * [`mix`] — heterogeneous Table 1 server-class populations;
//! * [`recovery`] — the failure-recovery protocol: fault hooks,
//!   heartbeat/failover configuration and degradation accounting (driven
//!   by the `ecolb-faults` injection crate).
//!
//! ```
//! use ecolb_cluster::{Cluster, ClusterConfig};
//! use ecolb_workload::WorkloadSpec;
//!
//! let config = ClusterConfig::paper(50, WorkloadSpec::paper_low_load());
//! let mut cluster = Cluster::new(config, 7);
//! let report = cluster.run(5);
//! assert_eq!(report.ratio_series.len(), 5);
//! assert!(report.energy.total_j() > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod balance;
pub mod cluster;
pub mod federation;
pub mod instances;
pub mod leader;
pub mod messages;
pub mod migration;
pub mod mix;
pub mod recovery;
pub mod scaling;
pub mod server;
pub mod sim;

pub use admission::{
    AdmissionController, AdmissionPolicy, AdmissionStats, ArrivalSpec, ServiceRequest,
};
pub use balance::{
    balance_round, balance_round_scratch, balance_round_traced, balance_round_with_hooks,
    BalanceConfig, BalanceOutcome, BalanceScratch, FillLimit, MigrationRecord,
};
pub use cluster::{Cluster, ClusterConfig, ClusterRunReport};
pub use federation::{Federation, FederationConfig, FederationReport};
pub use instances::InstanceInfo;
pub use leader::Leader;
pub use messages::{CommLedger, Message, MessageStats, RetryPolicy};
pub use migration::{MigrationCost, MigrationCostModel};
pub use mix::ServerMix;
pub use recovery::{FaultHooks, NoFaults, RecoveryConfig, RecoveryStats};
pub use scaling::{DecisionKind, DecisionLedger, IntervalCounts};
pub use server::{Server, ServerId, ServerPowerSpec};
pub use sim::{SimEvent, TimedClusterSim, TimedRunReport};
