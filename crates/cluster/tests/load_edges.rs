//! Edge tests for the load-fraction guards: every ratio over an
//! awake/instance count must degrade to a defined 0.0 — never NaN,
//! never a divide-by-zero panic — when a whole cluster crashes or
//! drains to sleep.

use ecolb_cluster::cluster::{Cluster, ClusterConfig};
use ecolb_cluster::federation::{Federation, FederationConfig};
use ecolb_cluster::server::ServerId;
use ecolb_workload::generator::WorkloadSpec;

fn config(n: usize) -> ClusterConfig {
    ClusterConfig::paper(n, WorkloadSpec::paper_low_load())
}

fn crash_everything(cluster: &mut Cluster) {
    let at = cluster.now();
    for i in 0..cluster.servers().len() {
        cluster.crash_server(ServerId(i as u32), at);
    }
}

#[test]
fn all_crashed_cluster_reports_defined_zeros() {
    let mut cluster = Cluster::new(config(12), 5);
    crash_everything(&mut cluster);

    let (sleeping, load) = cluster.interval_stats();
    assert_eq!(sleeping, 12, "crashed servers count as not-awake");
    assert!(load.is_finite());
    assert_eq!(load, 0.0);

    assert_eq!(cluster.load_fraction(), 0.0);
    assert_eq!(cluster.awake_load_fraction(), 0.0);
    assert!(cluster.leaderless(), "every host is down");

    let census = cluster.census();
    assert_eq!(census.total(), 0);
    assert!(census.undesirable_fraction().is_finite());
    assert_eq!(census.undesirable_fraction(), 0.0);
    assert_eq!(census.acceptable_fraction(), 0.0);
}

#[test]
fn awake_load_fraction_averages_only_awake_servers() {
    let mut cluster = Cluster::new(config(8), 9);
    let whole = cluster.load_fraction();
    assert!(whole > 0.0);
    // With every server awake the two means agree.
    assert!((cluster.awake_load_fraction() - whole).abs() < 1e-12);

    // Crash all but server 0: the awake mean collapses to server 0's
    // load while the whole-cluster mean keeps the dead capacity in the
    // denominator.
    let at = cluster.now();
    for i in 1..8 {
        cluster.crash_server(ServerId(i), at);
    }
    let s0 = cluster.servers()[0].load();
    assert!((cluster.awake_load_fraction() - s0).abs() < 1e-12);
    assert!(cluster.load_fraction() <= s0 / 8.0 + 1e-12);
}

#[test]
fn instance_snapshot_of_a_dead_cluster_is_complete_and_inert() {
    let mut cluster = Cluster::new(config(6), 3);
    crash_everything(&mut cluster);
    let mut out = Vec::new();
    cluster.instance_snapshot(&mut out);
    assert_eq!(out.len(), 6);
    for inst in &out {
        assert!(!inst.awake);
        assert_eq!(inst.vms, 0);
        assert!(inst.load.is_finite());
    }
}

#[test]
fn interval_stats_after_consolidation_sleeps_servers_stays_finite() {
    // A low-load cluster consolidates aggressively; after a few
    // intervals a good fraction of servers sleep. The load fraction must
    // stay finite and within [0, 1] throughout.
    let mut cluster = Cluster::new(config(40), 7);
    for _ in 0..12 {
        cluster.run_interval();
        let (sleeping, load) = cluster.interval_stats();
        assert!(sleeping <= 40);
        assert!(load.is_finite());
        assert!((0.0..=1.0).contains(&load), "load {load}");
        assert!(cluster.awake_load_fraction().is_finite());
    }
}

#[test]
fn federation_mean_load_is_defined_and_matches_loads() {
    let fed = Federation::new(
        vec![config(10), config(10)],
        FederationConfig::default(),
        21,
    );
    let loads = fed.loads();
    let expect = loads.iter().sum::<f64>() / loads.len() as f64;
    assert!((fed.mean_load() - expect).abs() < 1e-12);
    assert!(fed.mean_load().is_finite());
}
