//! Property tests for the leader's partner selection.
//!
//! The broker must be a *pure function of directory state*: which donors
//! and receivers it proposes may depend only on what each server last
//! reported, never on the order the reports arrived in, and ties must
//! break deterministically (by server id). These are the invariants the
//! failure-recovery protocol leans on — after a failover the directory is
//! rebuilt from a fresh report sweep whose arrival order differs from the
//! original, and the new leader must still make the same decisions.

use ecolb_cluster::leader::Leader;
use ecolb_cluster::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_simcore::proptest_lite::{check, Gen};

const REGIMES: [OperatingRegime; 5] = [
    OperatingRegime::UndesirableLow,
    OperatingRegime::SuboptimalLow,
    OperatingRegime::Optimal,
    OperatingRegime::SuboptimalHigh,
    OperatingRegime::UndesirableHigh,
];

/// One server's latest report.
#[derive(Debug, Clone, Copy)]
struct ReportLine {
    from: ServerId,
    regime: OperatingRegime,
    load: f64,
    sleeping: bool,
}

fn random_reports(g: &mut Gen) -> Vec<ReportLine> {
    let n = g.usize_in(2, 40);
    (0..n)
        .map(|i| ReportLine {
            from: ServerId(i as u32),
            regime: REGIMES[g.usize_in(0, REGIMES.len())],
            load: g.f64_in(0.0, 1.0),
            sleeping: g.rng().chance(0.25),
        })
        .collect()
}

fn leader_after(reports: &[ReportLine], order: &[usize]) -> Leader {
    let mut leader = Leader::new(reports.len());
    for &i in order {
        let r = reports[i];
        leader.receive_report(r.from, r.regime, r.load, r.sleeping);
    }
    leader
}

#[test]
fn selection_is_independent_of_report_arrival_order() {
    check("selection_order_independent", |g| {
        let reports = random_reports(g);
        let requester = ServerId(g.usize_in(0, reports.len()) as u32);

        let in_order: Vec<usize> = (0..reports.len()).collect();
        let mut shuffled = in_order.clone();
        g.rng().shuffle(&mut shuffled);

        let mut a = leader_after(&reports, &in_order);
        let mut b = leader_after(&reports, &shuffled);

        assert_eq!(
            a.find_donors(requester),
            b.find_donors(requester),
            "donor list depends on arrival order"
        );
        assert_eq!(
            a.find_receivers(requester),
            b.find_receivers(requester),
            "receiver list depends on arrival order"
        );
    });
}

#[test]
fn selection_is_stable_under_repeated_queries() {
    check("selection_idempotent", |g| {
        let reports = random_reports(g);
        let requester = ServerId(0);
        let order: Vec<usize> = (0..reports.len()).collect();
        let mut leader = leader_after(&reports, &order);
        // Querying mutates only message stats, never the answer.
        let donors = leader.find_donors(requester);
        let receivers = leader.find_receivers(requester);
        for _ in 0..3 {
            assert_eq!(leader.find_donors(requester), donors);
            assert_eq!(leader.find_receivers(requester), receivers);
        }
    });
}

#[test]
fn selected_partners_satisfy_the_regime_contract() {
    check("selection_regime_contract", |g| {
        let reports = random_reports(g);
        let requester = ServerId(g.usize_in(0, reports.len()) as u32);
        let order: Vec<usize> = (0..reports.len()).collect();
        let mut leader = leader_after(&reports, &order);

        for id in leader.find_donors(requester) {
            let r = reports[id.index()];
            assert_ne!(id, requester, "requester offered as its own donor");
            assert!(!r.sleeping, "sleeping server {id:?} offered as donor");
            assert!(r.regime.is_overloaded(), "donor {id:?} not overloaded");
        }
        for id in leader.find_receivers(requester) {
            let r = reports[id.index()];
            assert_ne!(id, requester, "requester offered as its own receiver");
            assert!(!r.sleeping, "sleeping server {id:?} offered as receiver");
            assert!(r.regime.is_underloaded(), "receiver {id:?} not underloaded");
        }
    });
}

#[test]
fn equal_load_ties_break_by_ascending_server_id() {
    check("selection_tie_break", |g| {
        // Every eligible server reports the *same* regime and load, so the
        // only possible order is the deterministic id tie-break.
        let n = g.usize_in(3, 30);
        let load = g.f64_in(0.8, 1.0);
        let mut leader = Leader::new(n);
        for i in 0..n {
            leader.receive_report(
                ServerId(i as u32),
                OperatingRegime::SuboptimalHigh,
                load,
                false,
            );
        }
        let donors = leader.find_donors(ServerId(0));
        let ids: Vec<u32> = donors.iter().map(|s| s.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "equal-key donors must come in id order");
        assert_eq!(donors.len(), n - 1);
    });
}

#[test]
fn rebuilt_directory_reproduces_the_original_selection() {
    check("selection_survives_directory_rebuild", |g| {
        // The failover path: wipe the directory, replay the same state in
        // a different order (a fresh report sweep), same answers.
        let reports = random_reports(g);
        let requester = ServerId(1 % reports.len() as u32);
        let order: Vec<usize> = (0..reports.len()).collect();
        let mut original = leader_after(&reports, &order);
        let donors = original.find_donors(requester);
        let receivers = original.find_receivers(requester);

        let mut rebuilt = leader_after(&reports, &order);
        rebuilt.reset_directory();
        let mut sweep: Vec<usize> = (0..reports.len()).collect();
        g.rng().shuffle(&mut sweep);
        for &i in &sweep {
            let r = reports[i];
            rebuilt.receive_report(r.from, r.regime, r.load, r.sleeping);
        }
        assert_eq!(rebuilt.find_donors(requester), donors);
        assert_eq!(rebuilt.find_receivers(requester), receivers);
    });
}
