//! Edge cases of the failure-recovery protocol that the sweep-style
//! fault tests never hit: correlated crashes taking out the leader *and*
//! its would-be successor in the same interval, and a failover landing
//! on a server that is itself stuck mid-drain.

use ecolb_cluster::cluster::{Cluster, ClusterConfig};
use ecolb_cluster::server::ServerId;
use ecolb_simcore::time::SimTime;
use ecolb_workload::generator::WorkloadSpec;

/// Leader (server 0) and the lowest-id successor candidate (server 1)
/// crash in the same instant. The election must skip both dead hosts
/// and settle on server 2, and both orphan sets must re-enter through
/// admission rather than vanish.
#[test]
fn simultaneous_leader_and_successor_crash_elects_the_next_live_server() {
    let config = ClusterConfig::paper(30, WorkloadSpec::paper_low_load());
    let mut cluster = Cluster::new(config, 20140109);
    assert_eq!(cluster.leader_host(), ServerId(0));

    let t0 = SimTime::ZERO;
    let orphans_leader = cluster.crash_server(ServerId(0), t0);
    let orphans_partner = cluster.crash_server(ServerId(1), t0);
    assert!(
        !orphans_leader.is_empty() && !orphans_partner.is_empty(),
        "paper-load servers start populated"
    );
    let orphan_count = (orphans_leader.len() + orphans_partner.len()) as u64;
    cluster.readmit_orphans(orphans_leader);
    cluster.readmit_orphans(orphans_partner);
    assert!(cluster.leaderless());

    // Interval 1: first missed heartbeat — below the 2-interval timeout,
    // so the cluster stays leaderless and skips balancing.
    cluster.run_interval();
    assert!(cluster.leaderless());
    assert_eq!(cluster.leader_epoch(), 0);
    assert_eq!(cluster.recovery_stats().leaderless_intervals, 1);

    // Interval 2: timeout fires. Servers 0 and 1 are both dead, so the
    // lowest-id *live* server must win the election.
    cluster.run_interval();
    assert!(!cluster.leaderless());
    assert_eq!(cluster.leader_host(), ServerId(2));
    assert_eq!(cluster.leader_epoch(), 1);

    let stats = cluster.recovery_stats();
    assert_eq!(stats.servers_crashed, 2);
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.heartbeats_missed, 2);
    assert_eq!(stats.orphans_readmitted, orphan_count);

    // The new leader keeps the cluster operational.
    cluster.run_interval();
    assert_eq!(cluster.recovery_stats().heartbeats_sent, 1);
}

/// Failover onto a server that is itself mid-drain. With every server in
/// R1 and no R2 receivers anywhere, drains can never complete: server 1
/// keeps failing to drain and stays awake with its VMs. When the leader
/// crashes, the election picks exactly that half-drained server — and
/// the cluster must keep running under it.
#[test]
fn failover_lands_on_a_server_stuck_mid_drain() {
    let spec = WorkloadSpec {
        load_lo: 0.04,
        load_hi: 0.10,
        ..WorkloadSpec::paper_low_load()
    };
    let mut config = ClusterConfig::paper(12, spec);
    // Let every R1 server request its drain in the same interval (the
    // paper config caps the per-interval consolidation budget).
    config.balance.drain_candidates_per_interval = None;
    let mut cluster = Cluster::new(config, 20140109);

    // One fault-free interval: every awake R1 server requests a drain and
    // fails (nobody is in R2 to receive), so server 1 is mid-drain.
    let outcome = cluster.run_interval();
    assert!(
        outcome.failed_drains.contains(&ServerId(1)),
        "server 1 should be stuck mid-drain, got {:?}",
        outcome.failed_drains
    );
    assert!(outcome.slept.is_empty(), "nothing can fully drain");
    assert!(cluster.servers()[1].is_awake());
    assert!(cluster.servers()[1].app_count() > 0, "still holds VMs");

    // Kill the leader; after the 2-interval heartbeat timeout the
    // mid-drain server 1 is the lowest-id live server and must win.
    let orphans = cluster.crash_server(ServerId(0), cluster.now());
    cluster.readmit_orphans(orphans);
    cluster.run_interval();
    assert!(cluster.leaderless());
    cluster.run_interval();
    assert_eq!(cluster.leader_host(), ServerId(1));
    assert_eq!(cluster.leader_epoch(), 1);
    assert!(cluster.servers()[1].is_awake(), "leader must be awake");

    // Life goes on under the half-drained leader: heartbeats resume and
    // further intervals run without a second election.
    let before = cluster.recovery_stats().heartbeats_sent;
    cluster.run_interval();
    cluster.run_interval();
    let stats = cluster.recovery_stats();
    assert_eq!(stats.heartbeats_sent, before + 2);
    assert_eq!(stats.failovers, 1, "no spurious re-election");
    assert_eq!(cluster.leader_epoch(), 1);
}
