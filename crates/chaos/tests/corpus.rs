//! Regression-corpus replay: every shrunk reproducer ever committed
//! under `tests/regressions/` is parsed and re-run against the *real*
//! simulation on every `cargo test`.
//!
//! Each corpus file is a minimal fault schedule that once exposed an
//! invariant violation (see `shrinker_validation.rs` for how one is
//! produced and blessed). On a healthy tree the replay must be clean —
//! a reappearing violation means the bug the reproducer was shrunk from
//! has crept back in.

use ecolb_chaos::{run_plan, ReproArtifact};
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir("tests/regressions")
        .expect("corpus directory tests/regressions must exist")
        .map(|entry| entry.expect("read corpus entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn regression_corpus_replays_clean() {
    let files = corpus_files();
    assert!(
        !files.is_empty(),
        "the corpus must hold at least one reproducer"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let artifact = ReproArtifact::parse(&text)
            .unwrap_or_else(|e| panic!("{}: unparseable corpus file: {e}", path.display()));
        let outcome = run_plan(&artifact.scenario, &artifact.plan);
        assert!(
            outcome.ok(),
            "{}: invariant `{}` violated again at intensity-shrunk scale \
             (seed {}, {} servers, {} intervals): {:?}",
            path.display(),
            artifact.invariant,
            artifact.plan.seed,
            artifact.scenario.n_servers,
            artifact.scenario.intervals,
            outcome.violations
        );
        assert!(
            outcome.digests_checked >= 1,
            "{}: replay checked no digests",
            path.display()
        );
    }
}
