//! The empty-chaos no-op contract, end to end.
//!
//! A zero-intensity sweep must be *structurally* free: generation
//! produces empty plans without constructing a single RNG stream, the
//! fault layer draws nothing, the attached invariant checker only reads,
//! and the resulting [`TimedRunReport`]s are byte-identical to plain
//! fault-free runs — at any `par` fan-out width.

use ecolb_chaos::{generate_plan, sweep, ChaosScenario, SweepSummary};
use ecolb_cluster::sim::{TimedClusterSim, TimedRunReport};
use ecolb_metrics::json::ToJson;
use ecolb_metrics::report::Report;

const SEED: u64 = 20140109;
const PLANS: u64 = 4;

fn scenario() -> ChaosScenario {
    ChaosScenario::new(30, 8, 0.0)
}

fn render(r: &TimedRunReport, tag: &str) -> String {
    let mut rep = Report::new(format!("noop_{tag}"), 0);
    rep.scalar("energy_j", r.base.energy.total_j())
        .scalar("migrations", r.base.migrations as f64)
        .scalar("events_processed", r.events_processed as f64)
        .scalar("downtime_demand_seconds", r.downtime_demand_seconds)
        .push_series(r.base.ratio_series.clone())
        .push_series(r.base.sleeping_series.clone());
    ToJson::to_json(&rep)
}

#[test]
fn zero_intensity_plans_are_structurally_empty() {
    let scenario = scenario();
    for index in 0..PLANS {
        let plan = generate_plan(SEED, index, &scenario);
        assert!(plan.is_empty(), "plan {index} not empty: {plan:?}");
        assert!(plan.events.is_empty());
    }
}

#[test]
fn zero_intensity_sweep_is_byte_identical_at_any_thread_count() {
    let scenario = scenario();

    // Fault-free baselines of the same `(seed, config, intervals)`.
    let plain: Vec<TimedRunReport> = (0..PLANS)
        .map(|index| {
            let plan = generate_plan(SEED, index, &scenario);
            TimedClusterSim::new(scenario.config(), plan.seed, scenario.intervals).run()
        })
        .collect();

    let base = sweep(&scenario, SEED, PLANS, 1);
    for threads in [2usize, 8] {
        assert_eq!(
            sweep(&scenario, SEED, PLANS, threads),
            base,
            "sweep diverged at {threads} threads"
        );
    }

    let summary = SweepSummary::of(&base);
    assert!(summary.clean());
    assert_eq!(summary.plans, PLANS);
    assert_eq!(summary.events_injected, 0);
    assert_eq!(summary.digests_checked, PLANS * scenario.intervals);

    for (index, (outcome, plain)) in base.iter().zip(&plain).enumerate() {
        assert!(outcome.ok());
        assert!(outcome.report.plan_was_empty, "plan {index} drew faults");
        assert_eq!(outcome.report.degradation.availability, 1.0);
        assert_eq!(outcome.report.degradation.lost_reports, 0);
        // Byte-identical to the fault-free run: the checker observed
        // every interval without perturbing one.
        assert_eq!(
            &outcome.report.timed, plain,
            "plan {index}: checked run diverged from the fault-free baseline"
        );
        assert_eq!(
            render(&outcome.report.timed, "chaos"),
            render(plain, "chaos"),
            "plan {index}: rendered reports differ"
        );
    }
}
