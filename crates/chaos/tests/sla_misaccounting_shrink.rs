//! Validates the checker → shrinker → artifact pipeline against a
//! *deliberately seeded* SLA-class misaccounting bug.
//!
//! The bug lives only in this test, in a hand-rolled per-interval QoS
//! reporter feeding state digests to the [`InvariantChecker`] through
//! the public tracer seam. The reporter keeps a cumulative saturation
//! (SLA violation) ledger; whenever the fault plan schedules a server
//! crash it "re-buckets" the crashed server's past gold-class
//! saturations by *subtracting* them from the cumulative count — but
//! cumulative counters never fall, so from the second digest on the
//! checker's `sla_accounting` invariant fires. The shipped simulation
//! has no such path; the fixture proves that
//!
//! 1. the checker catches class misaccounting and names
//!    `sla_accounting`, and
//! 2. the shrinker reduces a noisy violating mixed-spot plan to a
//!    ≤ 3-server reproducer whose stochastic families are all zeroed.
//!
//! The ignored `bless_sla_regression_corpus` test regenerates the
//! committed corpus artifact from this same pipeline:
//!
//! ```text
//! cargo test -p ecolb-chaos --test sla_misaccounting_shrink -- --ignored
//! ```

use ecolb_chaos::{
    generate_plan, run_plan, shrink, ChaosScenario, FleetKind, InvariantChecker, ReproArtifact,
};
use ecolb_faults::plan::{FaultEventKind, FaultPlan};
use ecolb_metrics::json::ToJson;
use ecolb_trace::{TraceEventKind, Tracer};

const SEED: u64 = 20140109;

/// The noisy starting point: the Koomey-mixed spot fleet at high
/// intensity, so plans mix sampled crash bursts with scheduled spot
/// reclaims and every stochastic family enabled.
fn scenario() -> ChaosScenario {
    ChaosScenario::new(24, 8, 0.9).with_fleet(FleetKind::MixedSpot)
}

/// The buggy per-interval QoS reporter. It feeds otherwise-consistent
/// digests (census, VM ledger, per-class energy meters) to the checker;
/// the one rotten part is the saturation ledger, which loses 4 counts
/// the interval after a crash is scheduled anywhere in the plan.
fn buggy_reporter(plan: &FaultPlan, scenario: &ChaosScenario) -> InvariantChecker {
    let n = scenario.n_servers as u32;
    let mut checker = InvariantChecker::new(n).keep_running();
    let crash_scheduled = plan
        .events
        .iter()
        .any(|e| matches!(e.kind, FaultEventKind::ServerCrash { .. }));
    let tau = scenario.realloc_interval().ticks();
    let hosted = scenario.n_servers as u64 * 4;
    for interval in 0..scenario.intervals {
        let k = (interval + 1) as f64;
        // The honest ledger: three saturation events per interval.
        let honest = 3 * (interval + 1);
        // THE BUG: a scheduled crash makes the reporter re-bucket the
        // victim's past gold-class saturations out of the cumulative
        // count. Cumulative counters never fall.
        let saturation = if crash_scheduled && interval >= 1 {
            honest - 4
        } else {
            honest
        };
        checker.event(
            tau.saturating_mul(interval + 1),
            TraceEventKind::StateDigest {
                interval,
                hosted,
                dup_hosted: 0,
                queued: 0,
                created: hosted,
                retired: 0,
                orphaned: 0,
                imported: 0,
                exported: 0,
                awake: n,
                sleeping: 0,
                crashed: 0,
                sleeping_hosting: 0,
                leader: 0,
                leader_crashed: false,
                epoch: 0,
                energy_j: 900.0 * k,
                energy_volume_j: 500.0 * k,
                energy_midrange_j: 300.0 * k,
                energy_highend_j: 100.0 * k,
                energy_migration_j: 0.0,
                saturation,
            },
        );
    }
    checker
}

fn violates(plan: &FaultPlan, scenario: &ChaosScenario) -> bool {
    !buggy_reporter(plan, scenario).ok()
}

#[test]
fn checker_catches_the_seeded_sla_misaccounting() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    assert!(
        plan.events
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::ServerCrash { .. })),
        "the mixed-spot fleet always schedules reclaims"
    );
    let checker = buggy_reporter(&plan, &scenario);
    let v = checker.first_violation().expect("checker must fire");
    assert_eq!(v.invariant, "sla_accounting");
    assert!(
        v.detail.contains("saturation count fell"),
        "detail: {}",
        v.detail
    );
}

#[test]
fn shrinker_reduces_the_misaccounting_to_a_tiny_reproducer() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    assert!(plan.events.len() > 1, "want a noisy input: {plan:?}");

    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);

    // Acceptance bar: a ≤ 3-server reproducer. The pipeline actually
    // reaches the 2-server minimum with a single surviving crash event
    // and every stochastic family zeroed; the horizon stops at two
    // intervals because the monotonicity bug needs two digests to show.
    assert!(
        out.scenario.n_servers <= 3,
        "reproducer still needs {} servers",
        out.scenario.n_servers
    );
    assert_eq!(out.plan.events.len(), 1);
    assert!(matches!(
        out.plan.events[0].kind,
        FaultEventKind::ServerCrash { .. }
    ));
    assert_eq!(out.plan.message_loss_prob, 0.0);
    assert_eq!(out.plan.message_delay_prob, 0.0);
    assert_eq!(out.plan.wake_failure_prob, 0.0);
    assert_eq!(out.scenario.intervals, 2);
    assert_eq!(
        out.scenario.fleet,
        FleetKind::MixedSpot,
        "shrinking preserves the fleet axis"
    );

    // The minimal pair still reproduces under the buggy reporter…
    let v = buggy_reporter(&out.plan, &out.scenario)
        .first_violation()
        .cloned()
        .expect("reproducer must fire");
    assert_eq!(v.invariant, "sla_accounting");
    // …the artifact round-trips with its fleet…
    let artifact = ReproArtifact::new(&v, out.scenario, out.plan.clone());
    let parsed = ReproArtifact::parse(&artifact.to_json()).expect("round trip");
    assert_eq!(parsed, artifact);
    // …and the *real* simulation replays the pair clean, which is what
    // lets the artifact live in the regression corpus.
    let real = run_plan(&out.scenario, &out.plan);
    assert!(real.ok(), "real replay violated: {:?}", real.violations);
}

/// Regenerates the committed corpus artifact from an actual
/// checker+shrinker run. Ignored by default: the artifact is committed,
/// and `corpus.rs` replays it on every `cargo test`.
#[test]
#[ignore = "corpus bless helper: rewrites tests/regressions/sla_class_misaccounting.json"]
fn bless_sla_regression_corpus() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);
    let checker = buggy_reporter(&out.plan, &out.scenario);
    let v = checker.first_violation().expect("reproducer must fire");
    let artifact = ReproArtifact::new(v, out.scenario, out.plan.clone());
    std::fs::create_dir_all("tests/regressions").expect("create corpus dir");
    std::fs::write(
        "tests/regressions/sla_class_misaccounting.json",
        artifact.to_json() + "\n",
    )
    .expect("write corpus artifact");
}
