//! Validates the checker → shrinker → artifact pipeline against a
//! *deliberately injected* invariant bug.
//!
//! The bug lives only in this test: a hand-rolled interval driver that —
//! whenever the plan schedules at least one server crash — duplicates a
//! hosted VM through the federation seam before the first interval,
//! breaking VM conservation (`dup_hosted ≥ 1`). The shipped simulation
//! has no such path; the fixture exists to prove that
//!
//! 1. the [`InvariantChecker`] catches the corruption and names
//!    `vm_conservation`, and
//! 2. the shrinker reduces an arbitrarily noisy violating plan to a
//!    minimal reproducer (≤ 5 fault events; in practice exactly one).
//!
//! The ignored `bless_regression_corpus` test regenerates the committed
//! corpus artifact from this same pipeline:
//!
//! ```text
//! cargo test -p ecolb-chaos --test shrinker_validation -- --ignored
//! ```

use ecolb_chaos::{generate_plan, shrink, ChaosScenario, InvariantChecker, ReproArtifact};
use ecolb_cluster::cluster::Cluster;
use ecolb_cluster::recovery::NoFaults;
use ecolb_cluster::server::ServerId;
use ecolb_faults::plan::{FaultEventKind, FaultPlan};
use ecolb_metrics::json::ToJson;

const SEED: u64 = 20140109;

/// The buggy interval driver: a plain cluster run whose "fault
/// injection" for a scheduled crash is… hosting the same VM twice.
fn buggy_run(plan: &FaultPlan, scenario: &ChaosScenario) -> InvariantChecker {
    let mut cluster = Cluster::new(scenario.config(), plan.seed);
    let mut checker = InvariantChecker::new(scenario.n_servers as u32).keep_running();
    let mut bug_armed = plan
        .events
        .iter()
        .any(|e| matches!(e.kind, FaultEventKind::ServerCrash { .. }));
    for _ in 0..scenario.intervals {
        if bug_armed && scenario.n_servers >= 2 {
            if let Some(app) = cluster.servers()[0].apps().first().cloned() {
                // THE BUG: the VM keeps running on server 0 *and* gets
                // placed on server 1 under the same id.
                cluster.place_app_for_federation(ServerId(1), app);
                bug_armed = false;
            }
        }
        cluster.run_interval_traced(&mut NoFaults, &mut checker);
        if !checker.ok() {
            break;
        }
    }
    checker
}

fn violates(plan: &FaultPlan, scenario: &ChaosScenario) -> bool {
    !buggy_run(plan, scenario).ok()
}

/// A generated plan with scheduled crashes plus every stochastic family
/// enabled — realistic fuzzer noise for the shrinker to chew through.
fn noisy_violating_plan(scenario: &ChaosScenario) -> FaultPlan {
    for index in 0..50 {
        let plan = generate_plan(SEED, index, scenario);
        if plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::ServerCrash { .. }))
        {
            return plan;
        }
    }
    unreachable!("50 plans at intensity 0.9 over 24 servers must crash something")
}

#[test]
fn checker_catches_the_injected_duplicate_placement() {
    let scenario = ChaosScenario::new(24, 8, 0.9);
    let plan = noisy_violating_plan(&scenario);
    let checker = buggy_run(&plan, &scenario);
    let v = checker.first_violation().expect("checker must fire");
    assert_eq!(v.invariant, "vm_conservation");
    assert!(
        v.detail.contains("hosted on more than one server"),
        "detail: {}",
        v.detail
    );
    assert!(!v.window.is_empty(), "violation carries its event window");
}

#[test]
fn shrinker_reduces_the_violating_plan_to_a_minimal_reproducer() {
    let scenario = ChaosScenario::new(24, 8, 0.9);
    let plan = noisy_violating_plan(&scenario);
    assert!(plan.events.len() > 1, "want a noisy input: {plan:?}");

    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);

    // Acceptance bar: ≤ 5 fault events. The pipeline actually reaches
    // the single essential event, with every stochastic family zeroed
    // and the horizon collapsed to one interval.
    assert!(
        out.plan.events.len() <= 5,
        "reproducer still has {} events",
        out.plan.events.len()
    );
    assert_eq!(out.plan.events.len(), 1);
    assert!(matches!(
        out.plan.events[0].kind,
        FaultEventKind::ServerCrash { .. }
    ));
    assert_eq!(out.plan.message_loss_prob, 0.0);
    assert_eq!(out.plan.message_delay_prob, 0.0);
    assert_eq!(out.plan.wake_failure_prob, 0.0);
    assert_eq!(out.scenario.intervals, 1);
    assert!(out.scenario.n_servers < scenario.n_servers);

    // The minimal pair still reproduces, and the artifact round-trips.
    let checker = buggy_run(&out.plan, &out.scenario);
    let v = checker.first_violation().expect("reproducer must fire");
    assert_eq!(v.invariant, "vm_conservation");
    let artifact = ReproArtifact::new(v, out.scenario, out.plan.clone());
    let parsed = ReproArtifact::parse(&artifact.to_json()).expect("round trip");
    assert_eq!(parsed, artifact);
}

/// Regenerates the committed regression corpus from an actual
/// checker+shrinker run. Ignored by default: the artifact is committed,
/// and `corpus.rs` replays it on every `cargo test`.
#[test]
#[ignore = "corpus bless helper: rewrites tests/regressions/vm_conservation_dup_placement.json"]
fn bless_regression_corpus() {
    let scenario = ChaosScenario::new(24, 8, 0.9);
    let plan = noisy_violating_plan(&scenario);
    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);
    let checker = buggy_run(&out.plan, &out.scenario);
    let v = checker.first_violation().expect("reproducer must fire");
    let artifact = ReproArtifact::new(v, out.scenario, out.plan.clone());
    std::fs::create_dir_all("tests/regressions").expect("create corpus dir");
    std::fs::write(
        "tests/regressions/vm_conservation_dup_placement.json",
        artifact.to_json() + "\n",
    )
    .expect("write corpus artifact");
}
