//! Validates the checker → shrinker → artifact pipeline against a
//! *deliberately seeded* breaker-routing bug.
//!
//! The bug lives only in this test, in a hand-rolled request router
//! feeding trace events to the [`InvariantChecker`] through the public
//! tracer seam. The router opens a circuit breaker for the first server
//! the fault plan crashes — and then keeps routing requests to it
//! anyway, the classic "breaker state consulted at refresh, not at
//! dispatch" race. The shipped serving layer routes through the
//! breaker-filtered instance set, so it has no such path; the fixture
//! proves that
//!
//! 1. the checker catches the stale route and names `breaker_routing`,
//!    and
//! 2. the shrinker reduces a noisy violating mixed-spot plan to a
//!    ≤ 3-server reproducer whose stochastic families are all zeroed.
//!
//! The ignored `bless_breaker_regression_corpus` test regenerates the
//! committed corpus artifact from this same pipeline:
//!
//! ```text
//! cargo test -p ecolb-chaos --test breaker_routing_shrink -- --ignored
//! ```

use ecolb_chaos::{
    generate_plan, run_plan, run_serve_plan, shrink, ChaosScenario, FleetKind, InvariantChecker,
    ReproArtifact,
};
use ecolb_faults::plan::{FaultEventKind, FaultPlan};
use ecolb_metrics::json::ToJson;
use ecolb_serve::resilience::ResiliencePolicy;
use ecolb_trace::{TraceEventKind, Tracer};

const SEED: u64 = 20140109;

/// The noisy starting point: the Koomey-mixed spot fleet at high
/// intensity, so plans mix sampled crash bursts with scheduled spot
/// reclaims and every stochastic family enabled.
fn scenario() -> ChaosScenario {
    ChaosScenario::new(24, 8, 0.9).with_fleet(FleetKind::MixedSpot)
}

/// The first server the plan crashes, if any — the breaker the buggy
/// router opens and then ignores.
fn first_crash_victim(plan: &FaultPlan) -> Option<u32> {
    plan.events.iter().find_map(|e| match e.kind {
        FaultEventKind::ServerCrash { server, .. } => Some(server.0),
        _ => None,
    })
}

/// The buggy router. It reacts to the plan's first crash exactly as the
/// real dispatch path would — trip the victim's breaker — but its
/// routing table is a stale copy refreshed only at interval boundaries,
/// so the very next request still lands on the open-breaker server.
fn buggy_router(plan: &FaultPlan, scenario: &ChaosScenario) -> InvariantChecker {
    let n = scenario.n_servers as u32;
    let mut checker = InvariantChecker::new(n).keep_running();
    let tau = scenario.realloc_interval().ticks();
    if let Some(victim) = first_crash_victim(plan) {
        checker.event(tau / 2, TraceEventKind::BreakerOpened { server: victim });
        // THE BUG: dispatch consults the stale table, not the breaker.
        checker.event(
            tau / 2 + 1,
            TraceEventKind::RequestRouted {
                request: 1,
                server: victim,
            },
        );
    }
    checker
}

fn violates(plan: &FaultPlan, scenario: &ChaosScenario) -> bool {
    !buggy_router(plan, scenario).ok()
}

#[test]
fn checker_catches_the_seeded_stale_route() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    assert!(
        first_crash_victim(&plan).is_some(),
        "the mixed-spot fleet always schedules reclaims"
    );
    let checker = buggy_router(&plan, &scenario);
    let v = checker.first_violation().expect("checker must fire");
    assert_eq!(v.invariant, "breaker_routing");
    assert!(
        v.detail.contains("routed to open-breaker server"),
        "detail: {}",
        v.detail
    );
}

#[test]
fn shrinker_reduces_the_stale_route_to_a_tiny_reproducer() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    assert!(plan.events.len() > 1, "want a noisy input: {plan:?}");

    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);

    // Acceptance bar: a ≤ 3-server reproducer. The pipeline actually
    // reaches the minimum — a single surviving crash event, every
    // stochastic family zeroed, and a one-interval horizon, because the
    // stale route needs nothing but the crash itself.
    assert!(
        out.scenario.n_servers <= 3,
        "reproducer still needs {} servers",
        out.scenario.n_servers
    );
    assert_eq!(out.plan.events.len(), 1);
    assert!(matches!(
        out.plan.events[0].kind,
        FaultEventKind::ServerCrash { .. }
    ));
    assert_eq!(out.plan.message_loss_prob, 0.0);
    assert_eq!(out.plan.message_delay_prob, 0.0);
    assert_eq!(out.plan.wake_failure_prob, 0.0);
    assert_eq!(
        out.scenario.fleet,
        FleetKind::MixedSpot,
        "shrinking preserves the fleet axis"
    );

    // The minimal pair still reproduces under the buggy router…
    let v = buggy_router(&out.plan, &out.scenario)
        .first_violation()
        .cloned()
        .expect("reproducer must fire");
    assert_eq!(v.invariant, "breaker_routing");
    // …the artifact round-trips with its fleet…
    let artifact = ReproArtifact::new(&v, out.scenario, out.plan.clone());
    let parsed = ReproArtifact::parse(&artifact.to_json()).expect("round trip");
    assert_eq!(parsed, artifact);
    // …and both real simulations replay the pair clean: the balancing
    // protocol on the cluster axis, and the full resilience stack —
    // whose dispatch really does skip open breakers — on the serve axis.
    let real = run_plan(&out.scenario, &out.plan);
    assert!(real.ok(), "real replay violated: {:?}", real.violations);
    let serve = run_serve_plan(&out.scenario, &out.plan, ResiliencePolicy::full());
    assert!(serve.ok(), "serve replay violated: {:?}", serve.violations);
}

/// Regenerates the committed corpus artifact from an actual
/// checker+shrinker run. Ignored by default: the artifact is committed,
/// and `corpus.rs` replays it on every `cargo test`.
#[test]
#[ignore = "corpus bless helper: rewrites tests/regressions/breaker_routing_stale_route.json"]
fn bless_breaker_regression_corpus() {
    let scenario = scenario();
    let plan = generate_plan(SEED, 0, &scenario);
    let mut oracle = violates;
    let out = shrink(&plan, &scenario, 2_000, &mut oracle);
    assert!(out.reproduced);
    let checker = buggy_router(&out.plan, &out.scenario);
    let v = checker.first_violation().expect("reproducer must fire");
    let artifact = ReproArtifact::new(v, out.scenario, out.plan.clone());
    std::fs::create_dir_all("tests/regressions").expect("create corpus dir");
    std::fs::write(
        "tests/regressions/breaker_routing_stale_route.json",
        artifact.to_json() + "\n",
    )
    .expect("write corpus artifact");
}
