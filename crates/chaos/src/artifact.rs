//! Reproducer artifacts: a shrunk violation as a deterministic JSON
//! document that replays from its embedded seed.
//!
//! An artifact pairs the minimised `(plan, scenario)` with the violated
//! invariant and is written through the workspace's deterministic
//! [`ToJson`] path — same input, same bytes, so corpus files diff
//! cleanly. Reading one back needs a parser, and the workspace
//! deliberately has no JSON dependency, so this module carries a minimal
//! recursive-descent parser. Its one non-negotiable property is that
//! unsigned integers round-trip **exactly**: seeds and tick timestamps
//! are full-range `u64`s and would silently lose precision above 2⁵³ if
//! squeezed through `f64` like a generic JSON reader would.

use crate::gen::{ChaosScenario, FleetKind};
use ecolb_cluster::server::ServerId;
use ecolb_faults::plan::{FaultEvent, FaultEventKind, FaultPlan};
use ecolb_metrics::json::{ObjectWriter, ToJson};
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_trace::Violation;
use std::fmt;

/// Maximum nesting the parser accepts; reproducer documents are three
/// levels deep, so this is pure stack-overflow armour.
const MAX_DEPTH: u32 = 32;

/// A minimal reproducer: the shrunk plan and scenario plus what they
/// violate. [`ReproArtifact::to_json`] and [`ReproArtifact::parse`] are
/// exact inverses for documents this crate writes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproArtifact {
    /// The violated invariant's stable identifier.
    pub invariant: String,
    /// The checker's one-line description of the violation.
    pub detail: String,
    /// Simulated instant of the violation, microseconds.
    pub at_us: u64,
    /// The (shrunk) scenario to rebuild the cluster from.
    pub scenario: ChaosScenario,
    /// The (shrunk) plan; its seed is also the cluster seed.
    pub plan: FaultPlan,
}

impl ReproArtifact {
    /// Packages a shrunk `(plan, scenario)` with the violation it still
    /// triggers.
    pub fn new(violation: &Violation, scenario: ChaosScenario, plan: FaultPlan) -> Self {
        ReproArtifact {
            invariant: violation.invariant.to_string(),
            detail: violation.detail.clone(),
            at_us: violation.at_us,
            scenario,
            plan,
        }
    }

    /// Parses a document previously produced by [`ToJson`].
    pub fn parse(text: &str) -> Result<ReproArtifact, ParseError> {
        let root = parse_json(text)?;
        let invariant = root.str_field("invariant")?.to_string();
        let detail = root.str_field("detail")?.to_string();
        let at_us = root.u64_field("at_us")?;
        let scenario = scenario_from(root.field("scenario")?)?;
        let plan = plan_from(root.field("plan")?)?;
        Ok(ReproArtifact {
            invariant,
            detail,
            at_us,
            scenario,
            plan,
        })
    }
}

impl ToJson for ReproArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("invariant", &self.invariant.as_str())
            .field("detail", &self.detail.as_str())
            .field("at_us", &self.at_us)
            .field("scenario", &self.scenario)
            .field("plan", &self.plan)
            .finish();
    }
}

fn scenario_from(v: &JsonValue) -> Result<ChaosScenario, ParseError> {
    // Artifacts written before the fleet axis existed carry no `fleet`
    // field; they all ran the homogeneous volume fleet.
    let fleet = match v.get("fleet") {
        None => FleetKind::Uniform,
        Some(val) => match val.as_str() {
            Some("uniform") => FleetKind::Uniform,
            Some("mixed_spot") => FleetKind::MixedSpot,
            _ => return Err(ParseError::schema("fleet", "unknown fleet kind")),
        },
    };
    Ok(ChaosScenario {
        n_servers: v.u64_field("n_servers")? as usize,
        intervals: v.u64_field("intervals")?,
        intensity: v.f64_field("intensity")?,
        fleet,
    })
}

fn plan_from(v: &JsonValue) -> Result<FaultPlan, ParseError> {
    let mut plan = FaultPlan::empty(v.u64_field("seed")?);
    plan.message_loss_prob = v.f64_field("message_loss_prob")?;
    plan.message_delay_prob = v.f64_field("message_delay_prob")?;
    plan.max_message_delay = SimDuration::from_ticks(v.u64_field("max_message_delay_us")?);
    plan.wake_failure_prob = v.f64_field("wake_failure_prob")?;
    for ev in v
        .field("events")?
        .as_array()
        .ok_or(ParseError::schema("events", "expected an array"))?
    {
        plan.events.push(event_from(ev)?);
    }
    Ok(plan)
}

fn event_from(v: &JsonValue) -> Result<FaultEvent, ParseError> {
    let at = SimTime::from_ticks(v.u64_field("at_us")?);
    let recover_after = match v.field("recover_after_us") {
        Ok(JsonValue::Null) | Err(_) => None,
        Ok(other) => Some(SimDuration::from_ticks(other.as_u64().ok_or(
            ParseError::schema("recover_after_us", "expected an unsigned integer or null"),
        )?)),
    };
    let kind = match v.str_field("kind")? {
        "server_crash" => FaultEventKind::ServerCrash {
            server: ServerId(v.u64_field("server")? as u32),
            recover_after,
        },
        "server_recover" => FaultEventKind::ServerRecover {
            server: ServerId(v.u64_field("server")? as u32),
        },
        "leader_crash" => FaultEventKind::LeaderCrash { recover_after },
        _ => return Err(ParseError::schema("kind", "unknown fault-event kind")),
    };
    Ok(FaultEvent { at, kind })
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed JSON at a byte offset.
    Syntax {
        /// Byte offset of the offending input.
        pos: usize,
        /// What the parser expected.
        msg: &'static str,
    },
    /// Well-formed JSON with the wrong shape.
    Schema {
        /// The field that was missing or mistyped.
        field: &'static str,
        /// What was expected of it.
        msg: &'static str,
    },
}

impl ParseError {
    fn schema(field: &'static str, msg: &'static str) -> Self {
        ParseError::Schema { field, msg }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { pos, msg } => write!(f, "json syntax error at byte {pos}: {msg}"),
            ParseError::Schema { field, msg } => write!(f, "field `{field}`: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value. Unsigned integers keep their exact `u64` value in
/// [`JsonValue::UInt`]; only genuinely fractional, negative or exponent
/// numbers fall back to [`JsonValue::Num`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, preserved exactly.
    UInt(u64),
    /// Any other number, as `f64`.
    Num(f64),
    /// A string with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The exact unsigned value, if this is a [`JsonValue::UInt`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`JsonValue::Arr`].
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    fn field(&self, name: &'static str) -> Result<&JsonValue, ParseError> {
        self.get(name)
            .ok_or(ParseError::schema(name, "missing field"))
    }

    fn u64_field(&self, name: &'static str) -> Result<u64, ParseError> {
        self.field(name)?
            .as_u64()
            .ok_or(ParseError::schema(name, "expected an unsigned integer"))
    }

    fn f64_field(&self, name: &'static str) -> Result<f64, ParseError> {
        self.field(name)?
            .as_f64()
            .ok_or(ParseError::schema(name, "expected a number"))
    }

    fn str_field(&self, name: &'static str) -> Result<&str, ParseError> {
        self.field(name)?
            .as_str()
            .ok_or(ParseError::schema(name, "expected a string"))
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError::Syntax { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<JsonValue, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<JsonValue, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<JsonValue, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are guaranteed well-formed).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0b1100_0000) == 0b1000_0000 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = self.pos > start && self.bytes[start] != b'-';
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return Err(self.err("invalid number")),
        };
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            // Out of u64 range: fall through to the float path.
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(JsonValue::Num(x)),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_plan;

    fn sample_artifact() -> ReproArtifact {
        let scenario = ChaosScenario::new(4, 2, 0.5);
        let plan = FaultPlan::empty(u64::MAX - 1)
            .with_server_crash(
                SimTime::from_ticks(600_000_000),
                ServerId(3),
                Some(SimDuration::from_secs(300)),
            )
            .with_leader_crash(SimTime::from_secs(1200), None)
            .with_message_loss(0.05);
        ReproArtifact {
            invariant: "vm_conservation".to_string(),
            detail: "hosted 9 != expected 10 (\"lost\" a VM)".to_string(),
            at_us: 600_000_000,
            scenario,
            plan,
        }
    }

    #[test]
    fn artifacts_round_trip_exactly() {
        let a = sample_artifact();
        let text = a.to_json();
        let back = ReproArtifact::parse(&text).expect("round trip");
        assert_eq!(back, a);
        // And the re-serialisation is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn u64_precision_survives_the_round_trip() {
        // 2^63 + 1 is not representable in f64; a float-based parser
        // would corrupt it.
        let seed = (1u64 << 63) + 1;
        let v = parse_json(&format!("{{\"seed\":{seed}}}")).expect("parse");
        assert_eq!(v.u64_field("seed").expect("field"), seed);
    }

    #[test]
    fn generated_plans_round_trip_through_artifacts() {
        let scenario = ChaosScenario::new(50, 10, 0.9);
        let plan = generate_plan(20140109, 4, &scenario);
        assert!(!plan.events.is_empty(), "want a non-trivial plan");
        let a = ReproArtifact {
            invariant: "leader_uniqueness".to_string(),
            detail: "two leaders".to_string(),
            at_us: 42,
            scenario,
            plan: plan.clone(),
        };
        let back = ReproArtifact::parse(&a.to_json()).expect("round trip");
        assert_eq!(back.plan, plan);
        assert_eq!(back.scenario, scenario);
    }

    #[test]
    fn pre_fleet_artifacts_parse_as_the_uniform_fleet() {
        // A document written before the fleet axis existed: no `fleet`
        // field anywhere. It must keep parsing, as the uniform fleet.
        let a = sample_artifact();
        let legacy = a.to_json().replace(r#","fleet":"uniform""#, "");
        assert!(!legacy.contains("fleet"), "test setup: field removed");
        let back = ReproArtifact::parse(&legacy).expect("legacy parse");
        assert_eq!(back.scenario.fleet, FleetKind::Uniform);
        assert_eq!(back.plan, a.plan);
    }

    #[test]
    fn mixed_spot_artifacts_round_trip_with_their_fleet() {
        let mut a = sample_artifact();
        a.scenario = a.scenario.with_fleet(FleetKind::MixedSpot);
        let text = a.to_json();
        assert!(text.contains(r#""fleet":"mixed_spot""#));
        let back = ReproArtifact::parse(&text).expect("round trip");
        assert_eq!(back, a);
    }

    #[test]
    fn unknown_fleet_kinds_are_rejected() {
        let text = sample_artifact()
            .to_json()
            .replace(r#""fleet":"uniform""#, r#""fleet":"quantum""#);
        let err = ReproArtifact::parse(&text).expect_err("schema error");
        assert_eq!(
            err,
            ParseError::Schema {
                field: "fleet",
                msg: "unknown fleet kind"
            }
        );
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse_json(r#"{"s":"a\"b\\c\ndA"}"#).expect("parse");
        assert_eq!(v.str_field("s").expect("field"), "a\"b\\c\ndA");
    }

    #[test]
    fn syntax_errors_carry_positions() {
        match parse_json("{\"a\":") {
            Err(ParseError::Syntax { pos, .. }) => assert_eq!(pos, 5),
            other => panic!("expected syntax error, got {other:?}"),
        }
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn schema_errors_name_the_field() {
        let err = ReproArtifact::parse("{}").expect_err("schema");
        assert_eq!(
            err,
            ParseError::Schema {
                field: "invariant",
                msg: "missing field"
            }
        );
        assert_eq!(err.to_string(), "field `invariant`: missing field");
    }

    #[test]
    fn numbers_classify_as_uint_or_float() {
        let v = parse_json(r#"[0, 18446744073709551615, 0.5, -3, 1e3, 18446744073709551616]"#)
            .expect("parse");
        let xs = v.as_array().expect("array");
        assert_eq!(xs[0], JsonValue::UInt(0));
        assert_eq!(xs[1], JsonValue::UInt(u64::MAX));
        assert_eq!(xs[2], JsonValue::Num(0.5));
        assert_eq!(xs[3], JsonValue::Num(-3.0));
        assert_eq!(xs[4], JsonValue::Num(1000.0));
        // One past u64::MAX falls back to float rather than erroring.
        assert!(matches!(xs[5], JsonValue::Num(_)));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&deep).is_err());
    }
}
