//! The chaos harness: run one plan under the invariant checker, or sweep
//! many plans deterministically in parallel.
//!
//! A chaos run is exactly a faulty run
//! ([`FaultyClusterSim`](ecolb_faults::sim::FaultyClusterSim)) traced by
//! an [`InvariantChecker`]: the checker rides the sealed `Tracer` seam,
//! consumes the per-interval state digests the cluster emits for
//! digest-hungry tracers, and asks the engine to abort the moment an
//! invariant breaks. The cluster seed **is** the plan seed, so a whole
//! run replays from `(plan, scenario)` alone — the property the
//! reproducer artifacts and the regression corpus rely on.

use crate::gen::{generate_plan, ChaosScenario};
use ecolb_cluster::recovery::RecoveryConfig;
use ecolb_faults::plan::FaultPlan;
use ecolb_faults::report::FaultyRunReport;
use ecolb_faults::sim::FaultyClusterSim;
use ecolb_simcore::par::map_indexed;
use ecolb_trace::{InvariantChecker, Violation};

/// Everything one checked chaos run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The plan that ran (replays the run together with the scenario).
    pub plan: FaultPlan,
    /// The scenario it ran under.
    pub scenario: ChaosScenario,
    /// The degradation-augmented run report. When the checker aborted the
    /// run mid-flight the report covers the prefix up to the violation.
    pub report: FaultyRunReport,
    /// Invariant violations, in detection order (empty on a healthy run).
    pub violations: Vec<Violation>,
    /// State digests the checker validated.
    pub digests_checked: u64,
}

impl ChaosOutcome {
    /// `true` when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the checker a chaos run uses: sized to the scenario, heartbeat
/// timeout matched to the cluster's recovery configuration.
pub(crate) fn checker_for(scenario: &ChaosScenario) -> InvariantChecker {
    InvariantChecker::new(scenario.n_servers as u32)
        .with_heartbeat_timeout(RecoveryConfig::default().heartbeat_timeout_intervals)
}

/// Runs `plan` under `scenario` with the invariant checker attached and
/// abort-on-violation enabled (a violating run stops at the first broken
/// invariant; the evidence is in [`ChaosOutcome::violations`]).
pub fn run_plan(scenario: &ChaosScenario, plan: &FaultPlan) -> ChaosOutcome {
    let mut checker = checker_for(scenario);
    let report = FaultyClusterSim::new(
        scenario.config(),
        plan.seed,
        scenario.intervals,
        plan.clone(),
    )
    .run_traced(&mut checker);
    ChaosOutcome {
        plan: plan.clone(),
        scenario: *scenario,
        digests_checked: checker.digests_checked(),
        violations: checker.into_violations(),
        report,
    }
}

/// Generates and runs `n_plans` plans for `(seed, scenario)` across
/// `threads` workers. Work is striped deterministically (the same
/// `(seed, scenario, n_plans)` produces the same outcome vector at any
/// thread count) and each plan carries its index-keyed seed, so any
/// violating entry replays standalone.
pub fn sweep(
    scenario: &ChaosScenario,
    seed: u64,
    n_plans: u64,
    threads: usize,
) -> Vec<ChaosOutcome> {
    let indices: Vec<u64> = (0..n_plans).collect();
    let scenario = *scenario;
    map_indexed(indices, threads, move |_, index| {
        let plan = generate_plan(seed, index, &scenario);
        run_plan(&scenario, &plan)
    })
}

/// Aggregate view of a sweep, for tables and the CI gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepSummary {
    /// Plans executed.
    pub plans: u64,
    /// Plans that violated at least one invariant.
    pub violating_plans: u64,
    /// Total violations recorded across all plans.
    pub violations: u64,
    /// Scheduled fault events injected across all plans.
    pub events_injected: u64,
    /// State digests validated across all plans.
    pub digests_checked: u64,
}

impl SweepSummary {
    /// Summarises a slice of outcomes.
    pub fn of(outcomes: &[ChaosOutcome]) -> Self {
        let mut s = SweepSummary {
            plans: outcomes.len() as u64,
            ..SweepSummary::default()
        };
        for o in outcomes {
            if !o.ok() {
                s.violating_plans += 1;
            }
            s.violations += o.violations.len() as u64;
            s.events_injected += o.plan.events.len() as u64;
            s.digests_checked += o.digests_checked;
        }
        s
    }

    /// `true` when the sweep found no violations at all.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.violating_plans == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::plan_seed;

    #[test]
    fn a_single_plan_runs_clean_and_checks_digests() {
        let scenario = ChaosScenario::new(20, 6, 0.6);
        let plan = generate_plan(20140109, 0, &scenario);
        let outcome = run_plan(&scenario, &plan);
        assert!(outcome.ok(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.digests_checked, scenario.intervals);
        assert_eq!(outcome.report.seed, plan_seed(20140109, 0));
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let scenario = ChaosScenario::new(15, 4, 0.8);
        let a = sweep(&scenario, 42, 6, 1);
        let b = sweep(&scenario, 42, 6, 3);
        assert_eq!(a, b);
        let summary = SweepSummary::of(&a);
        assert_eq!(summary.plans, 6);
        assert!(summary.clean(), "summary: {summary:?}");
        assert_eq!(summary.digests_checked, 6 * scenario.intervals);
    }

    #[test]
    fn mixed_spot_sweeps_run_clean_at_the_same_bar() {
        use crate::gen::FleetKind;
        let scenario = ChaosScenario::new(16, 4, 0.75).with_fleet(FleetKind::MixedSpot);
        let outcomes = sweep(&scenario, 20140109, 4, 2);
        let summary = SweepSummary::of(&outcomes);
        assert!(summary.clean(), "summary: {summary:?}");
        assert!(
            summary.events_injected >= 4 * 2,
            "every plan carries at least its scheduled spot reclaims: {summary:?}"
        );
        assert_eq!(summary.digests_checked, 4 * scenario.intervals);
    }

    #[test]
    fn sweep_summary_counts_violating_plans() {
        // Hand-build outcomes: summarisation is pure bookkeeping.
        let scenario = ChaosScenario::new(10, 2, 0.0);
        let plan = generate_plan(1, 0, &scenario);
        let mut outcome = run_plan(&scenario, &plan);
        assert!(outcome.ok());
        outcome.violations.push(Violation {
            at_us: 1,
            invariant: "vm_conservation",
            server: 0,
            detail: "synthetic".to_string(),
            window: Vec::new(),
        });
        let s = SweepSummary::of(std::slice::from_ref(&outcome));
        assert_eq!(s.violating_plans, 1);
        assert_eq!(s.violations, 1);
        assert!(!s.clean());
    }
}
