//! Chaos testing for the ecolb cluster: randomized fault-plan fuzzing, a
//! runtime invariant checker, and minimal-reproducer shrinking.
//!
//! The crate closes the loop the deterministic fault layer
//! ([`ecolb_faults`]) opened. That layer can replay *one* scripted
//! failure schedule bit-for-bit; this one asks the adversarial question —
//! *across thousands of schedules, does the cluster ever reach a state
//! the paper's model forbids?* Three pieces answer it:
//!
//! * **[`gen`]** — the fault-plan fuzzer. [`gen::generate_plan`] expands a
//!   `(seed, plan index, scenario)` triple into a [`FaultPlan`]: crash
//!   bursts (crash-stop and crash-recover), leader-targeted crashes,
//!   correlated link loss/delay and wake failures, all scaled by a single
//!   `intensity` knob. Every draw comes from the keyed RNG-stream
//!   discipline, so a failing schedule replays exactly from its triple.
//! * **Invariant checking** — [`InvariantChecker`] (re-exported from
//!   [`ecolb_trace`]) rides the sealed `Tracer` seam and validates every
//!   reallocation interval: VM conservation, leader uniqueness,
//!   sleep/wake state-machine legality, monotone energy/SLA accounting
//!   and monotone simulated time. It costs nothing when absent.
//! * **[`shrink`]** — the delta-debugging shrinker. Given a violating
//!   plan it drops fault events, zeroes stochastic families, shortens the
//!   horizon and halves the cluster until the reproducer is minimal;
//!   [`artifact`] serialises the result as a deterministic JSON document
//!   that replays from the embedded seed.
//!
//! [`harness::sweep`] ties the pieces into the CI entry point: a bounded
//! multi-seed sweep over the intensity grid that must find zero
//! violations on a healthy tree. [`serve_axis`] points the same fuzzer
//! at the request-level co-simulation, where the checker additionally
//! validates the resilience invariants (`retry_budget`,
//! `breaker_routing`, `shed_accounting`) against real retries, breaker
//! trips and sheds.
//!
//! [`FaultPlan`]: ecolb_faults::plan::FaultPlan

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod gen;
pub mod harness;
pub mod serve_axis;
pub mod shrink;

pub use artifact::ReproArtifact;
pub use ecolb_trace::{InvariantChecker, Violation, CLUSTER_WIDE};
pub use gen::{generate_plan, intensity_grid, ChaosScenario, FleetKind};
pub use harness::{run_plan, sweep, ChaosOutcome, SweepSummary};
pub use serve_axis::{run_serve_plan, serve_chaos_config, serve_sweep, ServeChaosOutcome};
pub use shrink::{shrink, ShrinkOutcome};
