//! The serve-axis chaos harness: fuzz the request-level co-simulation.
//!
//! The cluster-axis harness ([`run_plan`](crate::harness::run_plan))
//! checks the balancing protocol's invariants under generated fault
//! plans. This module points the same fuzzer at the *serving* layer:
//! the plan becomes the [`ServeConfig::faults`] schedule of a full
//! request-level run, the [`InvariantChecker`] rides the sealed tracer
//! seam exactly as before, and on top of the digest invariants it now
//! sees the request-path event stream — so the resilience invariants
//! (`retry_budget`, `breaker_routing`, `shed_accounting`) are exercised
//! by real retries, breaker trips and sheds instead of synthetic
//! events. The serve seed **is** the plan seed, so a serve-axis outcome
//! replays from `(plan, scenario, policy)` alone.

use crate::gen::{generate_plan, ChaosScenario};
use crate::harness::{checker_for, SweepSummary};
use ecolb_faults::plan::FaultPlan;
use ecolb_serve::picker::PickerKind;
use ecolb_serve::resilience::ResiliencePolicy;
use ecolb_serve::sim::{ServeConfig, ServeReport, ServeSim};
use ecolb_simcore::par::map_indexed;
use ecolb_trace::Violation;

/// Everything one checked serve-axis chaos run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeChaosOutcome {
    /// The plan that ran (with the scenario and policy, replays the run).
    pub plan: FaultPlan,
    /// The scenario it ran under.
    pub scenario: ChaosScenario,
    /// The resilience policy the serving layer ran with.
    pub resilience: ResiliencePolicy,
    /// The finished serving report.
    pub report: ServeReport,
    /// Invariant violations, in detection order (empty on a healthy run).
    pub violations: Vec<Violation>,
    /// State digests the checker validated.
    pub digests_checked: u64,
}

impl ServeChaosOutcome {
    /// `true` when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The serving configuration a serve-axis chaos run uses: the paper
/// stack (regime-aware picker, consolidation on) over the scenario's
/// cluster, with the generated plan as the fault schedule and the given
/// resilience policy. Deriving it from `(scenario, plan, policy)` keeps
/// serve-axis runs as replayable as cluster-axis ones.
pub fn serve_chaos_config(
    scenario: &ChaosScenario,
    plan: &FaultPlan,
    resilience: ResiliencePolicy,
) -> ServeConfig {
    let mut cfg = ServeConfig::paper(
        scenario.config(),
        PickerKind::RegimeAware,
        scenario.intervals,
    );
    cfg.faults = Some(plan.clone());
    cfg.resilience = resilience;
    cfg
}

/// Runs `plan` under `scenario` through the request-level co-simulation
/// with the invariant checker attached. The checker validates the same
/// per-interval digests as the cluster axis *plus* every request-path
/// event the serving layer emits.
pub fn run_serve_plan(
    scenario: &ChaosScenario,
    plan: &FaultPlan,
    resilience: ResiliencePolicy,
) -> ServeChaosOutcome {
    let mut checker = checker_for(scenario);
    let report = ServeSim::new(serve_chaos_config(scenario, plan, resilience), plan.seed)
        .run_traced(&mut checker);
    ServeChaosOutcome {
        plan: plan.clone(),
        scenario: *scenario,
        resilience,
        digests_checked: checker.digests_checked(),
        violations: checker.into_violations(),
        report,
    }
}

/// Generates and runs `n_plans` serve-axis plans for `(seed, scenario)`
/// across `threads` workers under one resilience policy. Striping is
/// deterministic, so the outcome vector is thread-count invariant and
/// any violating entry replays standalone.
pub fn serve_sweep(
    scenario: &ChaosScenario,
    seed: u64,
    n_plans: u64,
    threads: usize,
    resilience: ResiliencePolicy,
) -> Vec<ServeChaosOutcome> {
    let indices: Vec<u64> = (0..n_plans).collect();
    let scenario = *scenario;
    map_indexed(indices, threads, move |_, index| {
        let plan = generate_plan(seed, index, &scenario);
        run_serve_plan(&scenario, &plan, resilience)
    })
}

impl SweepSummary {
    /// Summarises a slice of serve-axis outcomes with the same
    /// bookkeeping as [`SweepSummary::of`].
    pub fn of_serve(outcomes: &[ServeChaosOutcome]) -> Self {
        let mut s = SweepSummary {
            plans: outcomes.len() as u64,
            ..SweepSummary::default()
        };
        for o in outcomes {
            if !o.ok() {
                s.violating_plans += 1;
            }
            s.violations += o.violations.len() as u64;
            s.events_injected += o.plan.events.len() as u64;
            s.digests_checked += o.digests_checked;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::FleetKind;

    const SEED: u64 = 20140109;

    #[test]
    fn a_serve_plan_runs_clean_under_the_full_resilience_stack() {
        let scenario = ChaosScenario::new(20, 6, 0.6);
        let plan = generate_plan(SEED, 0, &scenario);
        let outcome = run_serve_plan(&scenario, &plan, ResiliencePolicy::full());
        assert!(outcome.ok(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.digests_checked, scenario.intervals);
        assert!(
            outcome.report.requests_admitted > 0,
            "the co-simulation actually served traffic"
        );
    }

    #[test]
    fn serve_sweeps_are_thread_count_invariant_and_clean_at_every_level() {
        let scenario = ChaosScenario::new(16, 4, 0.8).with_fleet(FleetKind::MixedSpot);
        for policy in [
            ResiliencePolicy::disabled(),
            ResiliencePolicy::retry_only(),
            ResiliencePolicy::full(),
        ] {
            let a = serve_sweep(&scenario, 42, 4, 1, policy);
            let b = serve_sweep(&scenario, 42, 4, 2, policy);
            assert_eq!(a, b, "thread-count divergence under {policy:?}");
            let summary = SweepSummary::of_serve(&a);
            assert!(summary.clean(), "summary under {policy:?}: {summary:?}");
            assert_eq!(summary.digests_checked, 4 * scenario.intervals);
        }
    }

    #[test]
    fn the_full_stack_actually_exercises_the_resilience_invariants() {
        // The invariants are only worth sweeping if the runs drive them:
        // crashes at this intensity must produce real retries (the
        // retry_budget invariant) and breaker activity (breaker_routing)
        // somewhere in the sweep — not just digest checks.
        let scenario = ChaosScenario::new(16, 6, 0.9).with_fleet(FleetKind::MixedSpot);
        let outcomes = serve_sweep(&scenario, SEED, 4, 2, ResiliencePolicy::full());
        assert!(SweepSummary::of_serve(&outcomes).clean());
        let retries: u64 = outcomes.iter().map(|o| o.report.resilience.retries).sum();
        let opens: u64 = outcomes
            .iter()
            .map(|o| o.report.resilience.breaker_opens)
            .sum();
        assert!(retries > 0, "no retry ever fired across the sweep");
        assert!(opens > 0, "no breaker ever opened across the sweep");
    }

    #[test]
    fn disabled_policy_matches_the_bare_serve_run_byte_for_byte() {
        // The structural no-op contract holds on the chaos axis too: a
        // checked run with the disabled policy must equal the same
        // config run without any resilience wiring.
        let scenario = ChaosScenario::new(12, 4, 0.7);
        let plan = generate_plan(7, 1, &scenario);
        let checked = run_serve_plan(&scenario, &plan, ResiliencePolicy::disabled());
        let bare = ServeSim::new(
            serve_chaos_config(&scenario, &plan, ResiliencePolicy::disabled()),
            plan.seed,
        )
        .run();
        assert_eq!(checked.report, bare, "the checker perturbed the run");
        // Crash-killed requests are still *counted* with the policy off
        // (honest accounting is unconditional), but no machinery fires.
        let c = &checked.report.resilience;
        assert_eq!(c.retries + c.hedges + c.breaker_opens + c.total_shed(), 0);
    }
}
