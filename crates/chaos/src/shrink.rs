//! Delta-debugging shrinker: reduce a violating `(plan, scenario)` pair
//! to a minimal reproducer.
//!
//! The oracle is a caller-supplied predicate — *does this candidate still
//! violate?* — so the shrinker works for any failure signal: the real
//! chaos harness, a deliberately buggy fixture in a test, or a predicate
//! over a report. Reduction interleaves four rules to a fixpoint, each
//! accepted only when the oracle still fires:
//!
//! 1. **Drop fault events** — greedy delta debugging over the event list
//!    with geometrically shrinking chunks (halves first, then single
//!    events).
//! 2. **Simplify surviving events** — crash-recover becomes crash-stop
//!    and server ids are renamed toward 0 (which is what lets rule 5
//!    shrink the cluster underneath them).
//! 3. **Zero stochastic families** — message loss, message delay and wake
//!    failures are each tried at probability zero.
//! 4. **Shorten the horizon** — halve the interval count.
//! 5. **Shrink the cluster** — halve the server count, discarding events
//!    that name servers outside the smaller cluster.
//!
//! Every oracle call is counted against a budget so a pathological oracle
//! cannot hang the shrink; on exhaustion the best reproducer so far is
//! returned.

use crate::gen::ChaosScenario;
use ecolb_cluster::server::ServerId;
use ecolb_faults::plan::{FaultEventKind, FaultPlan};

/// Smallest cluster the shrinker will try: one leader plus one peer.
const MIN_SERVERS: usize = 2;

/// The oracle signature: `true` when the candidate still reproduces the
/// violation.
pub type Oracle<'a> = dyn FnMut(&FaultPlan, &ChaosScenario) -> bool + 'a;

/// What the shrinker produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The minimised plan.
    pub plan: FaultPlan,
    /// The minimised scenario (possibly fewer intervals and servers than
    /// the input).
    pub scenario: ChaosScenario,
    /// `false` when the *input* never violated — the input is returned
    /// unchanged in that case and nothing was shrunk.
    pub reproduced: bool,
    /// Oracle invocations spent.
    pub oracle_calls: u64,
}

/// Oracle wrapper that enforces the call budget. Once the budget is
/// spent every candidate is reported as non-reproducing, which stalls
/// all reduction rules and terminates the fixpoint loop.
struct Budget<'a, 'b> {
    oracle: &'a mut Oracle<'b>,
    calls: u64,
    max_calls: u64,
}

impl Budget<'_, '_> {
    fn check(&mut self, plan: &FaultPlan, scenario: &ChaosScenario) -> bool {
        if self.calls >= self.max_calls {
            return false;
        }
        self.calls += 1;
        (self.oracle)(plan, scenario)
    }
}

/// Minimises a violating `(plan, scenario)` pair under `oracle`, spending
/// at most `max_oracle_calls` oracle invocations (one is spent up front
/// to confirm the input reproduces).
pub fn shrink(
    plan: &FaultPlan,
    scenario: &ChaosScenario,
    max_oracle_calls: u64,
    oracle: &mut Oracle<'_>,
) -> ShrinkOutcome {
    let mut budget = Budget {
        oracle,
        calls: 0,
        max_calls: max_oracle_calls.max(1),
    };
    if !budget.check(plan, scenario) {
        return ShrinkOutcome {
            plan: plan.clone(),
            scenario: *scenario,
            reproduced: false,
            oracle_calls: budget.calls,
        };
    }

    let mut best_plan = plan.clone();
    let mut best_scenario = *scenario;
    loop {
        let mut changed = false;
        changed |= drop_events(&mut budget, &mut best_plan, &best_scenario);
        changed |= simplify_events(&mut budget, &mut best_plan, &best_scenario);
        changed |= zero_probabilities(&mut budget, &mut best_plan, &best_scenario);
        changed |= shorten_horizon(&mut budget, &best_plan, &mut best_scenario);
        changed |= shrink_cluster(&mut budget, &mut best_plan, &mut best_scenario);
        if !changed {
            break;
        }
    }

    ShrinkOutcome {
        plan: best_plan,
        scenario: best_scenario,
        reproduced: true,
        oracle_calls: budget.calls,
    }
}

/// Greedy delta debugging over the event list: try removing chunks, from
/// half the list down to single events, restarting the granularity after
/// any successful removal pass.
fn drop_events(
    budget: &mut Budget<'_, '_>,
    plan: &mut FaultPlan,
    scenario: &ChaosScenario,
) -> bool {
    let before = plan.events.len();
    let mut chunk = (plan.events.len() / 2).max(1);
    while !plan.events.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < plan.events.len() {
            let end = (start + chunk).min(plan.events.len());
            let mut candidate = plan.clone();
            candidate.events.drain(start..end);
            if budget.check(&candidate, scenario) {
                *plan = candidate;
                removed_any = true;
                // Events shifted left into `start`; retry the same slot.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = if removed_any {
            (plan.events.len() / 2).max(1)
        } else {
            (chunk / 2).max(1)
        };
    }
    plan.events.len() < before
}

/// Simplifies the surviving events in place: crash-recover is tried as
/// plain crash-stop, and server ids are renamed toward 0. Renaming looks
/// odd for a *reducer*, but it is what makes the cluster-shrinking rule
/// effective: a lone crash of server 17 pins the cluster at 18 hosts,
/// while the same crash renamed to server 0 lets it collapse to the
/// minimum.
fn simplify_events(
    budget: &mut Budget<'_, '_>,
    plan: &mut FaultPlan,
    scenario: &ChaosScenario,
) -> bool {
    let mut changed = false;
    for i in 0..plan.events.len() {
        if let FaultEventKind::ServerCrash {
            server,
            recover_after: Some(_),
        } = plan.events[i].kind
        {
            let mut candidate = plan.clone();
            candidate.events[i].kind = FaultEventKind::ServerCrash {
                server,
                recover_after: None,
            };
            if budget.check(&candidate, scenario) {
                *plan = candidate;
                changed = true;
            }
        }
        let renamed = match plan.events[i].kind {
            FaultEventKind::ServerCrash {
                server,
                recover_after,
            } if server.0 > 0 => Some(FaultEventKind::ServerCrash {
                server: ServerId(0),
                recover_after,
            }),
            FaultEventKind::ServerRecover { server } if server.0 > 0 => {
                Some(FaultEventKind::ServerRecover {
                    server: ServerId(0),
                })
            }
            _ => None,
        };
        if let Some(kind) = renamed {
            let mut candidate = plan.clone();
            candidate.events[i].kind = kind;
            if budget.check(&candidate, scenario) {
                *plan = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// Tries each stochastic family at probability zero.
fn zero_probabilities(
    budget: &mut Budget<'_, '_>,
    plan: &mut FaultPlan,
    scenario: &ChaosScenario,
) -> bool {
    let mut changed = false;
    if plan.message_loss_prob > 0.0 {
        let mut candidate = plan.clone();
        candidate.message_loss_prob = 0.0;
        if budget.check(&candidate, scenario) {
            *plan = candidate;
            changed = true;
        }
    }
    if plan.message_delay_prob > 0.0 {
        let mut candidate = plan.clone();
        candidate.message_delay_prob = 0.0;
        candidate.max_message_delay = ecolb_simcore::time::SimDuration::ZERO;
        if budget.check(&candidate, scenario) {
            *plan = candidate;
            changed = true;
        }
    }
    if plan.wake_failure_prob > 0.0 {
        let mut candidate = plan.clone();
        candidate.wake_failure_prob = 0.0;
        if budget.check(&candidate, scenario) {
            *plan = candidate;
            changed = true;
        }
    }
    changed
}

/// Repeatedly halves the interval count while the oracle still fires.
fn shorten_horizon(
    budget: &mut Budget<'_, '_>,
    plan: &FaultPlan,
    scenario: &mut ChaosScenario,
) -> bool {
    let before = scenario.intervals;
    while scenario.intervals > 1 {
        let mut candidate = *scenario;
        candidate.intervals = (scenario.intervals / 2).max(1);
        if budget.check(plan, &candidate) {
            *scenario = candidate;
        } else {
            break;
        }
    }
    scenario.intervals < before
}

/// Repeatedly halves the server count, dropping events that name servers
/// outside the smaller cluster, while the oracle still fires.
fn shrink_cluster(
    budget: &mut Budget<'_, '_>,
    plan: &mut FaultPlan,
    scenario: &mut ChaosScenario,
) -> bool {
    let before = scenario.n_servers;
    while scenario.n_servers > MIN_SERVERS {
        let mut smaller = *scenario;
        smaller.n_servers = (scenario.n_servers / 2).max(MIN_SERVERS);
        let mut candidate = plan.clone();
        candidate.events.retain(|ev| match ev.kind {
            FaultEventKind::ServerCrash { server, .. }
            | FaultEventKind::ServerRecover { server } => (server.0 as usize) < smaller.n_servers,
            FaultEventKind::LeaderCrash { .. } => true,
        });
        if budget.check(&candidate, &smaller) {
            *plan = candidate;
            *scenario = smaller;
        } else {
            break;
        }
    }
    scenario.n_servers < before
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_cluster::server::ServerId;
    use ecolb_simcore::time::{SimDuration, SimTime};

    fn noisy_plan() -> FaultPlan {
        let mut p = FaultPlan::empty(9)
            .with_message_loss(0.2)
            .with_message_delay(0.3, SimDuration::from_secs(60))
            .with_wake_failures(0.4)
            .with_leader_crash(SimTime::from_secs(700), None);
        for i in 0..12 {
            p = p.with_server_crash(SimTime::from_secs(100 * (i + 1)), ServerId(i as u32), None);
        }
        p
    }

    fn has_crash_of(plan: &FaultPlan, server: u32) -> bool {
        plan.events.iter().any(
            |e| matches!(e.kind, FaultEventKind::ServerCrash { server: s, .. } if s.0 == server),
        )
    }

    #[test]
    fn shrinks_to_the_single_relevant_event() {
        // Oracle: "fails" whenever server 3's crash is in the plan.
        let scenario = ChaosScenario::new(64, 16, 0.9);
        let mut oracle = |p: &FaultPlan, _s: &ChaosScenario| has_crash_of(p, 3);
        let out = shrink(&noisy_plan(), &scenario, 1_000, &mut oracle);
        assert!(out.reproduced);
        assert_eq!(out.plan.events.len(), 1, "events: {:?}", out.plan.events);
        assert!(has_crash_of(&out.plan, 3));
        assert_eq!(out.plan.message_loss_prob, 0.0);
        assert_eq!(out.plan.message_delay_prob, 0.0);
        assert_eq!(out.plan.wake_failure_prob, 0.0);
        assert_eq!(out.scenario.intervals, 1);
        // Server 3 must survive the cluster shrink: 64 → 4 keeps id 3.
        assert!(out.scenario.n_servers <= 4);
        assert!(out.scenario.n_servers > 3);
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let scenario = ChaosScenario::new(16, 8, 0.5);
        let plan = noisy_plan();
        let mut oracle = |_: &FaultPlan, _: &ChaosScenario| false;
        let out = shrink(&plan, &scenario, 100, &mut oracle);
        assert!(!out.reproduced);
        assert_eq!(out.plan, plan);
        assert_eq!(out.scenario, scenario);
        assert_eq!(out.oracle_calls, 1);
    }

    #[test]
    fn budget_exhaustion_terminates_with_a_valid_reproducer() {
        let scenario = ChaosScenario::new(64, 16, 0.9);
        let mut oracle = |p: &FaultPlan, _s: &ChaosScenario| has_crash_of(p, 3);
        // A tiny budget: the shrink must stop early but still reproduce.
        let out = shrink(&noisy_plan(), &scenario, 5, &mut oracle);
        assert!(out.reproduced);
        assert!(out.oracle_calls <= 5);
        assert!(has_crash_of(&out.plan, 3));
    }

    #[test]
    fn oracle_over_event_count_keeps_a_minimal_pair() {
        // Needs *two* events of any kind — exercises chunked removal
        // paths that cannot go all the way to one.
        let scenario = ChaosScenario::new(32, 8, 0.9);
        let mut oracle = |p: &FaultPlan, _s: &ChaosScenario| p.events.len() >= 2;
        let out = shrink(&noisy_plan(), &scenario, 1_000, &mut oracle);
        assert!(out.reproduced);
        assert_eq!(out.plan.events.len(), 2);
    }

    #[test]
    fn events_touching_dropped_servers_are_filtered_on_cluster_shrink() {
        let scenario = ChaosScenario::new(64, 8, 0.9);
        // Reproduces regardless of events: pure scenario-size oracle.
        let mut oracle = |_: &FaultPlan, s: &ChaosScenario| s.n_servers >= 2;
        let out = shrink(&noisy_plan(), &scenario, 1_000, &mut oracle);
        assert!(out.reproduced);
        assert_eq!(out.scenario.n_servers, MIN_SERVERS);
        for ev in &out.plan.events {
            if let FaultEventKind::ServerCrash { server, .. } = ev.kind {
                assert!((server.0 as usize) < MIN_SERVERS);
            }
        }
    }

    #[test]
    fn empty_event_list_shrinks_without_panicking() {
        let scenario = ChaosScenario::new(8, 4, 0.5);
        let plan = FaultPlan::empty(1).with_message_loss(0.5);
        let mut oracle = |p: &FaultPlan, _: &ChaosScenario| p.message_loss_prob > 0.0;
        let out = shrink(&plan, &scenario, 100, &mut oracle);
        assert!(out.reproduced);
        assert!(out.plan.events.is_empty());
        assert!(out.plan.message_loss_prob > 0.0);
    }
}
