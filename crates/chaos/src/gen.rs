//! The fault-plan fuzzer: `(seed, plan index, scenario)` → [`FaultPlan`].
//!
//! Generation follows the same keyed-stream discipline as the fault layer
//! itself: every stochastic choice is drawn from a stream keyed by the
//! plan's own seed, a [`FaultKind`] tag and a server id, so plans are
//! fully reproducible from their triple and no family's draws perturb
//! another's. A scenario's single `intensity` knob in `[0, 1]` scales
//! every family at once — the sweep walks an intensity grid from "nothing
//! ever fails" to "a third of the cluster crashes while links drop and
//! delay messages and wake transitions fail".

use ecolb_cluster::cluster::ClusterConfig;
use ecolb_cluster::server::ServerId;
use ecolb_faults::plan::{fault_stream, FaultKind, FaultPlan};
use ecolb_metrics::json::{ObjectWriter, ToJson};
use ecolb_simcore::rng::splitmix64;
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_workload::generator::WorkloadSpec;

/// Per-unit-intensity probability that a given server crashes.
const CRASH_PROB_SCALE: f64 = 0.35;
/// Per-unit-intensity probability of a leader-targeted crash.
const LEADER_CRASH_SCALE: f64 = 0.6;
/// Per-unit-intensity per-report message-loss probability.
const MESSAGE_LOSS_SCALE: f64 = 0.05;
/// Per-unit-intensity per-transfer message-delay probability (capped
/// below 1: a delayed transfer faces the lossy link again).
const MESSAGE_DELAY_SCALE: f64 = 0.3;
/// Per-unit-intensity wake-transition failure probability.
const WAKE_FAILURE_SCALE: f64 = 0.2;

/// Which fleet the chaos cluster is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetKind {
    /// Homogeneous volume-class fleet — the original chaos world.
    Uniform,
    /// Koomey-mixed enterprise fleet whose highest-id servers are spot
    /// capacity: on top of the sampled fault families, the provider
    /// reclaims them at *scheduled* (never sampled) instants.
    MixedSpot,
}

impl FleetKind {
    /// Stable snake_case label (JSON field, table column).
    pub fn label(self) -> &'static str {
        match self {
            FleetKind::Uniform => "uniform",
            FleetKind::MixedSpot => "mixed_spot",
        }
    }
}

/// The shape of one chaos experiment: cluster size, run length and how
/// hard the fuzzer leans on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosScenario {
    /// Servers in the simulated cluster.
    pub n_servers: usize,
    /// Reallocation intervals to simulate.
    pub intervals: u64,
    /// Fault intensity in `[0, 1]`. At `0` the generated plan is
    /// [`FaultPlan::empty`] and generation makes **zero** RNG draws — the
    /// run must be byte-identical to the fault-free simulation.
    pub intensity: f64,
    /// Fleet composition (and with it, the spot-reclaim plan family).
    pub fleet: FleetKind,
}

impl ChaosScenario {
    /// A scenario over the paper's low-load cluster configuration with
    /// the homogeneous volume fleet.
    pub fn new(n_servers: usize, intervals: u64, intensity: f64) -> Self {
        ChaosScenario {
            n_servers,
            intervals,
            intensity,
            fleet: FleetKind::Uniform,
        }
    }

    /// The same scenario over a different fleet.
    pub fn with_fleet(mut self, fleet: FleetKind) -> Self {
        self.fleet = fleet;
        self
    }

    /// The cluster configuration every chaos run uses: the paper's
    /// parameters with the low-load workload, over the scenario's fleet.
    /// Deriving it from the scenario (rather than storing it) keeps
    /// reproducer artifacts self-contained — `(seed, scenario)` rebuilds
    /// the exact run.
    pub fn config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::paper(self.n_servers, WorkloadSpec::paper_low_load());
        if self.fleet == FleetKind::MixedSpot {
            config.server_mix = ecolb_cluster::mix::ServerMix::typical_enterprise();
        }
        config
    }

    /// The reallocation interval τ of [`ChaosScenario::config`].
    pub fn realloc_interval(&self) -> SimDuration {
        self.config().realloc_interval
    }

    /// The simulated horizon: `intervals × τ`.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_ticks(
            self.realloc_interval()
                .ticks()
                .saturating_mul(self.intervals),
        )
    }
}

impl ToJson for ChaosScenario {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("n_servers", &(self.n_servers as u64))
            .field("intervals", &self.intervals)
            .field("intensity", &self.intensity)
            .field("fleet", &self.fleet.label())
            .finish();
    }
}

/// An evenly spaced intensity grid over `[0, 1]` with `steps + 1` points
/// (so `intensity_grid(4)` is `[0, 0.25, 0.5, 0.75, 1]`). `steps = 0`
/// collapses to the single point `[0]`.
pub fn intensity_grid(steps: usize) -> Vec<f64> {
    if steps == 0 {
        return vec![0.0];
    }
    (0..=steps).map(|i| i as f64 / steps as f64).collect()
}

/// Derives the seed of plan `index` under sweep seed `seed`. Folded
/// through SplitMix64 so adjacent indices land in unrelated stream
/// states — the same discipline as [`fault_stream`].
pub fn plan_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed;
    let a = splitmix64(&mut state);
    state ^= index.rotate_left(17);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(21)
}

/// Expands `(seed, index, scenario)` into a concrete [`FaultPlan`].
///
/// At `intensity ≤ 0` this returns [`FaultPlan::empty`] without
/// constructing a single RNG stream: the no-op contract is structural,
/// not statistical. Otherwise each fault family draws from its own keyed
/// stream of the plan seed:
///
/// * **Crash bursts** — each server independently crashes with
///   probability `0.35·intensity` at a uniform instant in the horizon;
///   half the crashes (an independent coin of the same stream) are
///   crash-recover with a repair time of τ plus a uniform draw below
///   half the horizon, the rest are crash-stop.
/// * **Leader-targeted crash** — with probability `0.6·intensity` the
///   current leader host crashes mid-run, exercising failover.
/// * **Link faults** — report loss (`0.05·intensity`), migration delay
///   (`0.3·intensity`, uniform extra latency below τ/2) and wake
///   failures (`0.2·intensity`) are enabled as plan probabilities; their
///   per-event draws happen inside the injector's own keyed streams.
pub fn generate_plan(seed: u64, index: u64, scenario: &ChaosScenario) -> FaultPlan {
    let ps = plan_seed(seed, index);
    if scenario.intensity <= 0.0 {
        return FaultPlan::empty(ps);
    }
    let intensity = scenario.intensity.min(1.0);
    let tau = scenario.realloc_interval();
    let horizon = scenario.horizon().ticks().max(1);

    let mut plan = FaultPlan::empty(ps)
        .with_message_loss((MESSAGE_LOSS_SCALE * intensity).min(1.0))
        .with_message_delay(
            (MESSAGE_DELAY_SCALE * intensity).min(0.9),
            SimDuration::from_ticks(tau.ticks() / 2),
        )
        .with_wake_failures((WAKE_FAILURE_SCALE * intensity).min(1.0));

    let crash_prob = (CRASH_PROB_SCALE * intensity).min(1.0);
    for i in 0..scenario.n_servers {
        let id = ServerId(i as u32);
        let mut rng = fault_stream(ps, FaultKind::ServerCrash, id);
        if rng.chance(crash_prob) {
            let at = SimTime::from_ticks(rng.uniform_u64(horizon));
            let recover = if rng.chance(0.5) {
                Some(SimDuration::from_ticks(
                    tau.ticks()
                        .saturating_add(rng.uniform_u64((horizon / 2).max(1))),
                ))
            } else {
                None
            };
            plan = plan.with_server_crash(at, id, recover);
        }
    }

    let mut leader_rng = fault_stream(ps, FaultKind::LeaderCrash, ServerId(u32::MAX));
    if leader_rng.chance((LEADER_CRASH_SCALE * intensity).min(1.0)) {
        let at = SimTime::from_ticks(leader_rng.uniform_u64(horizon));
        let recover = if leader_rng.chance(0.5) {
            Some(SimDuration::from_ticks(tau.ticks().saturating_add(
                leader_rng.uniform_u64((horizon / 2).max(1)),
            )))
        } else {
            None
        };
        plan = plan.with_leader_crash(at, recover);
    }

    // Spot reclaims on the mixed fleet are scheduled, never sampled:
    // pure arithmetic over the scenario, so the family adds zero RNG
    // streams and composes with the stochastic families above. The
    // provider takes back `ceil(intensity·n/8)` highest-id servers,
    // one per τ starting a quarter into the horizon, and hands each
    // back after 2τ.
    if scenario.fleet == FleetKind::MixedSpot {
        let count = ((intensity * scenario.n_servers as f64) / 8.0).ceil() as usize;
        let first = horizon / 4;
        for i in 0..count.min(scenario.n_servers) {
            let at =
                SimTime::from_ticks(first.saturating_add(tau.ticks().saturating_mul(i as u64)));
            let victim = ServerId((scenario.n_servers - 1 - i) as u32);
            plan = plan.with_server_crash(
                at,
                victim,
                Some(SimDuration::from_ticks(tau.ticks().saturating_mul(2))),
            );
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_faults::plan::FaultEventKind;

    #[test]
    fn zero_intensity_generates_the_empty_plan_without_streams() {
        let scenario = ChaosScenario::new(40, 10, 0.0);
        let plan = generate_plan(7, 3, &scenario);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::empty(plan_seed(7, 3)));
    }

    #[test]
    fn generation_is_deterministic_in_the_triple() {
        let scenario = ChaosScenario::new(40, 10, 0.8);
        let a = generate_plan(11, 5, &scenario);
        let b = generate_plan(11, 5, &scenario);
        assert_eq!(a, b);
        assert_ne!(a, generate_plan(12, 5, &scenario));
        assert_ne!(a, generate_plan(11, 6, &scenario));
    }

    #[test]
    fn intensity_scales_the_fault_load() {
        let n = 200;
        let mild = ChaosScenario::new(n, 10, 0.1);
        let harsh = ChaosScenario::new(n, 10, 1.0);
        let count = |s: &ChaosScenario| -> usize {
            (0..20).map(|i| generate_plan(3, i, s).events.len()).sum()
        };
        assert!(count(&harsh) > count(&mild));
        let p = generate_plan(3, 0, &harsh);
        assert!(p.message_loss_prob > 0.0);
        assert!(p.message_delay_prob > 0.0);
        assert!(p.wake_failure_prob > 0.0);
    }

    #[test]
    fn crash_bursts_mix_stop_and_recover_and_respect_the_horizon() {
        let scenario = ChaosScenario::new(300, 10, 1.0);
        let horizon = scenario.horizon();
        let mut stops = 0;
        let mut recovers = 0;
        for i in 0..5 {
            let plan = generate_plan(99, i, &scenario);
            for ev in &plan.events {
                assert!(ev.at < SimTime::ZERO + horizon);
                if let FaultEventKind::ServerCrash { recover_after, .. } = ev.kind {
                    match recover_after {
                        Some(d) => {
                            recovers += 1;
                            assert!(d >= scenario.realloc_interval());
                        }
                        None => stops += 1,
                    }
                }
            }
        }
        assert!(stops > 0, "expected some crash-stop events");
        assert!(recovers > 0, "expected some crash-recover events");
    }

    #[test]
    fn leader_crashes_appear_at_high_intensity() {
        let scenario = ChaosScenario::new(40, 10, 1.0);
        let leader_crashes = (0..20)
            .filter(|&i| {
                generate_plan(5, i, &scenario)
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, FaultEventKind::LeaderCrash { .. }))
            })
            .count();
        assert!(leader_crashes > 0, "0.6 over 20 plans should hit");
    }

    #[test]
    fn intensity_grid_is_inclusive_and_even() {
        assert_eq!(intensity_grid(0), vec![0.0]);
        assert_eq!(intensity_grid(4), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn scenarios_serialize_to_stable_json() {
        let s = ChaosScenario::new(30, 8, 0.75);
        assert_eq!(
            s.to_json(),
            r#"{"n_servers":30,"intervals":8,"intensity":0.75,"fleet":"uniform"}"#
        );
        let mixed = s.with_fleet(FleetKind::MixedSpot);
        assert_eq!(
            mixed.to_json(),
            r#"{"n_servers":30,"intervals":8,"intensity":0.75,"fleet":"mixed_spot"}"#
        );
    }

    #[test]
    fn mixed_spot_fleet_adds_scheduled_reclaims_without_new_streams() {
        let uniform = ChaosScenario::new(32, 8, 0.5);
        let mixed = uniform.with_fleet(FleetKind::MixedSpot);
        let a = generate_plan(13, 2, &uniform);
        let b = generate_plan(13, 2, &mixed);
        // Same seed, same sampled families: the spot reclaims are the
        // only difference, appended deterministically.
        let reclaims: Vec<_> = b
            .events
            .iter()
            .filter(|ev| !a.events.contains(ev))
            .collect();
        let expected = ((0.5f64 * 32.0) / 8.0).ceil() as usize;
        assert_eq!(reclaims.len(), expected);
        for (i, ev) in reclaims.iter().enumerate() {
            match ev.kind {
                FaultEventKind::ServerCrash {
                    server,
                    recover_after,
                } => {
                    assert_eq!(server, ServerId((31 - i) as u32), "highest ids first");
                    assert!(recover_after.is_some(), "spot capacity is handed back");
                }
                other => panic!("unexpected spot event {other:?}"),
            }
        }
        assert_eq!(b, generate_plan(13, 2, &mixed), "deterministic");
    }

    #[test]
    fn zero_intensity_mixed_spot_is_still_structurally_empty() {
        let scenario = ChaosScenario::new(40, 10, 0.0).with_fleet(FleetKind::MixedSpot);
        let plan = generate_plan(7, 3, &scenario);
        assert!(plan.is_empty());
    }

    #[test]
    fn mixed_spot_config_uses_the_enterprise_mix() {
        use ecolb_cluster::mix::ServerMix;
        let uniform = ChaosScenario::new(10, 2, 0.5);
        assert_eq!(uniform.config().server_mix, ServerMix::all_volume());
        let mixed = uniform.with_fleet(FleetKind::MixedSpot);
        assert_eq!(mixed.config().server_mix, ServerMix::typical_enterprise());
    }
}
