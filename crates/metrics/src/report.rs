//! Machine-readable experiment reports.
//!
//! Every experiment produces a [`Report`]: a named set of scalar metrics,
//! series, and tables, serializable to JSON (via the in-repo
//! [`ToJson`](crate::json::ToJson) emitter) and to CSV (series only,
//! hand-rolled writer — both formats are simple enough that a dependency
//! is not warranted).

use crate::json::{write_json_string, ObjectWriter, ToJson};
use crate::timeseries::TimeSeries;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A structured experiment result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Experiment identifier, e.g. `"fig2/size=1000/load=30"`.
    pub id: String,
    /// RNG seed the experiment ran with.
    pub seed: u64,
    /// Scalar metrics in deterministic (sorted) order.
    pub scalars: BTreeMap<String, f64>,
    /// Recorded series.
    pub series: Vec<TimeSeries>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, seed: u64) -> Self {
        Report {
            id: id.into(),
            seed,
            scalars: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Records a scalar metric (overwrites a previous value of the same
    /// name).
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.insert(name.into(), value);
        self
    }

    /// Reads a scalar back; panics with a clear message when missing, since
    /// a missing metric in a pinned experiment is a bug.
    pub fn get(&self, name: &str) -> f64 {
        *self
            .scalars
            .get(name)
            .unwrap_or_else(|| panic!("report {:?} has no scalar {name:?}", self.id))
    }

    /// Looks up a scalar without panicking.
    pub fn try_get(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// Attaches a series.
    pub fn push_series(&mut self, ts: TimeSeries) -> &mut Self {
        self.series.push(ts);
        self
    }

    /// Finds a series by name.
    pub fn find_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Renders all series as a CSV document: a header row with series names,
    /// one row per interval. Shorter series leave trailing cells empty.
    pub fn series_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "interval");
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(s.name()));
        }
        let _ = writeln!(out);
        let rows = self.series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..rows {
            let _ = write!(out, "{i}");
            for s in &self.series {
                match s.values().get(i) {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the report as a JSON document via [`ToJson`].
    pub fn to_json(&self) -> String {
        ToJson::to_json(self)
    }

    /// Renders the scalar map as a two-column CSV.
    pub fn scalars_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (k, v) in &self.scalars {
            let _ = writeln!(out, "{},{v}", csv_escape(k));
        }
        out
    }
}

impl ToJson for Report {
    /// `{"id":…,"seed":…,"scalars":{name:value,…},"series":{name:[…],…}}` —
    /// the layout external tooling under `results/` already consumes.
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("id", &self.id)
            .field("seed", &self.seed)
            .field("scalars", &self.scalars)
            .field_with("series", |out| {
                out.push('{');
                for (i, ts) in self.series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, ts.name());
                    out.push(':');
                    ts.values().write_json(out);
                }
                out.push('}');
            })
            .finish();
    }
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut r = Report::new("t", 1);
        r.scalar("energy_wh", 12.5);
        assert_eq!(r.get("energy_wh"), 12.5);
        assert_eq!(r.try_get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "no scalar")]
    fn get_missing_panics_with_context() {
        Report::new("t", 1).get("nope");
    }

    #[test]
    fn series_csv_layout() {
        let mut r = Report::new("t", 1);
        r.push_series(TimeSeries::from_values("a", vec![1.0, 2.0]));
        r.push_series(TimeSeries::from_values("b", vec![3.0]));
        let csv = r.series_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "interval,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1,2,");
    }

    #[test]
    fn scalars_csv_sorted_and_escaped() {
        let mut r = Report::new("t", 1);
        r.scalar("z", 1.0);
        r.scalar("a,comma", 2.0);
        let csv = r.scalars_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,value");
        assert_eq!(lines[1], "\"a,comma\",2");
        assert_eq!(lines[2], "z,1");
    }

    #[test]
    fn csv_escape_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("x\ny"), "\"x\ny\"");
    }

    #[test]
    fn find_series_by_name() {
        let mut r = Report::new("t", 1);
        r.push_series(TimeSeries::from_values("ratio", vec![0.5]));
        assert!(r.find_series("ratio").is_some());
        assert!(r.find_series("other").is_none());
    }

    #[test]
    fn json_round_structure() {
        let mut r = Report::new("fig3/size=100", 7);
        r.scalar("mean_ratio", 0.5);
        r.scalar("weird \"name\"", 1.0);
        r.push_series(TimeSeries::from_values("ratio", vec![1.0, 0.25]));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"id\":\"fig3/size=100\""));
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"mean_ratio\":0.5"));
        assert!(json.contains("\\\"name\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"ratio\":[1,0.25]"));
    }

    #[test]
    fn json_non_finite_becomes_null() {
        let mut r = Report::new("t", 1);
        r.push_series(TimeSeries::from_values("x", vec![f64::INFINITY]));
        assert!(r.to_json().contains("[null]"));
    }

    #[test]
    fn empty_report_csv() {
        let r = Report::new("t", 1);
        assert_eq!(r.series_csv(), "interval\n");
        assert_eq!(r.scalars_csv(), "metric,value\n");
    }
}
