//! Online quantile estimation — the P² algorithm.
//!
//! Jain & Chlamtac's P² algorithm estimates a single quantile in O(1)
//! memory with five markers, without storing observations. The farm
//! evaluator uses it for tail response times (p95/p99), which a mean
//! hides: SLAs are violated in the tail first.
//!
//! Reference: R. Jain, I. Chlamtac, "The P² algorithm for dynamic
//! calculation of quantiles and histograms without storing observations",
//! CACM 28(10), 1985.

/// Streaming estimator of one quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments.
    increments: [f64; 5],
    count: usize,
    /// First five observations, sorted lazily at initialisation.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup.sort_by(|a, b| a.total_cmp(b));
                for (h, &w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = w;
                }
            }
            return;
        }

        // Find the cell containing x and bump marker positions.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers with parabolic (or linear) moves.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let can_right = self.positions[i + 1] - self.positions[i] > 1.0;
            let can_left = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && can_right) || (d <= -1.0 && can_left) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; `None` with no observations. With fewer than five
    /// observations the estimate is the exact sample quantile.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut xs = self.warmup.clone();
            xs.sort_by(|a, b| a.total_cmp(b));
            let idx = crate::convert::saturating_usize(((xs.len() as f64 - 1.0) * self.q).round());
            return Some(xs[idx.min(xs.len() - 1)]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_simcore_rng_shim::Rng;

    // The metrics crate deliberately has no simcore dependency; a tiny
    // local xorshift is enough to generate test data.
    mod ecolb_simcore_rng_shim {
        pub struct Rng(u64);
        impl Rng {
            pub fn new(seed: u64) -> Self {
                Rng(seed.max(1))
            }
            pub fn next_f64(&mut self) -> f64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                (self.0 >> 11) as f64 / (1u64 << 53) as f64
            }
        }
    }

    fn exact_quantile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[crate::convert::saturating_usize(((xs.len() as f64 - 1.0) * q).round())]
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = Rng::new(1);
        let mut xs = Vec::new();
        for _ in 0..50_000 {
            let x = rng.next_f64();
            est.push(x);
            xs.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.5);
        let approx = est.estimate().unwrap();
        assert!(
            (approx - exact).abs() < 0.01,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn p99_of_skewed_stream() {
        let mut est = P2Quantile::new(0.99);
        let mut rng = Rng::new(2);
        let mut xs = Vec::new();
        for _ in 0..50_000 {
            // Heavy-ish tail: x = u^4 concentrates mass near 0.
            let u = rng.next_f64();
            let x = u * u * u * u;
            est.push(x);
            xs.push(x);
        }
        let exact = exact_quantile(&mut xs, 0.99);
        let approx = est.estimate().unwrap();
        assert!(
            (approx - exact).abs() / exact < 0.15,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.push(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), Some(2.0), "median of {{1,2,3}}");
    }

    #[test]
    fn monotone_stream_tracks() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.push(i as f64);
        }
        let e = est.estimate().unwrap();
        assert!(
            (e - 9_000.0).abs() < 200.0,
            "p90 of 0..10000 ≈ 9000, got {e}"
        );
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut est = P2Quantile::new(0.75);
        for _ in 0..1000 {
            est.push(42.0);
        }
        assert_eq!(est.estimate(), Some(42.0));
    }

    #[test]
    fn count_is_tracked() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..7 {
            est.push(i as f64);
        }
        assert_eq!(est.count(), 7);
        assert_eq!(est.q(), 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_out_of_range_q() {
        P2Quantile::new(1.0);
    }
}
