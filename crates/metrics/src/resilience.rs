//! Resilience accounting for the serving layer.
//!
//! The resilience stack in `ecolb-serve` (deadlines, retries, hedging,
//! circuit breaking, load shedding) needs its own counters: how many
//! attempts were retried or denied by the retry budget, how many gold
//! requests were hedged, how many requests each SLA class shed or lost
//! outright to a crash, and how often instance breakers tripped.
//! [`ResilienceCounters`] is the compact answer, mirroring the
//! [`DegradationSummary`](crate::degradation::DegradationSummary) idiom:
//! `Copy`, all-zero by default, serialisable through [`ToJson`].

use crate::json::{ObjectWriter, ToJson};

/// Number of SLA classes tracked (gold, bronze) — kept in lockstep with
/// [`SlaClassCounters`](crate::latency::SlaClassCounters).
const SLA_CLASSES: usize = 2;

/// Everything the resilience layer counts over one serving run. A run
/// with the policy disabled (or one that never needed it) is all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceCounters {
    /// Retry attempts actually scheduled (budget granted).
    pub retries: u64,
    /// Retry attempts denied by an exhausted retry budget.
    pub retries_denied: u64,
    /// Hedged (duplicate) attempts issued for gold traffic.
    pub hedges: u64,
    /// Requests shed by admission control, per class (0 = gold,
    /// 1 = bronze).
    pub shed: [u64; SLA_CLASSES],
    /// Requests lost to an instance crash with no retry left, per class.
    pub failed: [u64; SLA_CLASSES],
    /// Closed→open (or half-open→open) breaker transitions.
    pub breaker_opens: u64,
    /// Open→half-open breaker transitions (probe window reopened).
    pub breaker_closes: u64,
    /// Attempts refused at dispatch because the predicted latency
    /// already exceeded the request's deadline.
    pub deadline_misses: u64,
}

impl ResilienceCounters {
    /// Total requests lost outright (crash-killed, all classes).
    pub fn total_failed(&self) -> u64 {
        self.failed.iter().sum()
    }

    /// Total requests shed by admission control (all classes).
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// True when any resilience mechanism left a trace in this run.
    pub fn is_active(&self) -> bool {
        *self != ResilienceCounters::default()
    }

    /// Records a crash-killed request of the given class.
    pub fn record_failed(&mut self, class: usize) {
        self.failed[class.min(SLA_CLASSES - 1)] += 1;
    }

    /// Records a shed request of the given class.
    pub fn record_shed(&mut self, class: usize) {
        self.shed[class.min(SLA_CLASSES - 1)] += 1;
    }
}

impl ToJson for ResilienceCounters {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("retries", &self.retries)
            .field("retries_denied", &self.retries_denied)
            .field("hedges", &self.hedges)
            .field("shed_gold", &self.shed[0])
            .field("shed_bronze", &self.shed[1])
            .field("failed_gold", &self.failed[0])
            .field("failed_bronze", &self.failed[1])
            .field("breaker_opens", &self.breaker_opens)
            .field("breaker_closes", &self.breaker_closes)
            .field("deadline_misses", &self.deadline_misses)
            .finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive_and_all_zero() {
        let c = ResilienceCounters::default();
        assert!(!c.is_active());
        assert_eq!(c.total_failed(), 0);
        assert_eq!(c.total_shed(), 0);
    }

    #[test]
    fn any_nonzero_field_marks_activity() {
        let mut c = ResilienceCounters::default();
        c.retries = 1;
        assert!(c.is_active());
        let mut c = ResilienceCounters::default();
        c.record_failed(0);
        assert!(c.is_active());
        assert_eq!(c.total_failed(), 1);
        let mut c = ResilienceCounters::default();
        c.record_shed(1);
        assert!(c.is_active());
        assert_eq!(c.total_shed(), 1);
    }

    #[test]
    fn class_indices_are_clamped() {
        let mut c = ResilienceCounters::default();
        c.record_failed(9);
        c.record_shed(9);
        assert_eq!(c.failed, [0, 1]);
        assert_eq!(c.shed, [0, 1]);
    }

    #[test]
    fn serialises_through_to_json() {
        let c = ResilienceCounters {
            retries: 5,
            retries_denied: 1,
            hedges: 2,
            shed: [0, 3],
            failed: [1, 4],
            breaker_opens: 2,
            breaker_closes: 2,
            deadline_misses: 6,
        };
        assert_eq!(
            c.to_json(),
            r#"{"retries":5,"retries_denied":1,"hedges":2,"shed_gold":0,"shed_bronze":3,"failed_gold":1,"failed_bronze":4,"breaker_opens":2,"breaker_closes":2,"deadline_misses":6}"#
        );
    }
}
