//! Degradation accounting for faulty runs.
//!
//! When infrastructure faults are injected (server crashes, leader
//! failure, message loss) the interesting question is *how much of the
//! energy-aware policy's value survives*. [`DegradationSummary`] is the
//! compact answer: availability, SLA-violation time, missed consolidation
//! opportunities, and the energy wasted while the cluster was degraded —
//! all serialisable through the standard [`ToJson`] report path.

use crate::json::{ObjectWriter, ToJson};

/// How degraded a (possibly faulty) run was. A fault-free run is
/// `availability = 1.0` with every other field zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegradationSummary {
    /// Fraction of server-time the cluster's hosts were in service:
    /// `1 − crashed-server-seconds / (n × elapsed)`. 1.0 when nothing
    /// ever crashed.
    pub availability: f64,
    /// Seconds of SLA violation: saturated server-intervals plus the time
    /// orphaned VMs spent waiting for re-admission.
    pub sla_violation_seconds: f64,
    /// Consolidation opportunities the cluster missed while leaderless
    /// (awake servers stuck in an undesirable regime with no broker).
    pub failed_consolidations: u64,
    /// Energy burned while the cluster was degraded — leaderless
    /// intervals and aborted wake transitions — Joules.
    pub wasted_energy_j: f64,
    /// Regime reports that exhausted their retry budget and never
    /// reached the leader (the directory balanced that interval on a
    /// stale entry). Previously this exhaustion was silent.
    pub lost_reports: u64,
}

impl DegradationSummary {
    /// The summary of a run with no faults at all.
    pub fn fault_free() -> Self {
        DegradationSummary {
            availability: 1.0,
            ..DegradationSummary::default()
        }
    }

    /// True when any degradation at all was recorded.
    pub fn is_degraded(&self) -> bool {
        self.availability < 1.0
            || self.sla_violation_seconds > 0.0
            || self.failed_consolidations > 0
            || self.wasted_energy_j > 0.0
            || self.lost_reports > 0
    }
}

impl ToJson for DegradationSummary {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("availability", &self.availability)
            .field("sla_violation_seconds", &self.sla_violation_seconds)
            .field("failed_consolidations", &self.failed_consolidations)
            .field("wasted_energy_j", &self.wasted_energy_j)
            .field("lost_reports", &self.lost_reports)
            .finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_summary_is_not_degraded() {
        let s = DegradationSummary::fault_free();
        assert_eq!(s.availability, 1.0);
        assert!(!s.is_degraded());
    }

    #[test]
    fn any_nonzero_field_marks_degradation() {
        let mut s = DegradationSummary::fault_free();
        s.failed_consolidations = 1;
        assert!(s.is_degraded());
        let mut s = DegradationSummary::fault_free();
        s.availability = 0.99;
        assert!(s.is_degraded());
        let mut s = DegradationSummary::fault_free();
        s.sla_violation_seconds = 30.0;
        assert!(s.is_degraded());
        let mut s = DegradationSummary::fault_free();
        s.wasted_energy_j = 5.0;
        assert!(s.is_degraded());
        let mut s = DegradationSummary::fault_free();
        s.lost_reports = 2;
        assert!(s.is_degraded());
    }

    #[test]
    fn serialises_through_to_json() {
        let s = DegradationSummary {
            availability: 0.875,
            sla_violation_seconds: 600.0,
            failed_consolidations: 4,
            wasted_energy_j: 123.5,
            lost_reports: 2,
        };
        assert_eq!(
            s.to_json(),
            r#"{"availability":0.875,"sla_violation_seconds":600,"failed_consolidations":4,"wasted_energy_j":123.5,"lost_reports":2}"#
        );
    }
}
