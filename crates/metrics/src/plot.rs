//! Terminal plots.
//!
//! The figures of the paper are bar charts (Figure 2) and line plots
//! (Figure 3). The bench harnesses render them as ASCII so a reproduction
//! run produces *visual* output comparable with the paper without any
//! plotting dependency. CSV export (see [`crate::report`]) covers real
//! plotting downstream.

use std::fmt::Write as _;

/// Renders grouped vertical-bar data as a horizontal ASCII bar chart.
///
/// `groups` is a list of `(label, values)` where each group carries one bar
/// per series; `series` are the per-bar legends (e.g. "Initial", "Final").
pub fn grouped_bars(
    title: &str,
    series: &[&str],
    groups: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = groups
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let label_w = groups
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0)
        .max(5);
    let series_w = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for (label, values) in groups {
        for (si, v) in values.iter().enumerate() {
            let bar_len = crate::convert::saturating_usize(((v / max) * width as f64).round());
            let name = if si == 0 { label.as_str() } else { "" };
            let _ = writeln!(
                out,
                "{name:<label_w$} {series:<series_w$} |{bar}{pad}| {v:>10.1}",
                series = series.get(si).copied().unwrap_or(""),
                bar = "#".repeat(bar_len),
                pad = " ".repeat(width - bar_len),
            );
        }
    }
    out
}

/// Renders a single numeric series as an ASCII line plot of the given
/// height, with a y-axis scale.
pub fn line_plot(title: &str, values: &[f64], height: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if values.is_empty() {
        let _ = writeln!(out, "(empty series)");
        return out;
    }
    let vmax = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let vmin = values.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (vmax - vmin).max(1e-12);
    let height = height.max(2);
    // grid[r][c]: row 0 is the top.
    let mut grid = vec![vec![' '; values.len()]; height];
    for (c, &v) in values.iter().enumerate() {
        let level =
            crate::convert::saturating_usize(((v - vmin) / span * (height - 1) as f64).round());
        let r = height - 1 - level;
        grid[r][c] = '*';
    }
    for (r, row) in grid.iter().enumerate() {
        let y = vmax - span * r as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y:>8.3} |{line}");
    }
    let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(values.len()));
    let _ = writeln!(out, "{:>8}  interval 0..{}", "", values.len() - 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_bars_scales_to_max() {
        let groups = vec![
            ("R1".to_string(), vec![10.0, 0.0]),
            ("R3".to_string(), vec![5.0, 20.0]),
        ];
        let s = grouped_bars("t", &["Initial", "Final"], &groups, 20);
        assert!(s.contains('t'));
        // The 20.0 bar is the longest: exactly `width` hashes.
        assert!(s.contains(&"#".repeat(20)), "plot:\n{s}");
        // The 10.0 bar is half as long.
        assert!(
            s.contains(&format!("|{}{}|", "#".repeat(10), " ".repeat(10))),
            "plot:\n{s}"
        );
    }

    #[test]
    fn grouped_bars_handles_all_zero() {
        let groups = vec![("R1".to_string(), vec![0.0])];
        let s = grouped_bars("z", &["only"], &groups, 10);
        assert!(s.contains(&format!("|{}|", " ".repeat(10))));
    }

    #[test]
    fn line_plot_places_extremes() {
        let s = line_plot("lp", &[0.0, 1.0, 0.5], 5);
        let lines: Vec<&str> = s.lines().collect();
        // Top row (after title) holds the max (col 1), bottom data row the
        // min (col 0).
        assert!(lines[1].contains('*'));
        assert!(lines[5].contains('*'));
    }

    #[test]
    fn line_plot_empty_series() {
        let s = line_plot("e", &[], 5);
        assert!(s.contains("empty"));
    }

    #[test]
    fn line_plot_constant_series_does_not_panic() {
        let s = line_plot("c", &[2.0, 2.0, 2.0], 4);
        assert_eq!(s.matches('*').count(), 3);
    }
}
