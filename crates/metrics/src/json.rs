//! Minimal hand-rolled JSON emission.
//!
//! The workspace only ever *writes* JSON — experiment reports and run
//! configurations land in `results/` for external tooling — and never
//! parses it back, so a serializer dependency is not warranted. This
//! module is the single place that knows JSON syntax: a [`ToJson`] trait
//! with impls for the primitive shapes, plus an [`ObjectWriter`] for
//! composing struct impls without worrying about comma placement.
//!
//! ```
//! use ecolb_metrics::json::{ObjectWriter, ToJson};
//!
//! struct RunConfig { seed: u64, sizes: Vec<u64> }
//! impl ToJson for RunConfig {
//!     fn write_json(&self, out: &mut String) {
//!         ObjectWriter::new(out)
//!             .field("seed", &self.seed)
//!             .field("sizes", &self.sizes)
//!             .finish();
//!     }
//! }
//! let c = RunConfig { seed: 7, sizes: vec![100, 1000] };
//! assert_eq!(c.to_json(), r#"{"seed":7,"sizes":[100,1000]}"#);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Renders this value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn write_json_number(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        write_json_number(out, *self);
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

/// Comma-tracking helper for writing JSON objects field by field.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens an object (writes the `{`).
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    /// Writes one `"name":value` field.
    pub fn field(mut self, name: &str, value: &dyn ToJson) -> Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_json_string(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Writes a field whose value is produced by `f` writing raw JSON —
    /// for nested shapes that do not have a `ToJson` impl of their own.
    pub fn field_with(mut self, name: &str, f: impl FnOnce(&mut String)) -> Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_json_string(self.out, name);
        self.out.push(':');
        f(self.out);
        self
    }

    /// Closes the object (writes the `}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b".to_json(), "\"a\\\"b\"");
        assert_eq!("\u{1}".to_json(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Vec::<u32>::new().to_json(), "[]");
        assert_eq!(Some(1u32).to_json(), "1");
        assert_eq!(None::<u32>.to_json(), "null");
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0);
        m.insert("a".to_string(), 1.0);
        assert_eq!(m.to_json(), r#"{"a":1,"b":2}"#, "keys in sorted order");
    }

    #[test]
    fn object_writer_commas() {
        let mut out = String::new();
        ObjectWriter::new(&mut out)
            .field("a", &1u32)
            .field("b", &"x")
            .field_with("c", |o| o.push_str("[true]"))
            .finish();
        assert_eq!(out, r#"{"a":1,"b":"x","c":[true]}"#);
    }

    #[test]
    fn empty_object() {
        let mut out = String::new();
        ObjectWriter::new(&mut out).finish();
        assert_eq!(out, "{}");
    }
}
