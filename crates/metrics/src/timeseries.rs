//! Per-interval time series.
//!
//! Figure 3 of the paper is a time series of the in-cluster/local decision
//! ratio over 40 reallocation intervals; [`TimeSeries`] is the recording
//! structure behind it and behind every other per-interval trace in the
//! suite.

use crate::summary::OnlineStats;

/// An append-only series of `(interval index, value)` observations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Creates a series from existing values.
    pub fn from_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        TimeSeries {
            name: name.into(),
            values,
        }
    }

    /// The series name (used as plot/CSV header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends the value for the next interval.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// All recorded values in interval order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Summary statistics over the whole series.
    pub fn stats(&self) -> OnlineStats {
        OnlineStats::from_slice(&self.values)
    }

    /// Summary over the tail starting at `from` (used by the paper's
    /// "after the system stabilizes" observations).
    pub fn stats_from(&self, from: usize) -> OnlineStats {
        OnlineStats::from_slice(&self.values[from.min(self.values.len())..])
    }

    /// Trailing moving average with window `w` (the paper's moving-window
    /// predictive policy uses the same primitive). Output has the same
    /// length; early entries average the available prefix.
    pub fn moving_average(&self, w: usize) -> Vec<f64> {
        assert!(w > 0, "window must be positive");
        let mut out = Vec::with_capacity(self.values.len());
        let mut acc = 0.0;
        for i in 0..self.values.len() {
            acc += self.values[i];
            if i >= w {
                acc -= self.values[i - w];
            }
            let n = (i + 1).min(w);
            out.push(acc / n as f64);
        }
        out
    }

    /// First interval index where the value drops below `threshold` and
    /// stays below it for the remainder of the series; `None` if never.
    ///
    /// This operationalises the paper's "low-cost local decisions become
    /// dominant after about N reallocation intervals" claim: dominance is
    /// the ratio staying below 1.0.
    pub fn settles_below(&self, threshold: f64) -> Option<usize> {
        let mut candidate = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v < threshold {
                if candidate.is_none() {
                    candidate = Some(i);
                }
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

impl crate::json::ToJson for TimeSeries {
    fn write_json(&self, out: &mut String) {
        crate::json::ObjectWriter::new(out)
            .field("name", &self.name)
            .field("values", &self.values)
            .finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut ts = TimeSeries::new("ratio");
        ts.push(1.0);
        ts.push(0.5);
        assert_eq!(ts.values(), &[1.0, 0.5]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.name(), "ratio");
    }

    #[test]
    fn stats_over_series() {
        let ts = TimeSeries::from_values("x", vec![1.0, 2.0, 3.0, 4.0]);
        let s = ts.stats();
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn stats_from_tail() {
        let ts = TimeSeries::from_values("x", vec![10.0, 10.0, 1.0, 1.0]);
        assert_eq!(ts.stats_from(2).mean(), 1.0);
        // Out-of-range start clamps to empty.
        assert_eq!(ts.stats_from(99).count(), 0);
    }

    #[test]
    fn moving_average_smooths() {
        let ts = TimeSeries::from_values("x", vec![0.0, 2.0, 4.0, 6.0]);
        let ma = ts.moving_average(2);
        assert_eq!(ma, vec![0.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let ts = TimeSeries::from_values("x", vec![3.0, 1.0, 4.0]);
        assert_eq!(ts.moving_average(1), vec![3.0, 1.0, 4.0]);
    }

    #[test]
    fn settles_below_finds_last_crossing() {
        let ts = TimeSeries::from_values("x", vec![2.0, 0.5, 3.0, 0.9, 0.8, 0.7]);
        assert_eq!(ts.settles_below(1.0), Some(3));
    }

    #[test]
    fn settles_below_none_when_it_never_settles() {
        let ts = TimeSeries::from_values("x", vec![0.5, 0.5, 2.0]);
        assert_eq!(ts.settles_below(1.0), None);
    }

    #[test]
    fn settles_below_from_start() {
        let ts = TimeSeries::from_values("x", vec![0.1, 0.2, 0.3]);
        assert_eq!(ts.settles_below(1.0), Some(0));
    }

    #[test]
    fn empty_series_behaviour() {
        let ts = TimeSeries::new("e");
        assert!(ts.is_empty());
        assert_eq!(ts.settles_below(1.0), None);
        assert_eq!(ts.stats().count(), 0);
    }
}
