//! Request-latency accounting for the serving layer.
//!
//! [`LatencyRecorder`] bundles the streaming machinery a per-picker
//! latency profile needs: moments ([`OnlineStats`]), the three SLA tail
//! quantiles via P² ([`P2Quantile`]), and a fixed-bin [`Histogram`] for
//! distribution plots. [`SlaClassCounters`] keeps per-class served /
//! violated totals so a gold/bronze SLA split costs two array slots, not
//! a map. Both are plain data: no clocks, no RNG, deterministic
//! `PartialEq` so whole serving reports can be byte-compared.

use crate::histogram::Histogram;
use crate::quantile::P2Quantile;
use crate::summary::OnlineStats;

/// Number of SLA classes the serving layer distinguishes.
pub const SLA_CLASSES: usize = 2;

/// Streaming latency profile: moments, P² tails, histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRecorder {
    stats: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    histogram: Histogram,
}

impl LatencyRecorder {
    /// Creates a recorder whose histogram spans `[0, hi_seconds)` with
    /// `bins` uniform buckets (observations beyond `hi_seconds` land in
    /// the overflow counter, never dropped).
    pub fn new(hi_seconds: f64, bins: usize) -> Self {
        LatencyRecorder {
            stats: OnlineStats::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            histogram: Histogram::new(0.0, hi_seconds, bins),
        }
    }

    /// Records one latency sample, seconds.
    pub fn record(&mut self, seconds: f64) {
        self.stats.push(seconds);
        self.p50.push(seconds);
        self.p95.push(seconds);
        self.p99.push(seconds);
        self.histogram.record(seconds);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency, seconds; 0.0 for an empty recorder.
    pub fn mean(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.mean()
        }
    }

    /// Maximum latency observed, seconds; 0.0 for an empty recorder.
    pub fn max(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.max()
        }
    }

    /// P² estimate of the median, seconds; 0.0 for an empty recorder.
    pub fn p50(&self) -> f64 {
        self.p50.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 95th percentile, seconds; 0.0 when empty.
    pub fn p95(&self) -> f64 {
        self.p95.estimate().unwrap_or(0.0)
    }

    /// P² estimate of the 99th percentile, seconds; 0.0 when empty.
    pub fn p99(&self) -> f64 {
        self.p99.estimate().unwrap_or(0.0)
    }

    /// The underlying latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// The underlying moment accumulator.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

/// Per-SLA-class served/violated counters.
///
/// Class indices are fixed (0 = gold, 1 = bronze) so the structure is a
/// pair of arrays rather than a map — `ecolb-metrics` stays a leaf crate
/// and the counters stay `Copy`-cheap and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlaClassCounters {
    served: [u64; SLA_CLASSES],
    violated: [u64; SLA_CLASSES],
    rejected: [u64; SLA_CLASSES],
}

impl SlaClassCounters {
    /// An all-zero counter set.
    pub fn new() -> Self {
        SlaClassCounters::default()
    }

    /// Records a completed request of `class`; `violated` marks a sample
    /// over the class's latency objective. Out-of-range classes are
    /// clamped to the last class rather than dropped.
    pub fn record(&mut self, class: usize, violated: bool) {
        let c = class.min(SLA_CLASSES - 1);
        self.served[c] += 1;
        if violated {
            self.violated[c] += 1;
        }
    }

    /// Records a rejected request of `class`.
    pub fn record_rejected(&mut self, class: usize) {
        let c = class.min(SLA_CLASSES - 1);
        self.rejected[c] += 1;
    }

    /// Requests served in `class` (clamped).
    pub fn served(&self, class: usize) -> u64 {
        self.served[class.min(SLA_CLASSES - 1)]
    }

    /// Objective violations in `class` (clamped).
    pub fn violated(&self, class: usize) -> u64 {
        self.violated[class.min(SLA_CLASSES - 1)]
    }

    /// Rejections in `class` (clamped).
    pub fn rejected(&self, class: usize) -> u64 {
        self.rejected[class.min(SLA_CLASSES - 1)]
    }

    /// Violation fraction for `class`: violated / served, a defined 0.0
    /// when the class served nothing.
    pub fn violation_fraction(&self, class: usize) -> f64 {
        let c = class.min(SLA_CLASSES - 1);
        if self.served[c] == 0 {
            0.0
        } else {
            self.violated[c] as f64 / self.served[c] as f64
        }
    }

    /// Total requests served across classes.
    pub fn total_served(&self) -> u64 {
        self.served.iter().sum()
    }

    /// Total objective violations across classes.
    pub fn total_violated(&self) -> u64 {
        self.violated.iter().sum()
    }

    /// Total rejections across classes.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zeros_not_nan() {
        let r = LatencyRecorder::new(10.0, 32);
        for v in [r.mean(), r.max(), r.p50(), r.p95(), r.p99()] {
            assert_eq!(v, 0.0);
        }
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn recorder_tracks_tail_above_median() {
        let mut r = LatencyRecorder::new(10.0, 32);
        for i in 0..1000 {
            r.record((i % 100) as f64 / 100.0);
        }
        assert_eq!(r.count(), 1000);
        assert!(r.p99() > r.p95());
        assert!(r.p95() > r.p50());
        assert!((r.mean() - 0.495).abs() < 1e-9);
        assert_eq!(r.histogram().total(), 1000);
    }

    #[test]
    fn recorder_equality_is_structural() {
        let mut a = LatencyRecorder::new(5.0, 16);
        let mut b = LatencyRecorder::new(5.0, 16);
        for x in [0.1, 0.4, 2.2, 0.9] {
            a.record(x);
            b.record(x);
        }
        assert_eq!(a, b);
        b.record(0.5);
        assert_ne!(a, b);
    }

    #[test]
    fn sla_counters_split_by_class_and_guard_zero() {
        let mut c = SlaClassCounters::new();
        assert_eq!(c.violation_fraction(0), 0.0);
        c.record(0, false);
        c.record(0, true);
        c.record(1, false);
        c.record_rejected(1);
        assert_eq!(c.served(0), 2);
        assert_eq!(c.violated(0), 1);
        assert_eq!(c.served(1), 1);
        assert_eq!(c.rejected(1), 1);
        assert_eq!(c.total_served(), 3);
        assert_eq!(c.total_violated(), 1);
        assert_eq!(c.total_rejected(), 1);
        assert!((c.violation_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_class_clamps_to_last() {
        let mut c = SlaClassCounters::new();
        c.record(99, true);
        c.record_rejected(99);
        assert_eq!(c.served(SLA_CLASSES - 1), 1);
        assert_eq!(c.rejected(SLA_CLASSES - 1), 1);
    }
}
