//! Audited float → integer conversions.
//!
//! Rust's `expr as usize` on a float is *saturating*: values are clamped
//! to the target range and NaN maps to 0. Those semantics are fine for
//! binning and plotting — but they are a property every call site silently
//! relies on, so the `float-truncating-cast` lint requires all such casts
//! in `crates/energy` and `crates/metrics` to flow through this module,
//! where the behaviour is chosen once, documented, and debug-asserted.
//!
//! All helpers truncate toward zero (the `as` semantics). Callers that
//! want flooring or rounding apply `.floor()` / `.round()` *before* the
//! conversion, which keeps the rounding decision visible at the call site:
//!
//! ```
//! use ecolb_metrics::convert;
//!
//! assert_eq!(convert::saturating_usize(3.9), 3);
//! assert_eq!(convert::saturating_usize(3.9_f64.round()), 4);
//! assert_eq!(convert::saturating_u64(-1.0), 0);
//! assert_eq!(convert::saturating_i64(1e300), i64::MAX);
//! ```

/// Converts `x` to `usize`, truncating toward zero; saturates at the type
/// bounds, NaN maps to 0.
///
/// Debug builds assert `x` is not NaN — a NaN reaching a bin index is a
/// logic error upstream even though the release behaviour (bin 0) is
/// total and deterministic.
#[inline]
pub fn saturating_usize(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "NaN converted to usize");
    x as usize
}

/// Converts `x` to `u64`, truncating toward zero; saturates at the type
/// bounds (negative values map to 0), NaN maps to 0.
#[inline]
pub fn saturating_u64(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "NaN converted to u64");
    x as u64
}

/// Converts `x` to `i64`, truncating toward zero; saturates at the type
/// bounds, NaN maps to 0.
#[inline]
pub fn saturating_i64(x: f64) -> i64 {
    debug_assert!(!x.is_nan(), "NaN converted to i64");
    x as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_toward_zero() {
        assert_eq!(saturating_usize(0.0), 0);
        assert_eq!(saturating_usize(0.999), 0);
        assert_eq!(saturating_usize(42.7), 42);
        assert_eq!(saturating_u64(7.99), 7);
        assert_eq!(saturating_i64(-3.7), -3);
    }

    #[test]
    fn saturates_at_bounds() {
        assert_eq!(saturating_usize(-5.0), 0);
        assert_eq!(saturating_u64(-0.5), 0);
        assert_eq!(saturating_usize(1e300), usize::MAX);
        assert_eq!(saturating_u64(1e300), u64::MAX);
        assert_eq!(saturating_i64(-1e300), i64::MIN);
        assert_eq!(saturating_u64(f64::INFINITY), u64::MAX);
        assert_eq!(saturating_i64(f64::NEG_INFINITY), i64::MIN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_maps_to_zero_in_release() {
        assert_eq!(saturating_usize(f64::NAN), 0);
        assert_eq!(saturating_u64(f64::NAN), 0);
        assert_eq!(saturating_i64(f64::NAN), 0);
    }

    #[test]
    fn exact_integers_roundtrip() {
        for v in [0u64, 1, 1_000, 1 << 52] {
            assert_eq!(saturating_u64(v as f64), v);
        }
    }
}
