//! Online summary statistics.
//!
//! [`OnlineStats`] implements Welford's single-pass algorithm for mean and
//! variance, with exact merging of partial summaries (Chan et al.), so the
//! parallel bench harness can compute per-thread summaries and combine them
//! without storing samples.

/// Single-pass mean/variance/min/max accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (exact, order-independent up to
    /// floating-point rounding).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `0.0` for fewer than one
    /// observation.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` for fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population standard deviation.
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.31).collect();
        let s = OnlineStats::from_slice(&xs);
        let (mean, var) = naive_stats(&xs);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.sum(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = xs.split_at(137);
        let mut a = OnlineStats::from_slice(left);
        let b = OnlineStats::from_slice(right);
        a.merge(&b);
        let all = OnlineStats::from_slice(&xs);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = OnlineStats::from_slice(&xs);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        let s = OnlineStats::from_slice(&[7.0; 100]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 7.0);
    }

    #[test]
    fn paper_table2_style_std_dev() {
        // Sanity: the paper reports mean ratio 0.6490 with std 0.5229 for
        // one config — verify our std-dev convention (sample, n-1) on a
        // small handmade series.
        let xs = [2.8, 0.9, 0.6, 0.5, 0.45, 0.4];
        let s = OnlineStats::from_slice(&xs);
        let (mean, var) = naive_stats(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-12);
    }
}
