//! Fixed-bin histograms.
//!
//! Used for the regime-occupancy counts of Figure 2 and for load/latency
//! distributions in the policy evaluations. Bins are uniform over `[lo, hi)`
//! with explicit underflow/overflow counters so no observation is silently
//! dropped.

/// A histogram with `bins` uniform buckets over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram; panics when `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range inverted: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = crate::convert::saturating_usize(
                (x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64,
            );
            // Guard against floating-point edge where x is a hair below hi.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of in-range bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All in-range counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The inclusive-exclusive edges `[lo_i, hi_i)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Approximate quantile `q in [0,1]` from in-range observations, by
    /// linear interpolation within the containing bin. Returns `None` when
    /// the histogram holds no in-range observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = q * in_range as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let (lo, hi) = self.bin_edges(i);
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
            acc = next;
        }
        Some(self.hi)
    }

    /// Merges another histogram with identical geometry; panics on mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bin-count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.05);
        h.record(0.15);
        h.record(0.95);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_lands_in_lower_edge_of_next_bin() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.5);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::new(0.0, 1.0, 5);
        let mut prev_hi = 0.0;
        for i in 0..5 {
            let (lo, hi) = h.bin_edges(i);
            assert!((lo - prev_hi).abs() < 1e-12);
            prev_hi = hi;
        }
        assert!((prev_hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(0.1);
        b.record(0.1);
        b.record(0.9);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.underflow(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_geometry_mismatch() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 8);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_range() {
        Histogram::new(1.0, 0.0, 4);
    }
}
