//! ASCII table rendering for the benchmark harness.
//!
//! The paper's tables are reproduced as plain-text tables printed by the
//! `crates/bench/src/bin` harnesses; [`Table`] handles alignment and
//! separators so every harness prints in the same style.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text columns).
    Left,
    /// Right-aligned (numeric columns).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; all columns default to
    /// right alignment except the first.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides the alignment of column `i`.
    pub fn align(mut self, i: usize, a: Align) -> Self {
        self.aligns[i] = a;
        self
    }

    /// Appends a row; panics when the cell count differs from the header
    /// count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        writeln!(f, "{sep}")?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:^w$} |", w = *w)?;
        }
        writeln!(f)?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write!(f, "|")?;
            for ((cell, w), a) in row.iter().zip(&widths).zip(&self.aligns) {
                match a {
                    Align::Left => write!(f, " {cell:<w$} |", w = *w)?,
                    Align::Right => write!(f, " {cell:>w$} |", w = *w)?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "{sep}")
    }
}

/// Formats a float with `prec` decimals, trimming `-0.0000` to `0.0000`.
pub fn fmt_f(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_grid() {
        let mut t = Table::new(["Type", "2000", "2006"]).with_title("Power (W)");
        t.row(["Vol", "186", "225"]);
        t.row(["High", "5534", "8163"]);
        let out = t.to_string();
        assert!(out.contains("Power (W)"));
        assert!(out.contains("| Vol "));
        assert!(out.contains(" 8163 |"));
        // Every data line has the same width.
        let lines: Vec<&str> = out.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "ragged table:\n{out}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt_f_handles_negative_zero() {
        assert_eq!(fmt_f(-0.000001, 4), "0.0000");
        assert_eq!(fmt_f(-1.5, 2), "-1.50");
        assert_eq!(fmt_f(0.6490, 4), "0.6490");
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(["a", "b"]).align(1, Align::Left);
        t.row(["x", "y"]);
        let out = t.to_string();
        assert!(out.contains("| x | y |"));
    }

    #[test]
    fn n_rows_counts() {
        let mut t = Table::new(["a"]);
        assert_eq!(t.n_rows(), 0);
        t.row(["1"]);
        t.row(["2"]);
        assert_eq!(t.n_rows(), 2);
    }
}
