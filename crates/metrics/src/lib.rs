//! # ecolb-metrics
//!
//! Measurement and reporting toolkit for the `ecolb` suite: online
//! statistics ([`OnlineStats`]), fixed-bin histograms ([`Histogram`]),
//! per-interval series ([`TimeSeries`]), ASCII tables and plots for the
//! harnesses, and serializable experiment [`Report`]s.
//!
//! Nothing here knows about servers or energy; the crate is deliberately a
//! leaf so the measurement layer can be tested in isolation and reused by
//! every simulation crate above it.
//!
//! ```
//! use ecolb_metrics::{OnlineStats, P2Quantile, TimeSeries};
//!
//! let mut stats = OnlineStats::new();
//! let mut p99 = P2Quantile::new(0.99);
//! let mut series = TimeSeries::new("latency");
//! for i in 0..1000 {
//!     let x = (i % 100) as f64;
//!     stats.push(x);
//!     p99.push(x);
//!     series.push(x);
//! }
//! assert!((stats.mean() - 49.5).abs() < 1e-9);
//! assert!(p99.estimate().unwrap() > 90.0);
//! assert_eq!(series.len(), 1000);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;
pub mod degradation;
pub mod histogram;
pub mod json;
pub mod latency;
pub mod plot;
pub mod quantile;
pub mod report;
pub mod resilience;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use degradation::DegradationSummary;
pub use histogram::Histogram;
pub use latency::{LatencyRecorder, SlaClassCounters};
pub use quantile::P2Quantile;
pub use report::Report;
pub use resilience::ResilienceCounters;
pub use summary::OnlineStats;
pub use table::{fmt_f, Align, Table};
pub use timeseries::TimeSeries;
