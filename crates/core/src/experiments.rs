//! Canned reproductions of every table and figure in the paper.
//!
//! The six heterogeneous-cluster experiments of §5 share one matrix: three
//! cluster sizes (10², 10³, 10⁴) × two initial-load bands (20–40 % and
//! 60–80 %), each run for 40 reallocation intervals. Figure 2 reads the
//! before/after regime censuses out of that matrix, Figure 3 the
//! per-interval decision-ratio series, and Table 2 the summary statistics.
//! Table 1 and the homogeneous model are analytic and live in
//! `ecolb-energy`; [`table1_rows`] and [`homogeneous_rows`] render them.

use ecolb_cluster::cluster::{Cluster, ClusterConfig, ClusterRunReport};
use ecolb_energy::homogeneous::HomogeneousModel;
use ecolb_energy::regimes::RegimeCensus;
use ecolb_energy::server_class::{table1_power_w, ServerClass, TABLE1_YEARS};
use ecolb_metrics::timeseries::TimeSeries;
use ecolb_workload::generator::WorkloadSpec;

/// The two §5 load levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// Initial per-server load uniform in 20–40 % ("average load 30 %").
    Low,
    /// Initial per-server load uniform in 60–80 % ("average load 70 %").
    High,
}

impl LoadLevel {
    /// Both levels in paper order.
    pub const ALL: [LoadLevel; 2] = [LoadLevel::Low, LoadLevel::High];

    /// The workload band for this level.
    pub fn workload(self) -> WorkloadSpec {
        match self {
            LoadLevel::Low => WorkloadSpec::paper_low_load(),
            LoadLevel::High => WorkloadSpec::paper_high_load(),
        }
    }

    /// The paper's "average load" percentage label.
    pub fn percent(self) -> u32 {
        match self {
            LoadLevel::Low => 30,
            LoadLevel::High => 70,
        }
    }
}

/// The cluster sizes of §5.
pub const PAPER_CLUSTER_SIZES: [usize; 3] = [100, 1_000, 10_000];

/// The cluster sizes of the earlier companion paper [19] ("Energy-aware
/// application scaling on a cloud"), which §5 says it experimented with
/// before scaling up.
pub const SMALL_CLUSTER_SIZES: [usize; 4] = [20, 40, 60, 80];

/// The paper's 40 reallocation intervals.
pub const PAPER_INTERVALS: u64 = 40;

/// One cell of the experiment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Cluster size `n`.
    pub size: usize,
    /// Load level.
    pub load: LoadLevel,
    /// The full run report.
    pub report: ClusterRunReport,
}

impl MatrixCell {
    /// The paper's plot label: (a)…(f) in Figure 2/3 & Table 2 order.
    pub fn plot_label(&self) -> &'static str {
        match (self.size, self.load) {
            (100, LoadLevel::Low) => "(a)",
            (100, LoadLevel::High) => "(b)",
            (1_000, LoadLevel::Low) => "(c)",
            (1_000, LoadLevel::High) => "(d)",
            (10_000, LoadLevel::Low) => "(e)",
            (10_000, LoadLevel::High) => "(f)",
            _ => "(?)",
        }
    }
}

/// Runs one matrix cell. The per-cell seed mixes the base seed with the
/// configuration so cells are independent but individually reproducible.
pub fn run_cell(base_seed: u64, size: usize, load: LoadLevel, intervals: u64) -> MatrixCell {
    let seed = base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(size as u64)
        .wrapping_add(load.percent() as u64);
    let config = ClusterConfig::paper(size, load.workload());
    let mut cluster = Cluster::new(config, seed);
    let report = cluster.run(intervals);
    MatrixCell { size, load, report }
}

/// Runs the [19] small-cluster matrix (sizes 20, 40, 60, 80).
pub fn run_small_cluster_matrix(base_seed: u64, intervals: u64) -> Vec<MatrixCell> {
    run_matrix(base_seed, &SMALL_CLUSTER_SIZES, intervals)
}

/// Runs the full §5 matrix over the given sizes.
pub fn run_matrix(base_seed: u64, sizes: &[usize], intervals: u64) -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(sizes.len() * 2);
    for &size in sizes {
        for load in LoadLevel::ALL {
            cells.push(run_cell(base_seed, size, load, intervals));
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Figure 2 — regime distribution before/after balancing
// ---------------------------------------------------------------------------

/// One panel of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Panel {
    /// Cluster size.
    pub size: usize,
    /// Load level.
    pub load: LoadLevel,
    /// Regime census before balancing.
    pub initial: RegimeCensus,
    /// Regime census of awake servers after the run.
    pub final_: RegimeCensus,
    /// Servers asleep at the end.
    pub sleeping: u64,
}

/// Extracts the Figure 2 panels from matrix cells.
pub fn fig2_panels(cells: &[MatrixCell]) -> Vec<Fig2Panel> {
    cells
        .iter()
        .map(|c| Fig2Panel {
            size: c.size,
            load: c.load,
            initial: c.report.initial_census,
            final_: c.report.final_census,
            sleeping: c.size as u64 - c.report.final_census.total(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 3 — decision-ratio time series
// ---------------------------------------------------------------------------

/// One panel of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Panel {
    /// Cluster size.
    pub size: usize,
    /// Load level.
    pub load: LoadLevel,
    /// Per-interval in-cluster/local ratio.
    pub series: TimeSeries,
}

/// Extracts the Figure 3 panels from matrix cells.
pub fn fig3_panels(cells: &[MatrixCell]) -> Vec<Fig3Panel> {
    cells
        .iter()
        .map(|c| Fig3Panel {
            size: c.size,
            load: c.load,
            series: c.report.ratio_series.clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2 — summary statistics
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Plot label (a)…(f).
    pub plot: String,
    /// Cluster size.
    pub size: usize,
    /// Average load percentage (30/70).
    pub load_pct: u32,
    /// Average number of servers in a sleep state over the run.
    pub avg_sleeping: f64,
    /// Mean in-cluster/local decision ratio.
    pub avg_ratio: f64,
    /// Sample standard deviation of the ratio.
    pub std_dev: f64,
}

/// Builds Table 2 from matrix cells.
pub fn table2_rows(cells: &[MatrixCell]) -> Vec<Table2Row> {
    cells
        .iter()
        .map(|c| {
            let ratio_stats = c.report.ratio_series.stats();
            Table2Row {
                plot: c.plot_label().to_string(),
                size: c.size,
                load_pct: c.load.percent(),
                avg_sleeping: c.report.sleeping_series.stats().mean(),
                avg_ratio: ratio_stats.mean(),
                std_dev: ratio_stats.std_dev(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 1 — historical server power
// ---------------------------------------------------------------------------

/// One row of Table 1: class label plus the seven yearly Watt figures.
pub fn table1_rows() -> Vec<(String, Vec<f64>)> {
    ServerClass::ALL
        .iter()
        .map(|&class| {
            let watts = TABLE1_YEARS
                .iter()
                .map(|&y| table1_power_w(class, y).expect("year in range"))
                .collect();
            (class.label().to_string(), watts)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Homogeneous model — eqs. 6–13
// ---------------------------------------------------------------------------

/// A sweep point of the homogeneous model: `(a_opt, b_opt, ratio,
/// n_sleep)` for the paper's example `a_avg`/`b_avg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousRow {
    /// Consolidated-server performance level.
    pub a_opt: f64,
    /// Consolidated-server energy level.
    pub b_opt: f64,
    /// `E_ref/E_opt`.
    pub ratio: f64,
    /// Sleepers out of 1000 servers.
    pub n_sleep: u64,
}

/// The paper's worked example plus a sweep of `a_opt`/`b_opt` around it.
pub fn homogeneous_rows() -> Vec<HomogeneousRow> {
    let mut rows = Vec::new();
    for &a_opt in &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        for &b_opt in &[0.65, 0.7, 0.75, 0.8, 0.9, 1.0] {
            let m = HomogeneousModel::new(1000, 0.0, 0.6, 0.6, a_opt, b_opt);
            rows.push(HomogeneousRow {
                a_opt,
                b_opt,
                ratio: m.energy_ratio(),
                n_sleep: m.n_sleep(),
            });
        }
    }
    rows
}

/// The single point the paper reports in eq. 13.
pub fn homogeneous_paper_point() -> HomogeneousRow {
    let m = HomogeneousModel::paper_example(1000);
    HomogeneousRow {
        a_opt: 0.9,
        b_opt: 0.8,
        ratio: m.energy_ratio(),
        n_sleep: m.n_sleep(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_INTERVALS: u64 = 15;

    #[test]
    fn run_cell_is_reproducible() {
        let a = run_cell(7, 60, LoadLevel::Low, TEST_INTERVALS);
        let b = run_cell(7, 60, LoadLevel::Low, TEST_INTERVALS);
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_covers_sizes_and_loads() {
        let cells = run_matrix(1, &[40, 80], TEST_INTERVALS);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].size, 40);
        assert_eq!(cells[0].load, LoadLevel::Low);
        assert_eq!(cells[3].size, 80);
        assert_eq!(cells[3].load, LoadLevel::High);
    }

    #[test]
    fn plot_labels_follow_paper_order() {
        for (size, load, label) in [
            (100, LoadLevel::Low, "(a)"),
            (100, LoadLevel::High, "(b)"),
            (1_000, LoadLevel::Low, "(c)"),
            (1_000, LoadLevel::High, "(d)"),
            (10_000, LoadLevel::Low, "(e)"),
            (10_000, LoadLevel::High, "(f)"),
        ] {
            let cell = MatrixCell {
                size,
                load,
                report: run_cell(1, 10, load, 1).report,
            };
            assert_eq!(cell.plot_label(), label);
        }
    }

    #[test]
    fn fig2_panels_preserve_server_count() {
        let cells = run_matrix(2, &[80], TEST_INTERVALS);
        for p in fig2_panels(&cells) {
            assert_eq!(p.initial.total(), 80, "everyone awake initially");
            assert_eq!(p.final_.total() + p.sleeping, 80);
        }
    }

    #[test]
    fn fig3_panels_have_full_series() {
        let cells = run_matrix(3, &[60], TEST_INTERVALS);
        for p in fig3_panels(&cells) {
            assert_eq!(p.series.len(), TEST_INTERVALS as usize);
        }
    }

    #[test]
    fn table2_matches_series_stats() {
        let cells = run_matrix(4, &[60], TEST_INTERVALS);
        let rows = table2_rows(&cells);
        assert_eq!(rows.len(), 2);
        for (row, cell) in rows.iter().zip(&cells) {
            assert_eq!(row.load_pct, cell.load.percent());
            let expect = cell.report.ratio_series.stats();
            assert!((row.avg_ratio - expect.mean()).abs() < 1e-12);
            assert!((row.std_dev - expect.std_dev()).abs() < 1e-12);
        }
    }

    #[test]
    fn high_load_rows_have_no_sleepers() {
        let cells = run_matrix(5, &[100], TEST_INTERVALS);
        let rows = table2_rows(&cells);
        let high = rows.iter().find(|r| r.load_pct == 70).unwrap();
        assert!(high.avg_sleeping < 2.0, "70 % load: {}", high.avg_sleeping);
    }

    #[test]
    fn table1_rows_match_source_data() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "Vol");
        assert_eq!(rows[0].1[0], 186.0);
        assert_eq!(rows[2].1[6], 8_163.0);
    }

    #[test]
    fn homogeneous_paper_point_is_2_25() {
        let p = homogeneous_paper_point();
        assert!((p.ratio - 2.25).abs() < 1e-12);
        assert_eq!(p.n_sleep, 666);
    }

    #[test]
    fn homogeneous_sweep_is_monotone_in_b_opt() {
        let rows = homogeneous_rows();
        // For fixed a_opt, higher b_opt lowers the ratio.
        for pair in rows.windows(2) {
            if (pair[0].a_opt - pair[1].a_opt).abs() < 1e-12 {
                assert!(pair[0].ratio > pair[1].ratio);
            }
        }
    }
}
