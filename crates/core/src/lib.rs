//! # ecolb
//!
//! Top-level library of the reproduction of *"Energy-aware Load Balancing
//! Policies for the Cloud Ecosystem"* (Ashkan Paya & Dan C. Marinescu,
//! 2014, arXiv:1401.2198).
//!
//! The paper reformulates load balancing for energy efficiency: *distribute
//! the workload evenly to the smallest set of servers operating at an
//! optimal energy level, while observing QoS constraints*. This crate ties
//! the workspace together and ships the canned experiments regenerating
//! every table and figure of the paper's evaluation:
//!
//! | Artifact | API |
//! |---|---|
//! | Table 1 (server power 2000–2006) | [`experiments::table1_rows`] |
//! | Homogeneous model, eqs. 6–13 | [`experiments::homogeneous_rows`] |
//! | Figure 2 (regime censuses) | [`experiments::fig2_panels`] |
//! | Figure 3 (decision-ratio series) | [`experiments::fig3_panels`] |
//! | Table 2 (summary statistics) | [`experiments::table2_rows`] |
//!
//! ## Quickstart
//!
//! ```
//! use ecolb::prelude::*;
//!
//! // A 60-server cluster at the paper's low-load operating point.
//! let config = ClusterConfig::paper(60, WorkloadSpec::paper_low_load());
//! let mut cluster = Cluster::new(config, 42);
//! let report = cluster.run(10);
//! assert_eq!(report.ratio_series.len(), 10);
//! // Balancing keeps almost everyone out of the undesirable regimes.
//! assert!(report.final_census.acceptable_fraction() > 0.7);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use ecolb_cluster as cluster;
pub use ecolb_energy as energy;
pub use ecolb_metrics as metrics;
pub use ecolb_policies as policies;
pub use ecolb_simcore as simcore;
pub use ecolb_workload as workload;

/// One-stop imports for experiment authors.
pub mod prelude {
    pub use crate::experiments::{
        fig2_panels, fig3_panels, homogeneous_paper_point, homogeneous_rows, run_cell, run_matrix,
        run_small_cluster_matrix, table1_rows, table2_rows, Fig2Panel, Fig3Panel, LoadLevel,
        MatrixCell, Table2Row, PAPER_CLUSTER_SIZES, PAPER_INTERVALS, SMALL_CLUSTER_SIZES,
    };
    pub use ecolb_cluster::admission::{
        AdmissionController, AdmissionPolicy, AdmissionStats, ArrivalSpec, ServiceRequest,
    };
    pub use ecolb_cluster::balance::{BalanceConfig, FillLimit};
    pub use ecolb_cluster::cluster::{Cluster, ClusterConfig, ClusterRunReport};
    pub use ecolb_cluster::federation::{Federation, FederationConfig, FederationReport};
    pub use ecolb_cluster::migration::MigrationCostModel;
    pub use ecolb_cluster::mix::ServerMix;
    pub use ecolb_cluster::server::{Server, ServerId, ServerPowerSpec};
    pub use ecolb_cluster::sim::{TimedClusterSim, TimedRunReport};
    pub use ecolb_energy::dvfs::{DvfsGoverned, DvfsModel};
    pub use ecolb_energy::homogeneous::HomogeneousModel;
    pub use ecolb_energy::power::{LinearPowerModel, PiecewisePowerModel, PowerModel};
    pub use ecolb_energy::regimes::{OperatingRegime, RegimeBoundaries, RegimeCensus};
    pub use ecolb_energy::server_class::{PowerTrend, ServerClass};
    pub use ecolb_energy::sleep::{CState, SleepModel, SleepPolicy};
    pub use ecolb_metrics::{fmt_f, Histogram, OnlineStats, P2Quantile, Report, Table, TimeSeries};
    pub use ecolb_policies::{
        evaluate, presample_rates, AlwaysOn, AutoScale, CapacityPolicy, FarmConfig,
        LinearRegression, MovingWindow, Optimal, Reactive, ReactiveExtraCapacity, Sizing,
    };
    pub use ecolb_simcore::prelude::*;
    pub use ecolb_workload::{
        ArrivalProcess, GrowthModel, Sla, TraceGenerator, TraceShape, WorkloadSpec,
    };
}
