//! The five operating regimes of a server (paper §4, Figure 1, eqs. 1–5).
//!
//! A server's state is summarised by its **normalized performance**
//! `a(t) ∈ [0, 1]` (delivered performance over peak performance — in the
//! simulation, the CPU load relative to capacity) and its **normalized
//! energy** `b(t) ∈ [0, 1]`. Four boundaries `α^{sopt,l} ≤ α^{opt,l} ≤
//! α^{opt,h} ≤ α^{sopt,h}` partition the performance axis into five
//! regions:
//!
//! | Regime | Name             | Condition                              |
//! |--------|------------------|----------------------------------------|
//! | R1     | undesirable-low  | `a < α^{sopt,l}`                       |
//! | R2     | suboptimal-low   | `α^{sopt,l} ≤ a < α^{opt,l}`           |
//! | R3     | optimal          | `α^{opt,l} ≤ a ≤ α^{opt,h}`            |
//! | R4     | suboptimal-high  | `α^{opt,h} < a ≤ α^{sopt,h}`           |
//! | R5     | undesirable-high | `a > α^{sopt,h}`                       |
//!
//! The paper's heterogeneous experiments draw the four boundaries per server
//! from uniform ranges `[0.20, 0.25]`, `[0.25, 0.45]`, `[0.55, 0.80]`, and
//! `[0.80, 0.85]` — see [`RegimeBoundaries::sample_paper`].

use ecolb_simcore::rng::Rng;
use std::fmt;

/// One of the five operating regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperatingRegime {
    /// R1 — undesirable low: nearly idle; drain and sleep, or absorb load.
    UndesirableLow,
    /// R2 — suboptimal low: lightly loaded; willing to accept load.
    SuboptimalLow,
    /// R3 — optimal: no action required.
    Optimal,
    /// R4 — suboptimal high: overloaded; wants to shed load.
    SuboptimalHigh,
    /// R5 — undesirable high: critically overloaded; must shed load now.
    UndesirableHigh,
}

impl OperatingRegime {
    /// All regimes in R1..R5 order.
    pub const ALL: [OperatingRegime; 5] = [
        OperatingRegime::UndesirableLow,
        OperatingRegime::SuboptimalLow,
        OperatingRegime::Optimal,
        OperatingRegime::SuboptimalHigh,
        OperatingRegime::UndesirableHigh,
    ];

    /// The paper's 1-based index (R1 = 1 … R5 = 5).
    pub fn index(self) -> usize {
        match self {
            OperatingRegime::UndesirableLow => 1,
            OperatingRegime::SuboptimalLow => 2,
            OperatingRegime::Optimal => 3,
            OperatingRegime::SuboptimalHigh => 4,
            OperatingRegime::UndesirableHigh => 5,
        }
    }

    /// Builds a regime from the paper's 1-based index.
    pub fn from_index(i: usize) -> Option<OperatingRegime> {
        OperatingRegime::ALL.get(i.wrapping_sub(1)).copied()
    }

    /// True for R1 and R5 — regions requiring *immediate* attention
    /// (paper §4: "suboptimal regions do not require an immediate
    /// attention, while undesirable regions do").
    pub fn is_undesirable(self) -> bool {
        matches!(
            self,
            OperatingRegime::UndesirableLow | OperatingRegime::UndesirableHigh
        )
    }

    /// True for R2 and R4.
    pub fn is_suboptimal(self) -> bool {
        matches!(
            self,
            OperatingRegime::SuboptimalLow | OperatingRegime::SuboptimalHigh
        )
    }

    /// True when the server is below the optimal band (R1 or R2) and can
    /// accept more workload.
    pub fn is_underloaded(self) -> bool {
        matches!(
            self,
            OperatingRegime::UndesirableLow | OperatingRegime::SuboptimalLow
        )
    }

    /// True when the server is above the optimal band (R4 or R5) and should
    /// shed workload.
    pub fn is_overloaded(self) -> bool {
        matches!(
            self,
            OperatingRegime::SuboptimalHigh | OperatingRegime::UndesirableHigh
        )
    }
}

impl fmt::Display for OperatingRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.index())
    }
}

/// Per-server regime boundaries on the normalized-performance axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeBoundaries {
    /// `α^{sopt,l}` — lower edge of suboptimal-low.
    pub sopt_low: f64,
    /// `α^{opt,l}` — lower edge of the optimal band.
    pub opt_low: f64,
    /// `α^{opt,h}` — upper edge of the optimal band.
    pub opt_high: f64,
    /// `α^{sopt,h}` — upper edge of suboptimal-high.
    pub sopt_high: f64,
}

impl RegimeBoundaries {
    /// Creates boundaries, validating the ordering invariant
    /// `0 ≤ sopt_low ≤ opt_low ≤ opt_high ≤ sopt_high ≤ 1`.
    pub fn new(sopt_low: f64, opt_low: f64, opt_high: f64, sopt_high: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sopt_low)
                && sopt_low <= opt_low
                && opt_low <= opt_high
                && opt_high <= sopt_high
                && sopt_high <= 1.0,
            "regime boundaries out of order: {sopt_low} {opt_low} {opt_high} {sopt_high}"
        );
        RegimeBoundaries {
            sopt_low,
            opt_low,
            opt_high,
            sopt_high,
        }
    }

    /// The paper's default heterogeneous sampling: boundaries drawn
    /// uniformly from `[0.20, 0.25]`, `[0.25, 0.45]`, `[0.55, 0.80]`, and
    /// `[0.80, 0.85]` respectively (§4).
    pub fn sample_paper(rng: &mut Rng) -> Self {
        RegimeBoundaries::new(
            rng.uniform(0.20, 0.25),
            rng.uniform(0.25, 0.45),
            rng.uniform(0.55, 0.80),
            rng.uniform(0.80, 0.85),
        )
    }

    /// A deterministic "typical" server: the midpoints of the paper's
    /// sampling ranges.
    pub fn typical() -> Self {
        RegimeBoundaries::new(0.225, 0.35, 0.675, 0.825)
    }

    /// Classifies a normalized performance level `a ∈ [0, 1]` into its
    /// regime. Values are clamped into `[0, 1]` first, so numeric noise at
    /// the edges cannot produce an unclassifiable load.
    pub fn classify(&self, a: f64) -> OperatingRegime {
        let a = a.clamp(0.0, 1.0);
        if a < self.sopt_low {
            OperatingRegime::UndesirableLow
        } else if a < self.opt_low {
            OperatingRegime::SuboptimalLow
        } else if a <= self.opt_high {
            OperatingRegime::Optimal
        } else if a <= self.sopt_high {
            OperatingRegime::SuboptimalHigh
        } else {
            OperatingRegime::UndesirableHigh
        }
    }

    /// Midpoint of the optimal band — the target load the balancing
    /// protocol steers towards.
    pub fn optimal_target(&self) -> f64 {
        0.5 * (self.opt_low + self.opt_high)
    }

    /// Free capacity (in normalized-performance units) before the load
    /// leaves the optimal band upward; zero when already above.
    pub fn headroom_to_opt_high(&self, a: f64) -> f64 {
        (self.opt_high - a).max(0.0)
    }

    /// Load that must be shed to re-enter the optimal band from above; zero
    /// when not above it.
    pub fn excess_over_opt_high(&self, a: f64) -> f64 {
        (a - self.opt_high).max(0.0)
    }

    /// The paper's `E_opt ± δ` optimal band check with
    /// `δ = (0.05 – 0.1) × E_opt` (§3): true when `a` lies within
    /// `delta_frac` of the band midpoint.
    pub fn within_delta(&self, a: f64, delta_frac: f64) -> bool {
        let target = self.optimal_target();
        (a - target).abs() <= delta_frac * target
    }
}

impl Default for RegimeBoundaries {
    fn default() -> Self {
        Self::typical()
    }
}

/// Occupancy counts per regime — the data series of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegimeCensus {
    counts: [u64; 5],
}

impl RegimeCensus {
    /// An empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one server in `regime`.
    pub fn record(&mut self, regime: OperatingRegime) {
        self.counts[regime.index() - 1] += 1;
    }

    /// Count in a given regime.
    pub fn count(&self, regime: OperatingRegime) -> u64 {
        self.counts[regime.index() - 1]
    }

    /// Counts in R1..R5 order.
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Total servers counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of servers in the undesirable regimes (R1 + R5); `0.0` for
    /// an empty census.
    pub fn undesirable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.counts[0] + self.counts[4]) as f64 / total as f64
    }

    /// Fraction of servers inside the optimal or suboptimal regimes
    /// (R2 + R3 + R4).
    pub fn acceptable_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.counts[1] + self.counts[2] + self.counts[3]) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_regions() {
        let b = RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8);
        assert_eq!(b.classify(0.0), OperatingRegime::UndesirableLow);
        assert_eq!(b.classify(0.19), OperatingRegime::UndesirableLow);
        assert_eq!(b.classify(0.2), OperatingRegime::SuboptimalLow);
        assert_eq!(b.classify(0.29), OperatingRegime::SuboptimalLow);
        assert_eq!(b.classify(0.3), OperatingRegime::Optimal);
        assert_eq!(b.classify(0.5), OperatingRegime::Optimal);
        assert_eq!(b.classify(0.7), OperatingRegime::Optimal);
        assert_eq!(b.classify(0.71), OperatingRegime::SuboptimalHigh);
        assert_eq!(b.classify(0.8), OperatingRegime::SuboptimalHigh);
        assert_eq!(b.classify(0.81), OperatingRegime::UndesirableHigh);
        assert_eq!(b.classify(1.0), OperatingRegime::UndesirableHigh);
    }

    #[test]
    fn classification_clamps_out_of_range() {
        let b = RegimeBoundaries::typical();
        assert_eq!(b.classify(-0.5), OperatingRegime::UndesirableLow);
        assert_eq!(b.classify(1.5), OperatingRegime::UndesirableHigh);
    }

    #[test]
    fn paper_sampling_respects_ranges() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let b = RegimeBoundaries::sample_paper(&mut rng);
            assert!((0.20..0.25).contains(&b.sopt_low));
            assert!((0.25..0.45).contains(&b.opt_low));
            assert!((0.55..0.80).contains(&b.opt_high));
            assert!((0.80..0.85).contains(&b.sopt_high));
        }
    }

    #[test]
    fn regime_predicates() {
        use OperatingRegime::*;
        assert!(UndesirableLow.is_undesirable() && UndesirableHigh.is_undesirable());
        assert!(SuboptimalLow.is_suboptimal() && SuboptimalHigh.is_suboptimal());
        assert!(!Optimal.is_undesirable() && !Optimal.is_suboptimal());
        assert!(UndesirableLow.is_underloaded() && SuboptimalLow.is_underloaded());
        assert!(UndesirableHigh.is_overloaded() && SuboptimalHigh.is_overloaded());
        assert!(!Optimal.is_underloaded() && !Optimal.is_overloaded());
    }

    #[test]
    fn index_round_trips() {
        for r in OperatingRegime::ALL {
            assert_eq!(OperatingRegime::from_index(r.index()), Some(r));
        }
        assert_eq!(OperatingRegime::from_index(0), None);
        assert_eq!(OperatingRegime::from_index(6), None);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(OperatingRegime::Optimal.to_string(), "R3");
        assert_eq!(OperatingRegime::UndesirableHigh.to_string(), "R5");
    }

    #[test]
    fn optimal_target_is_band_midpoint() {
        let b = RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8);
        assert!((b.optimal_target() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn headroom_and_excess_are_complementary() {
        let b = RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8);
        assert!((b.headroom_to_opt_high(0.5) - 0.2).abs() < 1e-12);
        assert_eq!(b.excess_over_opt_high(0.5), 0.0);
        assert_eq!(b.headroom_to_opt_high(0.9), 0.0);
        assert!((b.excess_over_opt_high(0.9) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn within_delta_band() {
        let b = RegimeBoundaries::new(0.2, 0.4, 0.6, 0.8); // target 0.5
        assert!(b.within_delta(0.5, 0.05));
        assert!(b.within_delta(0.524, 0.05));
        assert!(!b.within_delta(0.53, 0.05));
        assert!(b.within_delta(0.53, 0.1));
    }

    #[test]
    fn census_counts_and_fractions() {
        let mut c = RegimeCensus::new();
        let b = RegimeBoundaries::new(0.2, 0.3, 0.7, 0.8);
        for a in [0.1, 0.25, 0.5, 0.5, 0.75, 0.9, 0.95] {
            c.record(b.classify(a));
        }
        assert_eq!(c.counts(), [1, 1, 2, 1, 2]);
        assert_eq!(c.total(), 7);
        assert!((c.undesirable_fraction() - 3.0 / 7.0).abs() < 1e-12);
        assert!((c.acceptable_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_census_fractions_are_zero() {
        let c = RegimeCensus::new();
        assert_eq!(c.undesirable_fraction(), 0.0);
        assert_eq!(c.acceptable_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_unordered_boundaries() {
        RegimeBoundaries::new(0.5, 0.3, 0.7, 0.8);
    }
}
