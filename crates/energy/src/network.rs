//! Interconnect power models (paper §2, "energy proportional networks").
//!
//! The paper notes that data-center channels *"commonly operate
//! plesiochronously and are always on, regardless of the load, because
//! they must still send idle packets to maintain byte and line
//! alignment"*, cites the flattened-butterfly argument of Abts et al. [2]
//! that such a topology is more energy- and cost-efficient than a folded
//! Clos, and names InfiniBand as an energy-proportional example.
//!
//! This module models three link disciplines (always-on, adaptive lanes,
//! fully proportional) and two topologies (three-level fat tree and
//! flattened butterfly), so the §2 comparison can be reproduced
//! quantitatively for a given cluster size and traffic level.

/// How a link's power responds to its utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDiscipline {
    /// Plesiochronous, always on: full power regardless of load (the §2
    /// default).
    AlwaysOn,
    /// Adaptive lane width: power scales in discrete steps (quarter
    /// granularity) with utilization — the flattened-butterfly proposal.
    AdaptiveLanes,
    /// Ideal energy proportionality (InfiniBand-style aspiration).
    Proportional,
}

/// Power model of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPower {
    /// Watts at full utilization.
    pub peak_w: f64,
    /// Floor (control/alignment) power as a fraction of peak that even
    /// adaptive schemes cannot shed.
    pub floor_fraction: f64,
    /// The discipline in force.
    pub discipline: LinkDiscipline,
}

impl LinkPower {
    /// A 10 Gbit/s short-reach link of the era.
    pub fn typical_10g(discipline: LinkDiscipline) -> Self {
        LinkPower {
            peak_w: 4.0,
            floor_fraction: 0.15,
            discipline,
        }
    }

    /// Power at utilization `u ∈ [0, 1]`.
    pub fn power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self.discipline {
            LinkDiscipline::AlwaysOn => self.peak_w,
            LinkDiscipline::AdaptiveLanes => {
                // Lane width snaps up to the next quarter.
                let lanes = (u * 4.0).ceil().max(1.0) / 4.0;
                let floor = self.peak_w * self.floor_fraction;
                floor + (self.peak_w - floor) * lanes
            }
            LinkDiscipline::Proportional => {
                let floor = self.peak_w * self.floor_fraction;
                floor + (self.peak_w - floor) * u
            }
        }
    }
}

/// Network topology families compared in [2].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Three-level folded-Clos (fat tree) built from `radix`-port
    /// switches.
    FatTree {
        /// Switch port count `k` (even).
        radix: usize,
    },
    /// Two-dimensional flattened butterfly with concentration.
    FlattenedButterfly {
        /// Switches per dimension.
        dim: usize,
        /// Hosts per switch.
        concentration: usize,
    },
}

impl Topology {
    /// Hosts the topology supports.
    pub fn hosts(&self) -> usize {
        match *self {
            Topology::FatTree { radix } => radix * radix * radix / 4,
            Topology::FlattenedButterfly { dim, concentration } => dim * dim * concentration,
        }
    }

    /// Total switch count.
    pub fn switches(&self) -> usize {
        match *self {
            Topology::FatTree { radix } => 5 * radix * radix / 4,
            Topology::FlattenedButterfly { dim, .. } => dim * dim,
        }
    }

    /// Total inter-switch links (unidirectional counted once).
    pub fn links(&self) -> usize {
        match *self {
            // k-ary fat tree: k³/4 edge↔aggregation links plus k³/4
            // aggregation↔core links.
            Topology::FatTree { radix } => radix * radix * radix / 2,
            // Every switch connects to (dim-1) switches in each of the
            // two dimensions.
            Topology::FlattenedButterfly { dim, .. } => dim * dim * (dim - 1),
        }
    }

    /// Average hop count for uniform traffic (approximate; [2]).
    pub fn avg_hops(&self) -> f64 {
        match *self {
            Topology::FatTree { .. } => 5.0, // edge-agg-core-agg-edge between pods
            Topology::FlattenedButterfly { .. } => 2.0, // one hop per dimension
        }
    }

    /// Network power for a host count and mean link utilization.
    ///
    /// Per-switch base power plus per-link power under the discipline;
    /// traffic utilization is scaled by the topology's hop count (more
    /// hops = the same offered load crosses more links).
    pub fn power_w(&self, link: LinkPower, switch_base_w: f64, utilization: f64) -> f64 {
        let effective_u = (utilization * self.avg_hops() / 5.0).clamp(0.0, 1.0);
        self.switches() as f64 * switch_base_w + self.links() as f64 * link.power_w(effective_u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_ignores_load() {
        let l = LinkPower::typical_10g(LinkDiscipline::AlwaysOn);
        assert_eq!(l.power_w(0.0), l.power_w(1.0));
        assert_eq!(l.power_w(0.5), 4.0);
    }

    #[test]
    fn proportional_scales_to_floor() {
        let l = LinkPower::typical_10g(LinkDiscipline::Proportional);
        assert!((l.power_w(0.0) - 0.6).abs() < 1e-12, "15% floor of 4 W");
        assert!((l.power_w(1.0) - 4.0).abs() < 1e-12);
        assert!(l.power_w(0.5) < l.power_w(0.9));
    }

    #[test]
    fn adaptive_lanes_step_in_quarters() {
        let l = LinkPower::typical_10g(LinkDiscipline::AdaptiveLanes);
        // Anything in (0, 0.25] uses one lane-quarter.
        assert_eq!(l.power_w(0.05), l.power_w(0.25));
        assert!(l.power_w(0.26) > l.power_w(0.25));
        assert_eq!(l.power_w(1.0), 4.0);
        // Always at least one quarter (alignment traffic).
        assert!(l.power_w(0.0) > 0.0);
    }

    #[test]
    fn discipline_ordering_at_low_load() {
        let u = 0.1;
        let on = LinkPower::typical_10g(LinkDiscipline::AlwaysOn).power_w(u);
        let lanes = LinkPower::typical_10g(LinkDiscipline::AdaptiveLanes).power_w(u);
        let prop = LinkPower::typical_10g(LinkDiscipline::Proportional).power_w(u);
        assert!(prop < lanes && lanes < on, "{prop} < {lanes} < {on}");
    }

    #[test]
    fn fat_tree_dimensions() {
        let t = Topology::FatTree { radix: 8 };
        assert_eq!(t.hosts(), 128);
        assert_eq!(t.switches(), 80);
        assert!(t.links() > 0);
    }

    #[test]
    fn butterfly_dimensions() {
        let t = Topology::FlattenedButterfly {
            dim: 4,
            concentration: 8,
        };
        assert_eq!(t.hosts(), 128);
        assert_eq!(t.switches(), 16);
        assert_eq!(t.links(), 48);
    }

    #[test]
    fn butterfly_beats_fat_tree_on_power_at_equal_hosts() {
        // The [2] claim: fewer switches and shorter paths make the
        // flattened butterfly cheaper for the same host count.
        let ft = Topology::FatTree { radix: 8 };
        let fb = Topology::FlattenedButterfly {
            dim: 4,
            concentration: 8,
        };
        assert_eq!(ft.hosts(), fb.hosts());
        let link = LinkPower::typical_10g(LinkDiscipline::AlwaysOn);
        assert!(
            fb.power_w(link, 30.0, 0.3) < ft.power_w(link, 30.0, 0.3),
            "butterfly {} vs fat tree {}",
            fb.power_w(link, 30.0, 0.3),
            ft.power_w(link, 30.0, 0.3)
        );
    }

    #[test]
    fn proportional_links_help_most_at_low_load() {
        let fb = Topology::FlattenedButterfly {
            dim: 4,
            concentration: 8,
        };
        let on = LinkPower::typical_10g(LinkDiscipline::AlwaysOn);
        let prop = LinkPower::typical_10g(LinkDiscipline::Proportional);
        let saving_low = fb.power_w(on, 30.0, 0.1) - fb.power_w(prop, 30.0, 0.1);
        let saving_high = fb.power_w(on, 30.0, 0.9) - fb.power_w(prop, 30.0, 0.9);
        assert!(saving_low > saving_high);
    }
}
