//! Storage-system power management (paper §2, "Dynamic range of
//! subsystems").
//!
//! The paper describes two strategies *"to reduce energy consumption by
//! disk drives … concentrate the workload on a small number of disks and
//! allow the others to operate in a low-power mode"*:
//!
//! * **replication** — Vrbsky et al. [25]: a sliding-window replacement
//!   policy replicates popular data onto the active disks so cold disks
//!   can spin down (reported up to 31 % power reduction vs LRU/MRU/LFU);
//! * **data migration** — Hasebe et al. [11]: data lives in *virtual
//!   nodes* managed with a distributed hash table; a short-term algorithm
//!   gathers or spreads virtual nodes with the daily load so the number of
//!   active physical nodes is minimal.
//!
//! This module models both: a disk array with active/idle/standby power
//! states, a sliding-window replica manager, and a virtual-node
//! consolidator. It is a self-contained §2 substrate — the cluster
//! simulation works in normalized CPU units, but the storage model lets
//! the repository reproduce the paper's storage-side energy arguments.

use ecolb_simcore::rng::Rng;

/// Power states of one disk drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskState {
    /// Spinning and serving I/O.
    Active,
    /// Spinning, no I/O.
    Idle,
    /// Spun down.
    Standby,
}

/// Power draw of one drive (typical 3.5" enterprise HDD, matching the §2
/// 24–48 W band for 2–4 drives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskPower {
    /// Watts while actively seeking/transferring.
    pub active_w: f64,
    /// Watts while spinning idle.
    pub idle_w: f64,
    /// Watts in standby (spun down).
    pub standby_w: f64,
    /// Energy to spin back up, Joules.
    pub spinup_j: f64,
}

impl Default for DiskPower {
    fn default() -> Self {
        DiskPower {
            active_w: 11.0,
            idle_w: 8.0,
            standby_w: 1.0,
            spinup_j: 135.0,
        }
    }
}

impl DiskPower {
    /// Watts in a given state.
    pub fn watts(&self, state: DiskState) -> f64 {
        match state {
            DiskState::Active => self.active_w,
            DiskState::Idle => self.idle_w,
            DiskState::Standby => self.standby_w,
        }
    }
}

/// A window of recent block accesses used to decide what to replicate —
/// the sliding-window policy of [25].
///
/// The window is a ring: once full, each new access evicts the oldest in
/// O(1) (`VecDeque::pop_front`), not the O(window) front-shift a `Vec`
/// would pay on every record.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    window: usize,
    recent: std::collections::VecDeque<u64>,
}

impl SlidingWindow {
    /// Creates a window of the given length; panics when zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        SlidingWindow {
            window,
            recent: std::collections::VecDeque::with_capacity(window + 1),
        }
    }

    /// Records one access to `block`, evicting the oldest access once the
    /// window is full.
    pub fn record(&mut self, block: u64) {
        self.recent.push_back(block);
        if self.recent.len() > self.window {
            self.recent.pop_front();
        }
    }

    /// Blocks accessed within the window, hottest first.
    pub fn hot_blocks(&self) -> Vec<(u64, usize)> {
        let mut counts: std::collections::BTreeMap<u64, usize> = Default::default();
        for &b in &self.recent {
            *counts.entry(b).or_default() += 1;
        }
        let mut out: Vec<(u64, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// True when `block` appears in the current window.
    pub fn contains(&self, block: u64) -> bool {
        self.recent.contains(&block)
    }
}

/// A disk array under the replication strategy: hot blocks are replicated
/// onto a small active set, cold disks stand by.
#[derive(Debug, Clone)]
pub struct ReplicatedArray {
    n_disks: usize,
    blocks_per_disk: u64,
    power: DiskPower,
    window: SlidingWindow,
    /// Disks currently kept spinning.
    active_set: usize,
    /// Blocks replicated onto the active set.
    replicas: std::collections::BTreeSet<u64>,
    /// Replica capacity of the active set, blocks.
    replica_capacity: u64,
    spinups: u64,
}

impl ReplicatedArray {
    /// Creates an array of `n_disks` holding `blocks_per_disk` blocks
    /// each, reserving `replica_fraction` of the active disks for
    /// replicas.
    pub fn new(n_disks: usize, blocks_per_disk: u64, window: usize, replica_fraction: f64) -> Self {
        assert!(n_disks >= 2, "need at least two disks");
        assert!(
            (0.0..=1.0).contains(&replica_fraction),
            "replica fraction in [0,1]"
        );
        let active_set = 1;
        ReplicatedArray {
            n_disks,
            blocks_per_disk,
            power: DiskPower::default(),
            window: SlidingWindow::new(window),
            active_set,
            replicas: Default::default(),
            replica_capacity: ecolb_metrics::convert::saturating_u64(
                blocks_per_disk as f64 * replica_fraction,
            ) * active_set as u64,
            spinups: 0,
        }
    }

    /// The home disk of a block (blocks stripe across all disks).
    pub fn home_disk(&self, block: u64) -> usize {
        (block % self.n_disks as u64) as usize
    }

    /// Number of disks currently spinning.
    pub fn active_disks(&self) -> usize {
        self.active_set
    }

    /// Blocks held by each disk.
    pub fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    /// Lifetime spin-up count.
    pub fn spinups(&self) -> u64 {
        self.spinups
    }

    /// Serves one access: returns `true` when the block was served from a
    /// replica on the active set (no cold disk had to spin up).
    pub fn access(&mut self, block: u64) -> bool {
        self.window.record(block);
        if self.replicas.contains(&block) || self.home_disk(block) < self.active_set {
            self.refresh_replicas();
            return true;
        }
        // Miss: the home disk spins up, serves, and the replica set is
        // refreshed from the window.
        self.spinups += 1;
        self.refresh_replicas();
        false
    }

    fn refresh_replicas(&mut self) {
        self.replicas.clear();
        for (block, _) in self
            .window
            .hot_blocks()
            .into_iter()
            .take(self.replica_capacity as usize)
        {
            self.replicas.insert(block);
        }
    }

    /// Average power over a period with `accesses_per_s` I/O, Watts.
    /// Active-set disks are active; the rest are in standby except for the
    /// transient spin-ups (amortised via the spin-up energy).
    pub fn average_power_w(&self, accesses_per_s: f64, miss_fraction: f64) -> f64 {
        let active = self.active_set as f64 * self.power.active_w;
        let standby = (self.n_disks - self.active_set) as f64 * self.power.standby_w;
        // Each miss costs a spin-up (amortised as energy per access).
        let spinup = accesses_per_s * miss_fraction.clamp(0.0, 1.0) * self.power.spinup_j / 60.0;
        active + standby + spinup
    }

    /// Power of the naive always-spinning array, Watts.
    pub fn always_on_power_w(&self) -> f64 {
        self.n_disks as f64 * self.power.idle_w
    }
}

/// A virtual node in the DHT-based migration scheme of [11].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualNode {
    /// DHT identifier.
    pub id: u64,
    /// Load (I/O demand) of this virtual node, arbitrary units.
    pub load: f64,
}

/// Physical storage nodes hosting virtual nodes; the short-term algorithm
/// of [11] gathers virtual nodes onto few physical nodes when the load is
/// low and spreads them when it is high.
#[derive(Debug, Clone)]
pub struct VirtualNodeStore {
    /// Virtual-node assignment: `assignment[v]` = physical node index.
    assignment: Vec<usize>,
    vnodes: Vec<VirtualNode>,
    n_physical: usize,
    /// Load capacity of one physical node.
    capacity: f64,
    migrations: u64,
}

impl VirtualNodeStore {
    /// Creates a store of `n_physical` nodes with the given per-node
    /// capacity, placing `vnodes` round-robin.
    pub fn new(n_physical: usize, capacity: f64, vnodes: Vec<VirtualNode>) -> Self {
        assert!(n_physical > 0 && capacity > 0.0);
        let assignment = (0..vnodes.len()).map(|i| i % n_physical).collect();
        VirtualNodeStore {
            assignment,
            vnodes,
            n_physical,
            capacity,
            migrations: 0,
        }
    }

    /// Generates a store with `n_vnodes` random-load virtual nodes.
    pub fn random(n_physical: usize, capacity: f64, n_vnodes: usize, rng: &mut Rng) -> Self {
        let vnodes = (0..n_vnodes)
            .map(|i| VirtualNode {
                id: i as u64,
                load: rng.uniform(0.05, 0.3),
            })
            .collect();
        Self::new(n_physical, capacity, vnodes)
    }

    /// Load of each physical node.
    pub fn physical_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_physical];
        for (v, &p) in self.assignment.iter().enumerate() {
            loads[p] += self.vnodes[v].load;
        }
        loads
    }

    /// Physical nodes with at least one virtual node.
    pub fn active_nodes(&self) -> usize {
        let loads = self.physical_loads();
        loads.iter().filter(|&&l| l > 0.0).count()
    }

    /// Virtual-node migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The short-term optimisation: first-fit-decreasing consolidation of
    /// virtual nodes onto the fewest physical nodes that respect the
    /// capacity. Returns the number of migrations performed.
    pub fn consolidate(&mut self) -> u64 {
        let mut order: Vec<usize> = (0..self.vnodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.vnodes[b]
                .load
                .total_cmp(&self.vnodes[a].load)
                .then(a.cmp(&b))
        });
        let mut bins: Vec<f64> = vec![0.0; self.n_physical];
        let mut new_assignment = self.assignment.clone();
        for v in order {
            let load = self.vnodes[v].load;
            // First fit; when nothing fits (overcommitted store) the
            // least-loaded node absorbs the overflow so no single node is
            // buried.
            let target = (0..self.n_physical)
                .find(|&p| bins[p] + load <= self.capacity + 1e-9)
                .unwrap_or_else(|| {
                    (0..self.n_physical)
                        .min_by(|&a, &b| bins[a].total_cmp(&bins[b]))
                        .expect("ReplicatedStore construction guarantees n_physical > 0")
                });
            bins[target] += load;
            new_assignment[v] = target;
        }
        let moved = new_assignment
            .iter()
            .zip(&self.assignment)
            .filter(|(a, b)| a != b)
            .count() as u64;
        self.assignment = new_assignment;
        self.migrations += moved;
        moved
    }

    /// Storage power with the given per-node active/standby wattage:
    /// active nodes spin, empty nodes stand by.
    pub fn power_w(&self, active_w: f64, standby_w: f64) -> f64 {
        let active = self.active_nodes();
        active as f64 * active_w + (self.n_physical - active) as f64 * standby_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_power_ordering() {
        let p = DiskPower::default();
        assert!(p.watts(DiskState::Active) > p.watts(DiskState::Idle));
        assert!(p.watts(DiskState::Idle) > p.watts(DiskState::Standby));
    }

    #[test]
    fn sliding_window_tracks_hot_blocks() {
        let mut w = SlidingWindow::new(6);
        for b in [1, 2, 1, 3, 1, 2] {
            w.record(b);
        }
        let hot = w.hot_blocks();
        assert_eq!(hot[0], (1, 3));
        assert_eq!(hot[1], (2, 2));
        assert!(w.contains(3));
        // Window slides: old entries expire.
        for b in [9, 9, 9, 9, 9, 9] {
            w.record(b);
        }
        assert!(!w.contains(1));
        assert_eq!(w.hot_blocks()[0], (9, 6));
    }

    #[test]
    fn sliding_window_evicts_oldest_first_exactly() {
        // Pins the ring-buffer semantics: the window holds the *last* N
        // records in arrival order, evicting exactly one — the oldest —
        // per record once full.
        let mut w = SlidingWindow::new(3);
        w.record(10);
        w.record(20);
        w.record(30);
        assert!(w.contains(10) && w.contains(20) && w.contains(30));
        w.record(40); // evicts 10, keeps {20, 30, 40}
        assert!(!w.contains(10), "oldest record evicted first");
        assert!(w.contains(20) && w.contains(30) && w.contains(40));
        w.record(50); // evicts 20
        assert!(!w.contains(20));
        assert!(w.contains(30));
        // Counts reflect only in-window occurrences, ties ordered by block.
        w.record(30); // evicts 30 (the older copy), window {40, 50, 30}
        assert_eq!(w.hot_blocks(), vec![(30, 1), (40, 1), (50, 1)]);
    }

    #[test]
    fn skewed_access_hits_replicas() {
        let mut array = ReplicatedArray::new(8, 1000, 64, 0.2);
        let mut rng = Rng::new(1);
        let zipf = ecolb_simcore::dist::Zipf::new(50, 1.3);
        // Warm the window.
        for _ in 0..200 {
            array.access(zipf.sample_rank(&mut rng) as u64);
        }
        let mut hits = 0;
        let n = 1000;
        for _ in 0..n {
            if array.access(zipf.sample_rank(&mut rng) as u64) {
                hits += 1;
            }
        }
        assert!(
            hits > n / 2,
            "popular blocks served from replicas: {hits}/{n}"
        );
    }

    #[test]
    fn replication_saves_power_versus_always_on() {
        let array = ReplicatedArray::new(8, 1000, 64, 0.2);
        // Even with 20 % misses the concentrated array beats 8 idle disks.
        let managed = array.average_power_w(50.0, 0.2);
        let naive = array.always_on_power_w();
        assert!(managed < naive, "managed {managed} vs always-on {naive}");
        // The paper's cited result: up to ~31 % reduction; we should be in
        // that territory or better with one active disk.
        assert!(
            managed < naive * 0.69,
            "savings at least 31%: {managed} vs {naive}"
        );
    }

    #[test]
    fn uniform_access_misses_often() {
        let mut array = ReplicatedArray::new(8, 1000, 64, 0.05);
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            array.access(rng.uniform_u64(10_000));
        }
        let before = array.spinups();
        for _ in 0..100 {
            array.access(rng.uniform_u64(10_000));
        }
        assert!(
            array.spinups() > before,
            "uniform traffic defeats replication"
        );
    }

    #[test]
    fn consolidation_reduces_active_nodes() {
        let mut rng = Rng::new(3);
        let mut store = VirtualNodeStore::random(10, 1.0, 20, &mut rng);
        let spread = store.active_nodes();
        let moved = store.consolidate();
        let packed = store.active_nodes();
        assert!(moved > 0);
        assert!(packed < spread, "consolidation: {spread} -> {packed}");
        // Capacity respected.
        for load in store.physical_loads() {
            assert!(load <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn consolidation_is_idempotent() {
        let mut rng = Rng::new(4);
        let mut store = VirtualNodeStore::random(10, 1.0, 20, &mut rng);
        store.consolidate();
        let again = store.consolidate();
        assert_eq!(again, 0, "a consolidated layout does not move");
    }

    #[test]
    fn consolidation_saves_storage_power() {
        let mut rng = Rng::new(5);
        let mut store = VirtualNodeStore::random(12, 1.0, 18, &mut rng);
        let before = store.power_w(8.0, 1.0);
        store.consolidate();
        let after = store.power_w(8.0, 1.0);
        assert!(after < before, "power {before} -> {after}");
    }

    #[test]
    fn load_is_conserved_by_consolidation() {
        let mut rng = Rng::new(6);
        let mut store = VirtualNodeStore::random(10, 1.0, 25, &mut rng);
        let total_before: f64 = store.physical_loads().iter().sum();
        store.consolidate();
        let total_after: f64 = store.physical_loads().iter().sum();
        assert!((total_before - total_after).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two disks")]
    fn array_needs_disks() {
        ReplicatedArray::new(1, 100, 10, 0.1);
    }
}
