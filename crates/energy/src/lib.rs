//! # ecolb-energy
//!
//! Energy and power modelling for the `ecolb` suite — everything §2–§4 of
//! *"Energy-aware Load Balancing Policies for the Cloud Ecosystem"*
//! (Paya & Marinescu, 2014) describes about individual servers:
//!
//! * [`power`] — utilization→Watts models (linear, SPECpower-style
//!   piecewise, per-subsystem composite with the §2 dynamic ranges);
//! * [`regimes`] — the five operating regimes R1–R5 of Figure 1 and their
//!   per-server boundaries;
//! * [`sleep`] — ACPI C/D/S states, transition costs, and the paper's
//!   60 %-cluster-load C3/C6 selection rule;
//! * [`accounting`] — Joule integration over simulated time;
//! * [`server_class`] — Table 1 (Koomey) historical power data and trends;
//! * [`homogeneous`] — the analytic consolidation model, eqs. 6–13;
//! * [`proportionality`] — energy-proportionality metrics;
//! * [`dvfs`] — voltage/frequency scaling with diminishing returns [14];
//! * [`storage`] — replication [25] and virtual-node consolidation [11];
//! * [`network`] — link disciplines and topology power [2].
//!
//! ```
//! use ecolb_energy::{HomogeneousModel, LinearPowerModel, PowerModel, RegimeBoundaries};
//!
//! // The paper's eq. 13: consolidation cuts energy 2.25x.
//! let model = HomogeneousModel::paper_example(1000);
//! assert!((model.energy_ratio() - 2.25).abs() < 1e-12);
//!
//! // A typical server burns half its peak power doing nothing.
//! let server = LinearPowerModel::typical_volume_server();
//! assert_eq!(server.idle_power_w(), 100.0);
//!
//! // Regime classification drives the balancing protocol.
//! let bounds = RegimeBoundaries::typical();
//! assert_eq!(bounds.classify(0.5).to_string(), "R3");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod dvfs;
pub mod homogeneous;
pub mod network;
pub mod power;
pub mod proportionality;
pub mod regimes;
pub mod server_class;
pub mod sleep;
pub mod storage;

pub use accounting::{EnergyBreakdown, EnergyMeter};
pub use dvfs::{DvfsGoverned, DvfsModel};
pub use homogeneous::HomogeneousModel;
pub use network::{LinkDiscipline, LinkPower, Topology};
pub use power::{LinearPowerModel, PiecewisePowerModel, PowerModel, SubsystemPowerModel};
pub use regimes::{OperatingRegime, RegimeBoundaries, RegimeCensus};
pub use server_class::{PowerTrend, ServerClass};
pub use sleep::{CState, DState, SState, SleepModel, SleepPolicy};
pub use storage::{DiskPower, DiskState, ReplicatedArray, SlidingWindow, VirtualNodeStore};
