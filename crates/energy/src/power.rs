//! Server power models.
//!
//! The paper's central physical observation (§1–2) is that servers are not
//! energy proportional: *"an idle system consumes a rather significant
//! fraction, often as much as 50 %, of the energy used to deliver peak
//! performance."* This module provides three power models:
//!
//! * [`LinearPowerModel`] — the classic idle + (peak − idle)·u line;
//! * [`PiecewisePowerModel`] — SPECpower-style measured utilization points
//!   with linear interpolation (captures the sub-linear knee real servers
//!   show);
//! * [`SubsystemPowerModel`] — a composite of CPU, DRAM, disk, and NIC
//!   contributions with the per-subsystem dynamic ranges quoted in §2
//!   (CPU > 70 %, DRAM < 50 %, disk 25 %, switches 15 %).
//!
//! All models implement [`PowerModel`], mapping utilization `u ∈ [0, 1]` to
//! instantaneous Watts, with helpers to convert to normalized energy
//! `b(u) = P(u)/P(1)` — the x-axis of the paper's Figure 1.

/// Maps utilization to instantaneous power draw.
pub trait PowerModel {
    /// Instantaneous power in Watts at utilization `u ∈ [0, 1]` (clamped).
    fn power_w(&self, u: f64) -> f64;

    /// Peak power `P(1)` in Watts.
    fn peak_power_w(&self) -> f64 {
        self.power_w(1.0)
    }

    /// Idle power `P(0)` in Watts.
    fn idle_power_w(&self) -> f64 {
        self.power_w(0.0)
    }

    /// Normalized energy consumption `b(u) = P(u)/P(1)` — the paper's
    /// normalized-energy coordinate.
    fn normalized_energy(&self, u: f64) -> f64 {
        self.power_w(u) / self.peak_power_w()
    }

    /// Dynamic range: the fraction of peak power the model can shed,
    /// `1 − P(0)/P(1)` (§2 "Dynamic range of subsystems").
    fn dynamic_range(&self) -> f64 {
        1.0 - self.idle_power_w() / self.peak_power_w()
    }

    /// Performance per Watt at utilization `u` (operating-efficiency metric
    /// of §2), in normalized-performance units per Watt. Zero at `u = 0`.
    fn perf_per_watt(&self, u: f64) -> f64 {
        let p = self.power_w(u);
        if p <= 0.0 {
            0.0
        } else {
            u.clamp(0.0, 1.0) / p
        }
    }

    /// The utilization maximising performance per Watt, found by a fine
    /// grid scan — this is the "optimal energy level" the paper centres its
    /// regimes on.
    fn optimal_utilization(&self) -> f64 {
        let mut best_u = 0.0;
        let mut best = f64::NEG_INFINITY;
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            let ppw = self.perf_per_watt(u);
            if ppw > best {
                best = ppw;
                best_u = u;
            }
        }
        best_u
    }
}

/// Idle + proportional line: `P(u) = idle + (peak − idle)·u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPowerModel {
    /// Power at zero utilization.
    pub idle_w: f64,
    /// Power at full utilization.
    pub peak_w: f64,
}

impl LinearPowerModel {
    /// Creates the model; panics unless `0 ≤ idle ≤ peak` and `peak > 0`.
    pub fn new(idle_w: f64, peak_w: f64) -> Self {
        assert!(peak_w > 0.0, "peak power must be positive, got {peak_w}");
        assert!(
            (0.0..=peak_w).contains(&idle_w),
            "idle power {idle_w} must be within [0, {peak_w}]"
        );
        LinearPowerModel { idle_w, peak_w }
    }

    /// The paper's canonical non-proportional server: idle draw is 50 % of
    /// a 200 W peak (§2's "more than half the power they use at full
    /// load" observation, and the 45–200 W CPU band).
    pub fn typical_volume_server() -> Self {
        LinearPowerModel::new(100.0, 200.0)
    }

    /// An ideal energy-proportional server of the same peak: zero idle
    /// power (§2, "an ideal energy-proportional system is always operating
    /// at 100 % efficiency").
    pub fn ideal_proportional(peak_w: f64) -> Self {
        LinearPowerModel::new(0.0, peak_w)
    }
}

impl PowerModel for LinearPowerModel {
    #[inline]
    fn power_w(&self, u: f64) -> f64 {
        self.idle_w + (self.peak_w - self.idle_w) * u.clamp(0.0, 1.0)
    }
}

/// Piecewise-linear interpolation over measured `(utilization, watts)`
/// points, SPECpower_ssj2008-style (11 load levels).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewisePowerModel {
    /// Strictly increasing utilization knots starting at 0.0 and ending at
    /// 1.0.
    knots: Vec<(f64, f64)>,
}

impl PiecewisePowerModel {
    /// Creates the model from knots; panics unless the knots start at
    /// `u = 0`, end at `u = 1`, and are strictly increasing in `u` with
    /// positive power everywhere.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert_eq!(knots[0].0, 0.0, "first knot must be at u = 0");
        assert_eq!(knots[knots.len() - 1].0, 1.0, "last knot must be at u = 1");
        for w in knots.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "knot utilizations must be strictly increasing"
            );
        }
        assert!(
            knots.iter().all(|&(_, p)| p > 0.0),
            "power must be positive at every knot"
        );
        PiecewisePowerModel { knots }
    }

    /// A representative measured curve with the sub-linear knee typical of
    /// SPECpower submissions of the era: steep growth at low load, flatter
    /// near peak. Idle is 48 % of peak.
    pub fn typical_specpower() -> Self {
        PiecewisePowerModel::new(vec![
            (0.0, 96.0),
            (0.1, 120.0),
            (0.2, 135.0),
            (0.3, 147.0),
            (0.4, 158.0),
            (0.5, 167.0),
            (0.6, 175.0),
            (0.7, 182.0),
            (0.8, 189.0),
            (0.9, 195.0),
            (1.0, 200.0),
        ])
    }
}

impl PowerModel for PiecewisePowerModel {
    fn power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        // Binary search for the containing segment.
        let idx = match self.knots.binary_search_by(|&(ku, _)| ku.total_cmp(&u)) {
            Ok(i) => return self.knots[i].1,
            Err(i) => i,
        };
        let (u0, p0) = self.knots[idx - 1];
        let (u1, p1) = self.knots[idx];
        p0 + (p1 - p0) * (u - u0) / (u1 - u0)
    }
}

/// Relative weight and dynamic range of one server subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subsystem {
    /// Peak power of this subsystem, Watts.
    pub peak_w: f64,
    /// Fraction of peak this subsystem can shed when idle (its dynamic
    /// range, §2).
    pub dynamic_range: f64,
}

impl Subsystem {
    fn power_w(&self, u: f64) -> f64 {
        let floor = self.peak_w * (1.0 - self.dynamic_range);
        floor + (self.peak_w - floor) * u.clamp(0.0, 1.0)
    }
}

/// Composite CPU + DRAM + disk + NIC model with the §2 dynamic ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemPowerModel {
    /// Processor package(s).
    pub cpu: Subsystem,
    /// Memory DIMMs.
    pub dram: Subsystem,
    /// Hard disk drives.
    pub disk: Subsystem,
    /// Network interface / switch share.
    pub network: Subsystem,
}

impl SubsystemPowerModel {
    /// The §2 reference configuration: a dual-socket volume server with
    /// 32 DIMMs and 2–4 HDDs. CPU dynamic range > 70 %, DRAM < 50 %, disks
    /// 25 %, networking 15 %.
    pub fn typical_server() -> Self {
        SubsystemPowerModel {
            // Two sockets × ~60 W mid-range parts.
            cpu: Subsystem {
                peak_w: 120.0,
                dynamic_range: 0.70,
            },
            // 32 DIMMs at a blended ~1.6 W average under load.
            dram: Subsystem {
                peak_w: 50.0,
                dynamic_range: 0.45,
            },
            // 3 HDDs ≈ 36 W (24–48 W band in §2).
            disk: Subsystem {
                peak_w: 36.0,
                dynamic_range: 0.25,
            },
            network: Subsystem {
                peak_w: 14.0,
                dynamic_range: 0.15,
            },
        }
    }
}

impl PowerModel for SubsystemPowerModel {
    fn power_w(&self, u: f64) -> f64 {
        self.cpu.power_w(u) + self.dram.power_w(u) + self.disk.power_w(u) + self.network.power_w(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints() {
        let m = LinearPowerModel::new(100.0, 200.0);
        assert_eq!(m.power_w(0.0), 100.0);
        assert_eq!(m.power_w(1.0), 200.0);
        assert_eq!(m.power_w(0.5), 150.0);
        assert_eq!(m.power_w(-1.0), 100.0, "clamps below");
        assert_eq!(m.power_w(2.0), 200.0, "clamps above");
    }

    #[test]
    fn typical_server_idles_at_half_peak() {
        let m = LinearPowerModel::typical_volume_server();
        assert!((m.idle_power_w() / m.peak_power_w() - 0.5).abs() < 1e-12);
        assert!((m.dynamic_range() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_proportional_has_full_dynamic_range() {
        let m = LinearPowerModel::ideal_proportional(200.0);
        assert_eq!(m.idle_power_w(), 0.0);
        assert_eq!(m.dynamic_range(), 1.0);
        // Efficiency is constant (always "100 % efficient").
        let e1 = m.perf_per_watt(0.3);
        let e2 = m.perf_per_watt(0.9);
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn normalized_energy_is_one_at_peak() {
        let m = LinearPowerModel::typical_volume_server();
        assert!((m.normalized_energy(1.0) - 1.0).abs() < 1e-12);
        assert!((m.normalized_energy(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_proportional_server_is_most_efficient_at_high_load() {
        let m = LinearPowerModel::typical_volume_server();
        let u_opt = m.optimal_utilization();
        assert!(
            u_opt > 0.95,
            "for a linear model efficiency peaks at u = 1, got {u_opt}"
        );
    }

    #[test]
    fn perf_per_watt_increases_with_load_for_linear() {
        let m = LinearPowerModel::typical_volume_server();
        assert!(m.perf_per_watt(0.9) > m.perf_per_watt(0.3));
        assert!(m.perf_per_watt(0.3) > m.perf_per_watt(0.05));
        assert_eq!(m.perf_per_watt(0.0), 0.0);
    }

    #[test]
    fn piecewise_interpolates_and_hits_knots() {
        let m = PiecewisePowerModel::typical_specpower();
        assert_eq!(m.power_w(0.0), 96.0);
        assert_eq!(m.power_w(1.0), 200.0);
        assert_eq!(m.power_w(0.5), 167.0);
        // Between 0.5 (167) and 0.6 (175): midpoint 171.
        assert!((m.power_w(0.55) - 171.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_is_monotone_for_monotone_knots() {
        let m = PiecewisePowerModel::typical_specpower();
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = m.power_w(i as f64 / 100.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn specpower_curve_has_interior_efficiency_knee() {
        // The sub-linear measured curve pushes the best perf/W below 100 %
        // utilization or keeps it at 1.0; either way it must beat u = 0.3
        // (the observed data-center operating point, §3).
        let m = PiecewisePowerModel::typical_specpower();
        let u_opt = m.optimal_utilization();
        assert!(m.perf_per_watt(u_opt) > m.perf_per_watt(0.3));
        assert!(u_opt >= 0.7, "knee at {u_opt}");
    }

    #[test]
    fn subsystem_model_sums_components() {
        let m = SubsystemPowerModel::typical_server();
        let total_peak = 120.0 + 50.0 + 36.0 + 14.0;
        assert!((m.peak_power_w() - total_peak).abs() < 1e-9);
        // CPU floor 36 W + DRAM 27.5 + disk 27 + net 11.9 = 102.4 idle.
        assert!((m.idle_power_w() - 102.4).abs() < 0.1);
        // Composite dynamic range is well below the CPU's own 70 %.
        assert!(m.dynamic_range() < 0.70);
        assert!(m.dynamic_range() > 0.40);
    }

    #[test]
    fn subsystem_dynamic_ranges_match_section2() {
        let m = SubsystemPowerModel::typical_server();
        assert!(m.cpu.dynamic_range >= 0.70);
        assert!(m.dram.dynamic_range < 0.50);
        assert!((m.disk.dynamic_range - 0.25).abs() < 1e-12);
        assert!((m.network.dynamic_range - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle power")]
    fn linear_rejects_idle_above_peak() {
        LinearPowerModel::new(300.0, 200.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unsorted_knots() {
        PiecewisePowerModel::new(vec![(0.0, 100.0), (0.5, 120.0), (0.5, 130.0), (1.0, 200.0)]);
    }

    #[test]
    #[should_panic(expected = "u = 0")]
    fn piecewise_rejects_missing_origin() {
        PiecewisePowerModel::new(vec![(0.1, 100.0), (1.0, 200.0)]);
    }
}
