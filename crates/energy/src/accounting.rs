//! Energy accounting: integrating power over simulated time.
//!
//! [`EnergyMeter`] is attached to each simulated server. It is fed
//! piecewise-constant operating segments — "from the last update until now
//! the server ran at utilization `u` in C-state `s`" — and accumulates
//! Joules, broken down into active, idle-overhead, sleep, and transition
//! energy. The paper's two quality metrics for a policy are *energy saved*
//! and *violations* (§3); this meter supplies the first.

use crate::power::PowerModel;
use crate::sleep::{CState, SleepModel};
use ecolb_simcore::time::{SimDuration, SimTime};

/// Cumulative energy usage of one server, in Joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy attributable to useful work: the proportional part
    /// `(P(u) − P(0))·t` while awake.
    pub active_j: f64,
    /// Idle-floor energy burned while awake: `P(0)·t`.
    pub idle_overhead_j: f64,
    /// Residual energy while in a sleep state.
    pub sleep_j: f64,
    /// Energy spent entering/leaving sleep states.
    pub transition_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in Joules.
    pub fn total_j(&self) -> f64 {
        self.active_j + self.idle_overhead_j + self.sleep_j + self.transition_j
    }

    /// Total energy in Watt-hours.
    pub fn total_wh(&self) -> f64 {
        self.total_j() / 3600.0
    }

    /// Merges another breakdown (for cluster-level totals).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.active_j += other.active_j;
        self.idle_overhead_j += other.idle_overhead_j;
        self.sleep_j += other.sleep_j;
        self.transition_j += other.transition_j;
    }
}

/// Integrates a server's power draw over simulated time.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    last_update: SimTime,
    breakdown: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a meter starting at `t0`.
    pub fn new(t0: SimTime) -> Self {
        EnergyMeter {
            last_update: t0,
            breakdown: EnergyBreakdown::default(),
        }
    }

    /// Accounts the segment from the last update to `now`, during which the
    /// server ran at constant `utilization` in `cstate`, then advances the
    /// internal clock. `now` earlier than the last update is a logic error
    /// and panics.
    pub fn advance<M: PowerModel>(
        &mut self,
        now: SimTime,
        model: &M,
        cstate: CState,
        utilization: f64,
    ) {
        assert!(
            now >= self.last_update,
            "energy meter driven backwards in time"
        );
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 {
            return;
        }
        if cstate.is_sleeping() {
            let residual_w = model.idle_power_w() * cstate.residual_power_fraction();
            self.breakdown.sleep_j += residual_w * dt;
        } else {
            let idle_w = model.idle_power_w();
            let total_w = model.power_w(utilization);
            self.breakdown.idle_overhead_j += idle_w * dt;
            self.breakdown.active_j += (total_w - idle_w) * dt;
        }
    }

    /// Records the one-off cost of a sleep transition into (and eventually
    /// out of) `target`.
    pub fn record_transition(&mut self, sleep_model: &SleepModel, target: CState) {
        self.breakdown.transition_j += sleep_model.transition_energy_j(target);
    }

    /// Records setup energy while a server wakes: the paper notes that
    /// during setup "the energy consumption … is close to the maximal one"
    /// (§3), so we burn peak power for the wake latency.
    pub fn record_setup<M: PowerModel>(&mut self, model: &M, setup_time: SimDuration) {
        self.breakdown.transition_j += model.peak_power_w() * setup_time.as_secs_f64();
    }

    /// Current cumulative breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Instant of the last accounted segment boundary.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::LinearPowerModel;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn awake_segment_splits_idle_and_active() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut m = EnergyMeter::new(t(0));
        m.advance(t(10), &model, CState::C0, 0.5);
        let b = m.breakdown();
        assert!((b.idle_overhead_j - 1000.0).abs() < 1e-9); // 100 W × 10 s
        assert!((b.active_j - 500.0).abs() < 1e-9); // 50 W × 10 s
        assert_eq!(b.sleep_j, 0.0);
        assert!((b.total_j() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_segment_uses_residual_fraction() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut m = EnergyMeter::new(t(0));
        m.advance(t(100), &model, CState::C6, 0.0);
        let b = m.breakdown();
        // 100 W idle × 3 % × 100 s = 300 J.
        assert!((b.sleep_j - 300.0).abs() < 1e-9);
        assert_eq!(b.active_j, 0.0);
    }

    #[test]
    fn c3_burns_more_than_c6() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut a = EnergyMeter::new(t(0));
        let mut b = EnergyMeter::new(t(0));
        a.advance(t(50), &model, CState::C3, 0.0);
        b.advance(t(50), &model, CState::C6, 0.0);
        assert!(a.breakdown().sleep_j > b.breakdown().sleep_j);
    }

    #[test]
    fn zero_length_segment_is_free() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut m = EnergyMeter::new(t(5));
        m.advance(t(5), &model, CState::C0, 1.0);
        assert_eq!(m.breakdown().total_j(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rejects_time_travel() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut m = EnergyMeter::new(t(10));
        m.advance(t(5), &model, CState::C0, 0.0);
    }

    #[test]
    fn transition_and_setup_costs_accrue() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let sm = SleepModel::default();
        let mut m = EnergyMeter::new(t(0));
        m.record_transition(&sm, CState::C6);
        m.record_setup(&model, SimDuration::from_secs(200));
        let b = m.breakdown();
        // 20 kJ transition + 200 W × 200 s = 40 kJ setup.
        assert!((b.transition_j - 60_000.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_merge_sums_fields() {
        let mut a = EnergyBreakdown {
            active_j: 1.0,
            idle_overhead_j: 2.0,
            sleep_j: 3.0,
            transition_j: 4.0,
        };
        let b = EnergyBreakdown {
            active_j: 10.0,
            idle_overhead_j: 20.0,
            sleep_j: 30.0,
            transition_j: 40.0,
        };
        a.merge(&b);
        assert_eq!(a.total_j(), 110.0);
    }

    #[test]
    fn wh_conversion() {
        let b = EnergyBreakdown {
            active_j: 3600.0,
            ..Default::default()
        };
        assert!((b.total_wh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_segment_integration() {
        let model = LinearPowerModel::new(100.0, 200.0);
        let mut m = EnergyMeter::new(t(0));
        m.advance(t(10), &model, CState::C0, 1.0); // 200 W × 10 = 2000 J
        m.advance(t(20), &model, CState::C0, 0.0); // 100 W × 10 = 1000 J
        m.advance(t(30), &model, CState::C3, 0.0); // 25 W × 10 = 250 J
        assert!((m.breakdown().total_j() - 3250.0).abs() < 1e-9);
        assert_eq!(m.last_update(), t(30));
    }
}
