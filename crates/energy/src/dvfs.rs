//! Dynamic voltage and frequency scaling (DVFS).
//!
//! The paper cites Le Sueur & Heiser, *"Dynamic voltage and frequency
//! scaling: the laws of diminishing returns"* [14], as one of the
//! mechanisms behind modern server power management. This module provides
//! the standard CMOS model:
//!
//! ```text
//! P(f) = P_static + C · V(f)² · f        (dynamic power)
//! V(f) = V_min + (V_max − V_min) · (f − f_min)/(f_max − f_min)
//! ```
//!
//! Performance is proportional to `f`, so the *energy per operation* is
//! `P(f)/f` — minimised at an interior frequency when static power is
//! non-zero: racing to idle wastes voltage-squared dynamic power, crawling
//! wastes static power. That diminishing-returns trade-off is exactly why
//! the paper prefers *consolidation + sleep states* over frequency
//! scaling alone for lightly loaded clusters.

use crate::power::PowerModel;

/// A DVFS-capable processor model.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsModel {
    /// Static (leakage + uncore) power, Watts.
    pub static_w: f64,
    /// Effective switched capacitance coefficient: dynamic power at
    /// `f_max`/`v_max` is `c · v_max² · f_max`.
    pub c: f64,
    /// Minimum operating frequency, GHz.
    pub f_min_ghz: f64,
    /// Maximum operating frequency, GHz.
    pub f_max_ghz: f64,
    /// Core voltage at `f_min`, Volts.
    pub v_min: f64,
    /// Core voltage at `f_max`, Volts.
    pub v_max: f64,
    /// Discrete frequency steps (P-states); the model snaps requests to
    /// the nearest step.
    pub steps: usize,
}

impl DvfsModel {
    /// A representative 2010s server part: 1.2–3.0 GHz, 0.8–1.25 V,
    /// ~25 W static, ~95 W peak.
    pub fn typical_server_cpu() -> Self {
        DvfsModel {
            static_w: 25.0,
            c: 6.2, // ≈ 70 W dynamic at 3.0 GHz / 1.25 V
            f_min_ghz: 1.2,
            f_max_ghz: 3.0,
            v_min: 0.80,
            v_max: 1.25,
            steps: 10,
        }
    }

    /// Validates the model's invariants; panics on violation.
    pub fn validate(&self) {
        assert!(self.static_w >= 0.0, "static power must be non-negative");
        assert!(self.c > 0.0, "capacitance coefficient must be positive");
        assert!(
            0.0 < self.f_min_ghz && self.f_min_ghz < self.f_max_ghz,
            "frequency range invalid"
        );
        assert!(
            0.0 < self.v_min && self.v_min <= self.v_max,
            "voltage range invalid"
        );
        assert!(self.steps >= 2, "need at least two P-states");
    }

    /// The discrete P-state frequencies, ascending, GHz.
    pub fn p_states(&self) -> Vec<f64> {
        (0..self.steps)
            .map(|i| {
                self.f_min_ghz
                    + (self.f_max_ghz - self.f_min_ghz) * i as f64 / (self.steps - 1) as f64
            })
            .collect()
    }

    /// Snaps a requested frequency to the nearest P-state.
    pub fn snap(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.f_min_ghz, self.f_max_ghz);
        let span = self.f_max_ghz - self.f_min_ghz;
        let idx = ((f - self.f_min_ghz) / span * (self.steps - 1) as f64).round();
        self.f_min_ghz + span * idx / (self.steps - 1) as f64
    }

    /// Core voltage at frequency `f` (linear V-f curve).
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.f_min_ghz, self.f_max_ghz);
        self.v_min
            + (self.v_max - self.v_min) * (f - self.f_min_ghz) / (self.f_max_ghz - self.f_min_ghz)
    }

    /// Total power at frequency `f`, Watts.
    pub fn power_at_f(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.f_min_ghz, self.f_max_ghz);
        let v = self.voltage(f);
        self.static_w + self.c * v * v * f
    }

    /// Normalized performance at frequency `f` (relative to `f_max`).
    pub fn performance(&self, f_ghz: f64) -> f64 {
        f_ghz.clamp(self.f_min_ghz, self.f_max_ghz) / self.f_max_ghz
    }

    /// Energy per unit of work at frequency `f`: `P(f)/f`, Joules per
    /// GHz-second of computation.
    pub fn energy_per_op(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.f_min_ghz, self.f_max_ghz);
        self.power_at_f(f) / f
    }

    /// The P-state minimising energy per operation — the "sweet spot"
    /// before diminishing returns [14].
    pub fn most_efficient_f(&self) -> f64 {
        self.p_states()
            .into_iter()
            .min_by(|&a, &b| self.energy_per_op(a).total_cmp(&self.energy_per_op(b)))
            .expect("DvfsModel construction guarantees at least two P-states")
    }

    /// The lowest P-state meeting a normalized-performance requirement;
    /// `None` when even `f_max` is insufficient.
    pub fn lowest_f_for(&self, required_performance: f64) -> Option<f64> {
        if required_performance > 1.0 {
            return None;
        }
        self.p_states()
            .into_iter()
            .find(|&f| self.performance(f) + 1e-12 >= required_performance)
    }
}

/// Adapter: a DVFS processor governed like a utilization-tracking OS
/// governor ("conservative"): frequency scales with utilization between
/// `f_min` and `f_max`. This makes a [`DvfsModel`] usable wherever a
/// [`PowerModel`] is expected.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsGoverned {
    /// The underlying processor.
    pub model: DvfsModel,
}

impl PowerModel for DvfsGoverned {
    fn power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let f = self.model.f_min_ghz + (self.model.f_max_ghz - self.model.f_min_ghz) * u;
        self.model.power_at_f(self.model.snap(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> DvfsModel {
        let m = DvfsModel::typical_server_cpu();
        m.validate();
        m
    }

    #[test]
    fn p_states_span_the_range() {
        let m = cpu();
        let ps = m.p_states();
        assert_eq!(ps.len(), 10);
        assert!((ps[0] - 1.2).abs() < 1e-12);
        assert!((ps[9] - 3.0).abs() < 1e-12);
        for w in ps.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn snap_lands_on_a_p_state() {
        let m = cpu();
        let ps = m.p_states();
        for f in [0.5, 1.3, 2.0, 2.71, 3.5] {
            let s = m.snap(f);
            assert!(
                ps.iter().any(|&p| (p - s).abs() < 1e-9),
                "snap({f}) = {s} not a P-state"
            );
        }
    }

    #[test]
    fn power_is_monotone_in_frequency() {
        let m = cpu();
        let mut prev = 0.0;
        for f in m.p_states() {
            let p = m.power_at_f(f);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn voltage_interpolates_linearly() {
        let m = cpu();
        assert!((m.voltage(1.2) - 0.80).abs() < 1e-12);
        assert!((m.voltage(3.0) - 1.25).abs() < 1e-12);
        assert!((m.voltage(2.1) - 1.025).abs() < 1e-12);
    }

    #[test]
    fn energy_per_op_has_interior_minimum() {
        // With non-zero static power the efficiency sweet spot is neither
        // the lowest nor necessarily the highest frequency — the
        // diminishing-returns shape of [14].
        let m = cpu();
        let best = m.most_efficient_f();
        assert!(
            m.energy_per_op(best) < m.energy_per_op(m.f_min_ghz),
            "crawling wastes static power"
        );
        assert!(best > m.f_min_ghz, "sweet spot above f_min");
    }

    #[test]
    fn zero_static_power_prefers_the_lowest_frequency() {
        let m = DvfsModel {
            static_w: 0.0,
            ..cpu()
        };
        // Without leakage, V² scaling always rewards running slower.
        assert!((m.most_efficient_f() - m.f_min_ghz).abs() < 1e-9);
    }

    #[test]
    fn lowest_f_for_performance() {
        let m = cpu();
        let f = m.lowest_f_for(0.5).unwrap();
        assert!(m.performance(f) >= 0.5);
        // One step down would miss the requirement.
        let ps = m.p_states();
        let idx = ps.iter().position(|&p| (p - f).abs() < 1e-9).unwrap();
        if idx > 0 {
            assert!(m.performance(ps[idx - 1]) < 0.5);
        }
        assert_eq!(m.lowest_f_for(1.5), None);
        assert!((m.lowest_f_for(1.0).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn governed_adapter_is_a_monotone_power_model() {
        let g = DvfsGoverned { model: cpu() };
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = g.power_w(i as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
        assert!(g.idle_power_w() > 0.0, "static power shows at idle");
        assert!(
            g.dynamic_range() > 0.3,
            "DVFS gives the CPU a wide dynamic range"
        );
    }

    #[test]
    fn race_to_idle_vs_crawl_comparison() {
        // Finish the same work: racing at f_max then sleeping (3% residual)
        // versus crawling at f_min the whole time. With this part's
        // parameters racing wins once the sleep residual is low — the
        // consolidate-and-sleep thesis of the paper.
        let m = cpu();
        let work_ghz_s = 30.0; // 10 s at f_max
        let deadline_s = work_ghz_s / m.f_min_ghz; // crawl finishes exactly
        let crawl_j = m.power_at_f(m.f_min_ghz) * deadline_s;
        let race_time = work_ghz_s / m.f_max_ghz;
        let race_j =
            m.power_at_f(m.f_max_ghz) * race_time + 0.03 * m.static_w * (deadline_s - race_time);
        assert!(race_j < crawl_j, "race {race_j} vs crawl {crawl_j}");
    }

    #[test]
    #[should_panic(expected = "frequency range")]
    fn validate_rejects_bad_range() {
        DvfsModel {
            f_min_ghz: 3.0,
            f_max_ghz: 1.0,
            ..DvfsModel::typical_server_cpu()
        }
        .validate();
    }
}
