//! The analytic homogeneous cloud model (paper §4, equations 6–13).
//!
//! The paper compares two ways of running the same volume of computation on
//! `n` identical servers:
//!
//! * **Reference operation** — all `n` servers run at normalized
//!   performance levels uniformly distributed in `[a_min, a_max]`, with an
//!   average normalized energy per operation `b_avg`. Energy:
//!   `E_ref = n · b_avg` (eq. 6); operations `C_ref = n · a_avg` with
//!   `a_avg = (a_max − a_min)/2` (eq. 7 — the paper's own convention, kept
//!   verbatim; see [`HomogeneousModel::a_avg`]).
//! * **Optimal operation** — `n_sleep` servers sleep, the remaining
//!   `n − n_sleep` run at `a_opt` with per-operation energy
//!   `b_opt = b_avg + ε` (eqs. 8–9).
//!
//! Requiring equal computational volume (eq. 11) gives
//! `n/(n − n_sleep) = a_opt/a_avg`, and the energy ratio becomes
//!
//! ```text
//! E_ref / E_opt = (a_opt / a_avg) · (b_avg / b_opt)        (eq. 12)
//! ```
//!
//! At the paper's example point (`b_avg = 0.6`, `a_avg = 0.3`,
//! `b_opt = 0.8`, `a_opt = 0.9`) the ratio is 2.25 (eq. 13).

/// Parameters of the homogeneous model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousModel {
    /// Number of servers `n`.
    pub n: u64,
    /// Lower bound of the reference performance distribution.
    pub a_min: f64,
    /// Upper bound of the reference performance distribution.
    pub a_max: f64,
    /// Average normalized energy per operation in the reference scenario.
    pub b_avg: f64,
    /// Normalized performance of the consolidated servers.
    pub a_opt: f64,
    /// Normalized energy per operation of the consolidated servers
    /// (`b_avg + ε`).
    pub b_opt: f64,
}

impl HomogeneousModel {
    /// Creates a model; panics when any normalized quantity leaves `[0, 1]`
    /// or ordering constraints are violated.
    pub fn new(n: u64, a_min: f64, a_max: f64, b_avg: f64, a_opt: f64, b_opt: f64) -> Self {
        assert!(n > 0, "need at least one server");
        for (name, v) in [
            ("a_min", a_min),
            ("a_max", a_max),
            ("b_avg", b_avg),
            ("a_opt", a_opt),
            ("b_opt", b_opt),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0, 1]");
        }
        assert!(a_min <= a_max, "a_min > a_max");
        assert!(a_opt > 0.0, "a_opt must be positive");
        assert!(b_opt > 0.0, "b_opt must be positive");
        HomogeneousModel {
            n,
            a_min,
            a_max,
            b_avg,
            a_opt,
            b_opt,
        }
    }

    /// The paper's worked example (eq. 13): `b_avg = 0.6`, `a_avg = 0.3`
    /// (via `a_min = 0`, `a_max = 0.6`), `b_opt = 0.8`, `a_opt = 0.9`.
    pub fn paper_example(n: u64) -> Self {
        HomogeneousModel::new(n, 0.0, 0.6, 0.6, 0.9, 0.8)
    }

    /// `a_avg = (a_max − a_min)/2` — the paper's eq. 7 convention.
    ///
    /// Note this is the *half-width*, not the distribution mean
    /// `(a_min + a_max)/2`; the two coincide when `a_min = 0`, which holds
    /// in the paper's example. We keep the paper's formula for fidelity and
    /// expose [`HomogeneousModel::a_mean`] for the conventional mean.
    pub fn a_avg(&self) -> f64 {
        0.5 * (self.a_max - self.a_min)
    }

    /// The conventional mean of the uniform distribution,
    /// `(a_min + a_max)/2`.
    pub fn a_mean(&self) -> f64 {
        0.5 * (self.a_min + self.a_max)
    }

    /// Reference energy `E_ref = n · b_avg` (eq. 6).
    pub fn e_ref(&self) -> f64 {
        self.n as f64 * self.b_avg
    }

    /// Reference operations `C_ref = n · a_avg` (eq. 7).
    pub fn c_ref(&self) -> f64 {
        self.n as f64 * self.a_avg()
    }

    /// Servers that can sleep while preserving the computational volume
    /// (from eq. 11): `n_sleep = n · (1 − a_avg/a_opt)`, floored to an
    /// integer so the remaining servers never run above `a_opt`.
    pub fn n_sleep(&self) -> u64 {
        let exact = self.n as f64 * (1.0 - self.a_avg() / self.a_opt);
        ecolb_metrics::convert::saturating_u64(exact.max(0.0).floor())
    }

    /// Optimal-scenario energy `E_opt = (n − n_sleep) · b_opt` (eq. 8),
    /// using the *exact* (real-valued) `n_sleep` from eq. 11 so the ratio
    /// matches eq. 12 identically.
    pub fn e_opt(&self) -> f64 {
        let active = self.n as f64 * self.a_avg() / self.a_opt;
        active * self.b_opt
    }

    /// Optimal-scenario operations `C_opt` (eq. 9) with exact `n_sleep`;
    /// equals `C_ref` by construction (eq. 11).
    pub fn c_opt(&self) -> f64 {
        let active = self.n as f64 * self.a_avg() / self.a_opt;
        active * self.a_opt
    }

    /// The energy ratio `E_ref/E_opt = (a_opt/a_avg)·(b_avg/b_opt)`
    /// (eq. 12).
    pub fn energy_ratio(&self) -> f64 {
        (self.a_opt / self.a_avg()) * (self.b_avg / self.b_opt)
    }

    /// Energy saved by consolidation as a fraction of the reference energy,
    /// `1 − E_opt/E_ref`.
    pub fn savings_fraction(&self) -> f64 {
        1.0 - 1.0 / self.energy_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_ratio_is_2_25() {
        let m = HomogeneousModel::paper_example(1000);
        assert!((m.a_avg() - 0.3).abs() < 1e-12);
        assert!((m.energy_ratio() - 2.25).abs() < 1e-12, "eq. 13");
        // "the optimal operation reduces the energy consumption to less
        // than half": savings > 50 %.
        assert!(m.savings_fraction() > 0.5);
    }

    #[test]
    fn ratio_formula_matches_e_ref_over_e_opt() {
        let m = HomogeneousModel::new(500, 0.1, 0.7, 0.55, 0.85, 0.75);
        let direct = m.e_ref() / m.e_opt();
        assert!((direct - m.energy_ratio()).abs() < 1e-12);
    }

    #[test]
    fn computation_volume_is_preserved() {
        let m = HomogeneousModel::paper_example(300);
        assert!((m.c_ref() - m.c_opt()).abs() < 1e-9, "eq. 11 equal volumes");
    }

    #[test]
    fn n_sleep_matches_eq_11() {
        let m = HomogeneousModel::paper_example(900);
        // n_sleep = n (1 - a_avg/a_opt) = 900 (1 - 1/3) = 600.
        assert_eq!(m.n_sleep(), 600);
    }

    #[test]
    fn n_sleep_floors_conservatively() {
        let m = HomogeneousModel::new(10, 0.0, 0.6, 0.6, 0.9, 0.8);
        // exact = 10·(2/3) = 6.67 → 6 sleepers, never more.
        assert_eq!(m.n_sleep(), 6);
    }

    #[test]
    fn no_sleepers_when_already_at_optimal_load() {
        let m = HomogeneousModel::new(100, 0.0, 1.8_f64.min(1.0), 0.6, 0.5, 0.8);
        // a_avg = 0.5 = a_opt → nothing to consolidate.
        assert_eq!(m.n_sleep(), 0);
        assert!((m.energy_ratio() - 0.6 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn higher_b_opt_erodes_savings() {
        let lo = HomogeneousModel::new(100, 0.0, 0.6, 0.6, 0.9, 0.65);
        let hi = HomogeneousModel::new(100, 0.0, 0.6, 0.6, 0.9, 0.95);
        assert!(lo.energy_ratio() > hi.energy_ratio());
    }

    #[test]
    fn a_avg_versus_a_mean_convention() {
        let m = HomogeneousModel::new(10, 0.2, 0.8, 0.6, 0.9, 0.8);
        assert!(
            (m.a_avg() - 0.3).abs() < 1e-12,
            "paper's half-width convention"
        );
        assert!((m.a_mean() - 0.5).abs() < 1e-12, "conventional mean");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_unnormalized_parameters() {
        HomogeneousModel::new(10, 0.0, 1.5, 0.6, 0.9, 0.8);
    }

    #[test]
    #[should_panic(expected = "a_min > a_max")]
    fn rejects_inverted_a_range() {
        HomogeneousModel::new(10, 0.8, 0.2, 0.6, 0.9, 0.8);
    }
}
