//! Energy-proportionality metrics (paper §2).
//!
//! Tools to quantify how far a [`PowerModel`] is from the ideal
//! energy-proportional system — the one that "consumes no power when idle,
//! very little power under a light load and, gradually, more power as the
//! load increases".

use crate::power::PowerModel;

/// Summary of a model's proportionality characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionalityProfile {
    /// Idle power as a fraction of peak (`P(0)/P(1)`).
    pub idle_fraction: f64,
    /// Dynamic range `1 − idle_fraction`.
    pub dynamic_range: f64,
    /// Linear-deviation proportionality index in `[0, 1]`: 1 for the ideal
    /// proportional line `P(u) = u·P(1)`, lower as the curve departs from
    /// it. Computed as `1 − mean|P(u)/P(1) − u|·2` over a utilization grid
    /// (the factor 2 normalises the worst case `P ≡ P(1)`).
    pub proportionality_index: f64,
    /// Utilization at which performance per Watt is maximised.
    pub optimal_utilization: f64,
    /// Peak performance per Watt, normalized-performance units per Watt.
    pub peak_perf_per_watt: f64,
}

/// Number of grid points used by [`profile`].
const GRID: usize = 200;

/// Computes the proportionality profile of a power model.
pub fn profile<M: PowerModel>(model: &M) -> ProportionalityProfile {
    let peak = model.peak_power_w();
    let idle_fraction = model.idle_power_w() / peak;
    let mut deviation = 0.0;
    for i in 0..=GRID {
        let u = i as f64 / GRID as f64;
        deviation += (model.power_w(u) / peak - u).abs();
    }
    deviation /= (GRID + 1) as f64;
    let u_opt = model.optimal_utilization();
    ProportionalityProfile {
        idle_fraction,
        dynamic_range: 1.0 - idle_fraction,
        proportionality_index: (1.0 - 2.0 * deviation).clamp(0.0, 1.0),
        optimal_utilization: u_opt,
        peak_perf_per_watt: model.perf_per_watt(u_opt),
    }
}

/// Energy (Joules) to run a fixed amount of work `ops` (normalized-
/// performance-seconds) at constant utilization `u` on `model`, assuming
/// work completes at rate `u`: time = ops/u, energy = P(u)·ops/u.
///
/// Captures the §3 observation that running slowly on a non-proportional
/// server wastes energy: as `u → 0` the energy diverges because idle power
/// is burned for a long time.
pub fn energy_for_work_j<M: PowerModel>(model: &M, ops: f64, u: f64) -> f64 {
    assert!(
        u > 0.0 && u <= 1.0,
        "utilization must be in (0, 1], got {u}"
    );
    assert!(ops >= 0.0, "work must be non-negative");
    model.power_w(u) * ops / u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{LinearPowerModel, PiecewisePowerModel};

    #[test]
    fn ideal_proportional_scores_one() {
        let m = LinearPowerModel::ideal_proportional(200.0);
        let p = profile(&m);
        assert!((p.proportionality_index - 1.0).abs() < 1e-9);
        assert_eq!(p.idle_fraction, 0.0);
        assert_eq!(p.dynamic_range, 1.0);
    }

    #[test]
    fn typical_server_scores_half() {
        // P(u)/peak - u = 0.5(1-u): mean |dev| over [0,1] = 0.25 → index 0.5.
        let m = LinearPowerModel::typical_volume_server();
        let p = profile(&m);
        assert!(
            (p.proportionality_index - 0.5).abs() < 0.01,
            "index {}",
            p.proportionality_index
        );
        assert!((p.idle_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_power_scores_zero_ish() {
        let m = LinearPowerModel::new(199.999, 200.0);
        let p = profile(&m);
        assert!(
            p.proportionality_index < 0.01,
            "index {}",
            p.proportionality_index
        );
    }

    #[test]
    fn specpower_profile_is_between() {
        let m = PiecewisePowerModel::typical_specpower();
        let p = profile(&m);
        assert!(p.proportionality_index > 0.0 && p.proportionality_index < 1.0);
        assert!((p.idle_fraction - 0.48).abs() < 0.01);
    }

    #[test]
    fn energy_for_work_diverges_at_low_utilization() {
        let m = LinearPowerModel::typical_volume_server();
        let slow = energy_for_work_j(&m, 10.0, 0.1);
        let fast = energy_for_work_j(&m, 10.0, 0.9);
        assert!(slow > 5.0 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn energy_for_work_is_flat_for_proportional_server() {
        let m = LinearPowerModel::ideal_proportional(100.0);
        let a = energy_for_work_j(&m, 10.0, 0.2);
        let b = energy_for_work_j(&m, 10.0, 1.0);
        assert!(
            (a - b).abs() < 1e-9,
            "proportional server: energy independent of rate"
        );
    }

    #[test]
    fn zero_work_costs_nothing() {
        let m = LinearPowerModel::typical_volume_server();
        assert_eq!(energy_for_work_j(&m, 0.0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn energy_for_work_rejects_zero_utilization() {
        let m = LinearPowerModel::typical_volume_server();
        energy_for_work_j(&m, 1.0, 0.0);
    }
}
