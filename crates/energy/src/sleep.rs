//! ACPI sleep states and the sleep-state selection rule.
//!
//! The ACPI specification (paper §2, [12]) defines processor **C-states**
//! (C0 running … C6 deep sleep), device **D-states**, and system
//! **S-states**. The paper's simulations use exactly two sleep targets —
//! C3 and C6 — chosen by the rule in §6:
//!
//! > *If the overall load of the cluster is more than 60 % of the cluster
//! > capacity we do not switch any server to a C6 state … when the total
//! > cluster load is less than 60 % of its capacity we switch to C6.*
//!
//! Transition costs follow the qualitative ordering the paper gives
//! ("the higher the state number … the larger the energy saved, and the
//! longer the time for the CPU to return to C0"), with concrete magnitudes
//! taken from the AutoScale work it cites: a full server setup can take up
//! to 260 s during which power draw is close to peak (§3).

use ecolb_simcore::time::SimDuration;
use std::fmt;

/// Processor power states (ACPI C-states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CState {
    /// Fully operational.
    C0,
    /// Halt: core clock gated, bus interface and APIC still running.
    C1,
    /// Stop-clock: more units gated.
    C2,
    /// Deep sleep: all internal clocks stopped.
    C3,
    /// Deeper sleep: CPU voltage reduced.
    C4,
    /// Enhanced deeper sleep.
    C5,
    /// Deep power down: voltage near zero.
    C6,
}

impl CState {
    /// All states in increasing depth.
    pub const ALL: [CState; 7] = [
        CState::C0,
        CState::C1,
        CState::C2,
        CState::C3,
        CState::C4,
        CState::C5,
        CState::C6,
    ];

    /// Numeric depth (0 for C0 … 6 for C6).
    pub fn depth(self) -> u8 {
        match self {
            CState::C0 => 0,
            CState::C1 => 1,
            CState::C2 => 2,
            CState::C3 => 3,
            CState::C4 => 4,
            CState::C5 => 5,
            CState::C6 => 6,
        }
    }

    /// True for any state other than C0.
    pub fn is_sleeping(self) -> bool {
        self != CState::C0
    }

    /// Residual power as a fraction of the server's *idle* power. Deeper
    /// states save more; C0 keeps full idle draw. The values follow the
    /// monotone ordering required by ACPI.
    pub fn residual_power_fraction(self) -> f64 {
        match self {
            CState::C0 => 1.0,
            CState::C1 => 0.55,
            CState::C2 => 0.40,
            CState::C3 => 0.25,
            CState::C4 => 0.15,
            CState::C5 => 0.08,
            CState::C6 => 0.03,
        }
    }

    /// Time to return to C0. Shallow states wake in micro/milliseconds; a
    /// C6 "off" server needs a full setup measured in minutes (AutoScale
    /// reports up to 260 s; we use a conservative mid value and expose the
    /// constant for experiments to override via [`SleepModel`]).
    pub fn default_wake_latency(self) -> SimDuration {
        match self {
            CState::C0 => SimDuration::ZERO,
            CState::C1 => SimDuration::from_ticks(10), // ~10 µs
            CState::C2 => SimDuration::from_ticks(100), // ~100 µs
            CState::C3 => SimDuration::from_millis(50), // suspend-like
            CState::C4 => SimDuration::from_millis(500),
            CState::C5 => SimDuration::from_secs(5),
            CState::C6 => SimDuration::from_secs(200), // full setup
        }
    }
}

impl fmt::Display for CState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.depth())
    }
}

/// Device power states (ACPI D-states) — modelled for completeness of the
/// ACPI surface; the cluster simulation drives C-states only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DState {
    /// Fully on.
    D0,
    /// Light sleep, context preserved.
    D1,
    /// Deeper sleep.
    D2,
    /// Off; context lost.
    D3,
}

/// System sleep states (ACPI S-states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SState {
    /// Standby with CPU context held.
    S1,
    /// CPU powered off, caches flushed.
    S2,
    /// Suspend to RAM.
    S3,
    /// Suspend to disk (hibernate).
    S4,
}

/// Parameterised sleep-transition cost model for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepModel {
    /// Wake (return-to-C0) latency per sleep state, indexed by depth 1..=6.
    wake_latency: [SimDuration; 6],
    /// Energy to enter + leave the state, expressed in joules, indexed by
    /// depth 1..=6. Deeper states cost more to cycle (§3 question 3).
    transition_energy_j: [f64; 6],
}

impl Default for SleepModel {
    fn default() -> Self {
        SleepModel {
            wake_latency: [
                CState::C1.default_wake_latency(),
                CState::C2.default_wake_latency(),
                CState::C3.default_wake_latency(),
                CState::C4.default_wake_latency(),
                CState::C5.default_wake_latency(),
                CState::C6.default_wake_latency(),
            ],
            // Cycle energy grows with depth; the C6 figure approximates a
            // 260 s near-peak-power setup on a ~200 W volume server scaled
            // down to the portion attributable to the transition itself.
            transition_energy_j: [0.001, 0.01, 50.0, 200.0, 2_000.0, 20_000.0],
        }
    }
}

impl SleepModel {
    /// Wake latency for a sleep state; zero for C0.
    pub fn wake_latency(&self, state: CState) -> SimDuration {
        match state.depth() {
            0 => SimDuration::ZERO,
            d => self.wake_latency[(d - 1) as usize],
        }
    }

    /// Enter+leave energy for a sleep state; zero for C0.
    pub fn transition_energy_j(&self, state: CState) -> f64 {
        match state.depth() {
            0 => 0.0,
            d => self.transition_energy_j[(d - 1) as usize],
        }
    }

    /// Energy wasted by a wake transition that *fails*: the server pays
    /// the full enter+leave cycle energy for the state it was sleeping in
    /// and ends up back asleep with nothing to show for it. Used by the
    /// fault-injection layer's degradation accounting (a server ordered
    /// out of C6 that never wakes).
    pub fn failed_wake_energy_j(&self, state: CState) -> f64 {
        self.transition_energy_j(state)
    }

    /// Overrides the wake latency of one state (builder style).
    pub fn with_wake_latency(mut self, state: CState, lat: SimDuration) -> Self {
        assert!(state.is_sleeping(), "C0 has no wake latency");
        self.wake_latency[(state.depth() - 1) as usize] = lat;
        self
    }

    /// Overrides the transition energy of one state (builder style).
    pub fn with_transition_energy_j(mut self, state: CState, joules: f64) -> Self {
        assert!(state.is_sleeping(), "C0 has no transition energy");
        self.transition_energy_j[(state.depth() - 1) as usize] = joules;
        self
    }
}

/// Strategy deciding which sleep state an idle server should enter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SleepPolicy {
    /// The paper's rule (§6): C6 when cluster load `< threshold` (default
    /// 0.60), otherwise C3 — a busy cluster will likely need the server
    /// back soon, and C6 wake-ups are slow and expensive.
    ClusterLoadThreshold {
        /// Cluster-load fraction above which only C3 is used.
        threshold: f64,
    },
    /// Ablation: always C3 (fast wake, modest savings).
    AlwaysC3,
    /// Ablation: always C6 (slow wake, maximal savings).
    AlwaysC6,
    /// Never sleep (baseline "always on").
    NeverSleep,
}

impl Default for SleepPolicy {
    fn default() -> Self {
        SleepPolicy::ClusterLoadThreshold { threshold: 0.60 }
    }
}

impl SleepPolicy {
    /// Chooses the sleep state for a drained server given the current
    /// cluster load fraction; `None` means "stay awake".
    pub fn choose(&self, cluster_load_fraction: f64) -> Option<CState> {
        match *self {
            SleepPolicy::ClusterLoadThreshold { threshold } => {
                if cluster_load_fraction < threshold {
                    Some(CState::C6)
                } else {
                    Some(CState::C3)
                }
            }
            SleepPolicy::AlwaysC3 => Some(CState::C3),
            SleepPolicy::AlwaysC6 => Some(CState::C6),
            SleepPolicy::NeverSleep => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_states_save_more_power() {
        let mut prev = f64::INFINITY;
        for s in CState::ALL {
            let frac = s.residual_power_fraction();
            assert!(frac <= prev, "{s} residual {frac} not monotone");
            prev = frac;
        }
        assert_eq!(CState::C0.residual_power_fraction(), 1.0);
    }

    #[test]
    fn deeper_states_wake_slower() {
        let mut prev = SimDuration::ZERO;
        for s in CState::ALL {
            let lat = s.default_wake_latency();
            assert!(lat >= prev, "{s} latency not monotone");
            prev = lat;
        }
    }

    #[test]
    fn deeper_states_cost_more_to_cycle() {
        let m = SleepModel::default();
        let mut prev = 0.0;
        for s in CState::ALL {
            let e = m.transition_energy_j(s);
            assert!(e >= prev, "{s} transition energy not monotone");
            prev = e;
        }
    }

    #[test]
    fn c0_is_free() {
        let m = SleepModel::default();
        assert_eq!(m.wake_latency(CState::C0), SimDuration::ZERO);
        assert_eq!(m.transition_energy_j(CState::C0), 0.0);
        assert!(!CState::C0.is_sleeping());
    }

    #[test]
    fn paper_rule_uses_c6_below_threshold() {
        let p = SleepPolicy::default();
        assert_eq!(p.choose(0.30), Some(CState::C6));
        assert_eq!(p.choose(0.59), Some(CState::C6));
        assert_eq!(p.choose(0.60), Some(CState::C3));
        assert_eq!(p.choose(0.90), Some(CState::C3));
    }

    #[test]
    fn ablation_policies() {
        assert_eq!(SleepPolicy::AlwaysC3.choose(0.1), Some(CState::C3));
        assert_eq!(SleepPolicy::AlwaysC6.choose(0.9), Some(CState::C6));
        assert_eq!(SleepPolicy::NeverSleep.choose(0.1), None);
    }

    #[test]
    fn model_overrides_apply() {
        let m = SleepModel::default()
            .with_wake_latency(CState::C6, SimDuration::from_secs(260))
            .with_transition_energy_j(CState::C3, 99.0);
        assert_eq!(m.wake_latency(CState::C6), SimDuration::from_secs(260));
        assert_eq!(m.transition_energy_j(CState::C3), 99.0);
        // Untouched entries stay at defaults.
        assert_eq!(
            m.wake_latency(CState::C3),
            CState::C3.default_wake_latency()
        );
    }

    #[test]
    fn failed_wake_wastes_the_cycle_energy() {
        let m = SleepModel::default();
        assert_eq!(
            m.failed_wake_energy_j(CState::C6),
            m.transition_energy_j(CState::C6)
        );
        assert_eq!(m.failed_wake_energy_j(CState::C0), 0.0);
        assert!(m.failed_wake_energy_j(CState::C6) > m.failed_wake_energy_j(CState::C3));
    }

    #[test]
    #[should_panic(expected = "C0")]
    fn cannot_override_c0() {
        let _ = SleepModel::default().with_wake_latency(CState::C0, SimDuration::ZERO);
    }

    #[test]
    fn display_and_depth() {
        assert_eq!(CState::C6.to_string(), "C6");
        assert_eq!(CState::C3.depth(), 3);
        assert!(CState::C3 < CState::C6);
    }
}
