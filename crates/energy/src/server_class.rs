//! Server classes and the historical power data of Table 1.
//!
//! The paper quotes Koomey's estimates of average power for **volume**
//! (< $25 K), **mid-range** ($25 K–$499 K), and **high-end** (> $500 K)
//! servers from 2000 through 2006. This module embeds that dataset, fits a
//! linear trend per class, and derives representative
//! [`LinearPowerModel`](crate::power::LinearPowerModel)s so experiments can
//! run on class-appropriate hardware parameters.

use crate::power::LinearPowerModel;
use std::fmt;

/// Koomey's server price bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerClass {
    /// Volume servers, price below $25 K.
    Volume,
    /// Mid-range servers, $25 K – $499 K.
    MidRange,
    /// High-end servers, $500 K and above.
    HighEnd,
}

impl ServerClass {
    /// All classes in Table 1 order.
    pub const ALL: [ServerClass; 3] = [
        ServerClass::Volume,
        ServerClass::MidRange,
        ServerClass::HighEnd,
    ];

    /// The label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            ServerClass::Volume => "Vol",
            ServerClass::MidRange => "Mid",
            ServerClass::HighEnd => "High",
        }
    }

    /// Upper price bound in k$, `None` for the open-ended high-end band.
    pub fn price_ceiling_kusd(self) -> Option<u32> {
        match self {
            ServerClass::Volume => Some(25),
            ServerClass::MidRange => Some(499),
            ServerClass::HighEnd => None,
        }
    }
}

impl fmt::Display for ServerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Years covered by Table 1.
pub const TABLE1_YEARS: [u32; 7] = [2000, 2001, 2002, 2003, 2004, 2005, 2006];

/// Table 1 of the paper: estimated average power use in Watts
/// (rows: Volume, Mid, High; columns: 2000–2006). Source: Koomey [13].
pub const TABLE1_WATTS: [[f64; 7]; 3] = [
    [186.0, 193.0, 200.0, 207.0, 213.0, 219.0, 225.0],
    [424.0, 457.0, 491.0, 524.0, 574.0, 625.0, 675.0],
    [
        5_534.0, 5_832.0, 6_130.0, 6_428.0, 6_973.0, 7_651.0, 8_163.0,
    ],
];

/// Average power of `class` in `year`, straight from Table 1; `None`
/// outside 2000–2006.
pub fn table1_power_w(class: ServerClass, year: u32) -> Option<f64> {
    let row = match class {
        ServerClass::Volume => 0,
        ServerClass::MidRange => 1,
        ServerClass::HighEnd => 2,
    };
    TABLE1_YEARS
        .iter()
        .position(|&y| y == year)
        .map(|col| TABLE1_WATTS[row][col])
}

/// Least-squares linear fit `watts ≈ slope·(year − 2000) + intercept` for a
/// server class over the Table 1 data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerTrend {
    /// Watts per year of growth.
    pub slope: f64,
    /// Estimated watts in year 2000.
    pub intercept: f64,
}

impl PowerTrend {
    /// Fits the trend for one class.
    pub fn fit(class: ServerClass) -> Self {
        let row = match class {
            ServerClass::Volume => 0,
            ServerClass::MidRange => 1,
            ServerClass::HighEnd => 2,
        };
        let ys = &TABLE1_WATTS[row];
        let n = ys.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, &y) in ys.iter().enumerate() {
            let dx = i as f64 - mean_x;
            sxy += dx * (y - mean_y);
            sxx += dx * dx;
        }
        let slope = sxy / sxx;
        PowerTrend {
            slope,
            intercept: mean_y - slope * mean_x,
        }
    }

    /// Extrapolated/interpolated average power for a year.
    pub fn predict(&self, year: u32) -> f64 {
        self.intercept + self.slope * (year as f64 - 2000.0)
    }
}

/// A representative power model for a class in a given year: peak power set
/// to the Table 1 trend value, idle at the paper's 50 % non-proportionality
/// figure.
pub fn class_power_model(class: ServerClass, year: u32) -> LinearPowerModel {
    let peak = PowerTrend::fit(class).predict(year).max(1.0);
    LinearPowerModel::new(0.5 * peak, peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    #[test]
    fn table1_lookup_matches_paper() {
        assert_eq!(table1_power_w(ServerClass::Volume, 2000), Some(186.0));
        assert_eq!(table1_power_w(ServerClass::Volume, 2006), Some(225.0));
        assert_eq!(table1_power_w(ServerClass::MidRange, 2003), Some(524.0));
        assert_eq!(table1_power_w(ServerClass::HighEnd, 2006), Some(8_163.0));
        assert_eq!(table1_power_w(ServerClass::Volume, 1999), None);
        assert_eq!(table1_power_w(ServerClass::Volume, 2007), None);
    }

    #[test]
    fn power_grows_over_time_for_every_class() {
        for (r, _) in ServerClass::ALL.iter().enumerate() {
            for w in TABLE1_WATTS[r].windows(2) {
                assert!(w[1] > w[0], "Table 1 rows are strictly increasing");
            }
        }
    }

    #[test]
    fn trend_slope_is_positive_and_ordered_by_class() {
        let vol = PowerTrend::fit(ServerClass::Volume);
        let mid = PowerTrend::fit(ServerClass::MidRange);
        let high = PowerTrend::fit(ServerClass::HighEnd);
        assert!(vol.slope > 0.0);
        assert!(mid.slope > vol.slope);
        assert!(high.slope > mid.slope);
    }

    #[test]
    fn trend_interpolates_close_to_data() {
        for class in ServerClass::ALL {
            let t = PowerTrend::fit(class);
            for (i, &year) in TABLE1_YEARS.iter().enumerate() {
                let actual = table1_power_w(class, year).unwrap();
                let predicted = t.predict(year);
                let rel = (predicted - actual).abs() / actual;
                assert!(
                    rel < 0.05,
                    "{class} {year}: predicted {predicted}, actual {actual} (i={i})"
                );
            }
        }
    }

    #[test]
    fn extrapolation_beyond_2006_keeps_growing() {
        let t = PowerTrend::fit(ServerClass::Volume);
        assert!(t.predict(2010) > t.predict(2006));
    }

    #[test]
    fn class_power_model_idles_at_half_peak() {
        let m = class_power_model(ServerClass::Volume, 2006);
        assert!((m.idle_power_w() / m.peak_power_w() - 0.5).abs() < 1e-12);
        // Near the Table 1 2006 value.
        assert!((m.peak_power_w() - 225.0).abs() < 10.0);
    }

    #[test]
    fn labels_and_price_bands() {
        assert_eq!(ServerClass::Volume.label(), "Vol");
        assert_eq!(ServerClass::MidRange.to_string(), "Mid");
        assert_eq!(ServerClass::Volume.price_ceiling_kusd(), Some(25));
        assert_eq!(ServerClass::HighEnd.price_ceiling_kusd(), None);
    }
}
