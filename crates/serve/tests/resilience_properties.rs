//! `proptest_lite` properties for the resilience primitives (ISSUE 10
//! satellite):
//!
//! 1. backoff schedules are monotone non-decreasing, never exceed the
//!    (jittered) cap, and are byte-deterministic in
//!    `(seed, request, policy)`;
//! 2. the retry-budget token bucket never goes negative, conserves
//!    milli-tokens exactly, and a disabled budget behaves as unlimited
//!    while holding no state.

use ecolb_serve::resilience::{
    BackoffSchedule, RetryBudget, RetryBudgetSpec, RetryPolicy, RETRY_COST_MTOKENS,
};
use ecolb_simcore::proptest_lite::{check, Gen};
use ecolb_workload::requests::RequestId;

/// Draws an arbitrary-but-sane retry policy: base up to 2 s, multiplier
/// in [1, 4), cap up to 8 s, jitter in [0, 1).
fn gen_policy(gen: &mut Gen) -> RetryPolicy {
    RetryPolicy {
        enabled: true,
        max_attempts: gen.u64_in(1, 8) as u32,
        base_backoff_s: gen.f64_in(0.0, 2.0),
        backoff_multiplier: gen.f64_in(1.0, 4.0),
        max_backoff_s: gen.f64_in(0.0, 8.0),
        jitter_fraction: gen.f64_in(0.0, 1.0),
        budget: RetryBudgetSpec::default_enabled(),
    }
}

#[test]
fn backoff_schedule_is_monotone_and_capped() {
    check("backoff_monotone_capped", |gen| {
        let policy = gen_policy(gen);
        let seed = gen.u64();
        let request = RequestId(gen.u64());
        let schedule = BackoffSchedule::new(seed, request, &policy);
        let mut last = 0.0f64;
        for attempt in 1..=16u32 {
            let d = schedule.delay_s(attempt);
            assert!(d >= 0.0, "negative backoff {d} at attempt {attempt}");
            assert!(
                d + 1e-12 >= last,
                "backoff fell from {last} to {d} at attempt {attempt}"
            );
            // The jitter factor lies in [1 − jitter, 1] ⊆ [0, 1], so the
            // configured cap bounds every jittered delay.
            assert!(
                d <= policy.max_backoff_s.max(0.0) + 1e-12,
                "backoff {d} exceeds cap {} at attempt {attempt}",
                policy.max_backoff_s
            );
            last = d;
        }
    });
}

#[test]
fn backoff_schedule_is_deterministic_in_its_key() {
    check("backoff_deterministic", |gen| {
        let policy = gen_policy(gen);
        let seed = gen.u64();
        let request = RequestId(gen.u64());
        let a = BackoffSchedule::new(seed, request, &policy);
        let b = BackoffSchedule::new(seed, request, &policy);
        assert_eq!(a, b, "same key, different schedule");
        for attempt in 1..=8u32 {
            assert!(
                a.delay_s(attempt).to_bits() == b.delay_s(attempt).to_bits(),
                "delay at attempt {attempt} is not byte-deterministic"
            );
        }
        // A different request re-keys the jitter stream; with full
        // jitter width the schedules almost surely differ, but
        // determinism (not distinctness) is the property under test, so
        // only assert the re-keyed schedule is itself stable.
        let other = RequestId(request.0 ^ 0x9E37_79B9_7F4A_7C15);
        assert_eq!(
            BackoffSchedule::new(seed, other, &policy),
            BackoffSchedule::new(seed, other, &policy)
        );
    });
}

#[test]
fn retry_budget_never_goes_negative_and_conserves_tokens() {
    check("budget_conservation", |gen| {
        let spec = RetryBudgetSpec {
            enabled: true,
            fill_per_admit_mtokens: gen.u64_in(0, 500),
            burst_mtokens: gen.u64_in(0, 20) * RETRY_COST_MTOKENS,
        };
        let mut budget = RetryBudget::new(spec);
        let mut granted = 0u64;
        let ops = gen.usize_in(1, 200);
        for _ in 0..ops {
            if gen.f64_in(0.0, 1.0) < 0.5 {
                budget.deposit();
            } else {
                let before = budget.balance_mtokens();
                if budget.try_withdraw() {
                    granted += 1;
                } else {
                    // A denial is only legal when the bucket genuinely
                    // cannot cover one retry, and it must not move state.
                    assert!(before < RETRY_COST_MTOKENS, "denied with {before} banked");
                    assert_eq!(budget.balance_mtokens(), before);
                }
            }
            // The balance is unsigned by construction; the sharp edge is
            // that it never exceeds the burst capacity either.
            assert!(
                budget.balance_mtokens() <= spec.burst_mtokens,
                "balance {} above burst {}",
                budget.balance_mtokens(),
                spec.burst_mtokens
            );
            // Exact integer conservation at every step.
            assert_eq!(
                budget.initial_mtokens() + budget.deposited_mtokens(),
                budget.balance_mtokens() + budget.withdrawn_mtokens() + budget.dropped_mtokens(),
                "milli-tokens leaked"
            );
        }
        assert_eq!(budget.withdrawn_mtokens(), granted * RETRY_COST_MTOKENS);
    });
}

#[test]
fn disabled_budget_is_unlimited_and_stateless() {
    check("budget_disabled_unlimited", |gen| {
        let mut budget = RetryBudget::new(RetryBudgetSpec::unlimited());
        let ops = gen.usize_in(1, 100);
        for _ in 0..ops {
            if gen.f64_in(0.0, 1.0) < 0.5 {
                budget.deposit();
            } else {
                assert!(budget.try_withdraw(), "disabled budget denied a retry");
            }
        }
        assert_eq!(budget, RetryBudget::new(RetryBudgetSpec::unlimited()));
        assert_eq!(budget.deposited_mtokens(), 0);
        assert_eq!(budget.withdrawn_mtokens(), 0);
        assert_eq!(budget.dropped_mtokens(), 0);
    });
}
