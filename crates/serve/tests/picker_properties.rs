//! `proptest_lite` properties for the pickers (ISSUE 8 satellite):
//!
//! 1. round-robin fairness: over any window with a stable awake set,
//!    the max–min gap of per-instance pick counts is ≤ 1;
//! 2. power-of-two-choices never picks a sleeping instance;
//! 3. every picker is deterministic under instance-set reordering —
//!    the pick is a function of the *set*, not the discovery order.

use ecolb_cluster::instances::InstanceInfo;
use ecolb_cluster::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_serve::picker::{Picker, PickerKind, PowerOfTwo, RoundRobin};
use ecolb_serve::queue::QueueModel;
use ecolb_serve::InstanceSet;
use ecolb_simcore::proptest_lite::{check, Gen};
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_workload::requests::RequestId;

fn regime_of(idx: usize) -> OperatingRegime {
    OperatingRegime::ALL[idx % 5]
}

/// Draws a random instance population: ids are a shuffled subset, each
/// instance awake with probability ~0.7, random regimes and loads.
fn gen_instances(gen: &mut Gen) -> Vec<InstanceInfo> {
    let n = gen.usize_in(1, 12);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let awake = gen.f64_in(0.0, 1.0) < 0.7;
        out.push(InstanceInfo {
            id: ServerId(i as u32),
            awake,
            regime: regime_of(gen.usize_in(0, 5)),
            load: gen.f64_in(0.0, 1.0),
            vms: gen.usize_in(0, 6),
        });
    }
    out
}

/// A queue model with random backlogs for the instance count.
fn gen_queues(gen: &mut Gen, n: usize) -> QueueModel {
    let mut q = QueueModel::new(n);
    for i in 0..n {
        let backlog_ms = gen.u64_in(0, 5_000);
        if backlog_ms > 0 {
            q.enqueue(
                SimTime::ZERO,
                ServerId(i as u32),
                SimDuration::from_millis(backlog_ms),
            );
        }
    }
    q
}

#[test]
fn round_robin_fairness_gap_at_most_one() {
    check("round_robin_fairness", |gen| {
        let instances = gen_instances(gen);
        let set = InstanceSet::from_instances(instances);
        if set.awake_len() == 0 {
            return;
        }
        let q = QueueModel::new(set.len());
        let view = q.view(SimTime::ZERO);
        let mut rr = RoundRobin::new();
        let window = gen.usize_in(1, 64);
        let mut counts = vec![0u64; set.len()];
        for r in 0..window {
            let id = rr
                .pick(&set, &view, RequestId(r as u64))
                .expect("awake set is non-empty");
            counts[id.index()] += 1;
        }
        // Fairness over the awake instances only.
        let awake_counts: Vec<u64> = set
            .awake_indices()
            .iter()
            .map(|&i| counts[set.instances()[i].id.index()])
            .collect();
        let max = awake_counts.iter().copied().max().unwrap_or(0);
        let min = awake_counts.iter().copied().min().unwrap_or(0);
        assert!(
            max - min <= 1,
            "round-robin gap {max}-{min} over window {window} with {} awake",
            set.awake_len()
        );
        // And nothing lands on a non-awake instance.
        for (i, inst) in set.instances().iter().enumerate() {
            if !inst.awake {
                assert_eq!(counts[set.instances()[i].id.index()], 0);
            }
        }
    });
}

#[test]
fn power_of_two_never_picks_a_sleeping_instance() {
    check("p2c_awake_only", |gen| {
        let instances = gen_instances(gen);
        let set = InstanceSet::from_instances(instances);
        let queues = gen_queues(gen, set.len());
        let view = queues.view(SimTime::ZERO);
        let seed = gen.u64();
        let mut p2c = PowerOfTwo::new(seed);
        for r in 0..128u64 {
            match p2c.pick(&set, &view, RequestId(r)) {
                None => assert_eq!(set.awake_len(), 0, "None only when nothing is awake"),
                Some(id) => {
                    let inst = set
                        .instances()
                        .iter()
                        .find(|i| i.id == id)
                        .expect("picked id exists");
                    assert!(inst.awake, "picked sleeping server {id:?}");
                }
            }
        }
    });
}

#[test]
fn pickers_are_deterministic_under_instance_reordering() {
    check("picker_reorder_determinism", |gen| {
        let instances = gen_instances(gen);
        let mut shuffled = instances.clone();
        gen.rng().shuffle(&mut shuffled);
        let a = InstanceSet::from_instances(instances);
        let b = InstanceSet::from_instances(shuffled);
        assert_eq!(a, b, "canonicalization must erase discovery order");

        let queues = gen_queues(gen, a.len());
        let view = queues.view(SimTime::ZERO);
        let seed = gen.u64();
        for kind in PickerKind::all() {
            let mut pa = kind.build(seed);
            let mut pb = kind.build(seed);
            for r in 0..32u64 {
                assert_eq!(
                    pa.pick(&a, &view, RequestId(r)),
                    pb.pick(&b, &view, RequestId(r)),
                    "{} diverged under reordering on request {r}",
                    kind.label()
                );
            }
        }
    });
}

#[test]
fn least_loaded_and_regime_aware_route_awake_only() {
    check("scored_pickers_awake_only", |gen| {
        let instances = gen_instances(gen);
        let set = InstanceSet::from_instances(instances);
        let queues = gen_queues(gen, set.len());
        let view = queues.view(SimTime::ZERO);
        for kind in [PickerKind::LeastLoaded, PickerKind::RegimeAware] {
            let mut p = kind.build(1);
            for r in 0..16u64 {
                if let Some(id) = p.pick(&set, &view, RequestId(r)) {
                    let inst = set
                        .instances()
                        .iter()
                        .find(|i| i.id == id)
                        .expect("picked id exists");
                    assert!(inst.awake, "{} picked sleeping {id:?}", kind.label());
                }
            }
        }
    });
}
