//! `ServeSim`: co-simulation of request routing and the energy policy.
//!
//! One discrete-event engine drives two coupled layers. The *cluster*
//! layer is the unmodified §4 reallocation protocol — demand evolution,
//! regime classification, migrations, drain-and-sleep — ticking every
//! reallocation interval, exactly as in `TimedClusterSim`. The *serving*
//! layer rides on the same clock: open-loop request arrivals (one
//! Poisson source per initial application), a picked instance per
//! request, FIFO queueing per server, and a latency sample per
//! completion.
//!
//! The two layers interact in both directions:
//!
//! * **policy → routing** — every reallocation boundary refreshes the
//!   [`ClusterDiscover`] snapshot, so wake/sleep/crash decisions change
//!   the routable set the pickers see (and the `RegimeAware` picker
//!   additionally reads the regime classification itself);
//! * **routing → energy** — a request's *effective* service time
//!   stretches with the chosen server's load (`1/(1−load)` processor-
//!   sharing slowdown), and each effective-service-second draws
//!   [`ServeConfig::request_power_w`] scaled by the serving regime's
//!   energy-proportionality factor ([`regime_energy_multiplier`]): work
//!   done on a nearly idle server amortizes its fixed power draw over
//!   almost nothing, so a request served in R1/R2 costs more joules than
//!   the same request served in the optimal band — the §3 argument,
//!   applied per request. When the consolidation policy puts a server to sleep while
//!   it still holds queued requests, the remaining backlog is charged at
//!   [`ServeConfig::sleep_deferral_power_w`] — the server must stay up
//!   to drain before it can actually power down. A picker that keeps
//!   routing to drain candidates therefore pays for it in joules, and a
//!   picker that routes into overloaded servers pays in both joules and
//!   tail latency.
//!
//! The cluster's own decision stream is *identical* across pickers (the
//! serving layer never mutates cluster state or consumes its RNG), so a
//! picker comparison isolates the routing policy: same migrations, same
//! sleeps — different latency and different serve-side energy.

use crate::discover::{Change, ClusterDiscover, Discover};
use crate::picker::{Picker, PickerKind};
use crate::queue::QueueModel;
use ecolb_cluster::cluster::{Cluster, ClusterConfig, ClusterRunReport};
use ecolb_cluster::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_faults::inject::FaultInjector;
use ecolb_faults::plan::{FaultEventKind, FaultPlan};
use ecolb_metrics::latency::{LatencyRecorder, SlaClassCounters};
use ecolb_simcore::engine::{Control, Engine, RunOutcome};
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_trace::{NoTrace, TraceEventKind, Tracer};
use ecolb_workload::processes::{RateModulation, SourceProfile};
use ecolb_workload::requests::{service_time_s, OpenLoopSource, RequestId, RequestLoadSpec};

/// Serving-layer configuration on top of a cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The cluster the requests are served by.
    pub cluster: ClusterConfig,
    /// Request traffic shape (per-app rates, service-time mean, SLA mix).
    pub load: RequestLoadSpec,
    /// Time-varying arrival modulation across the sources (flash crowds,
    /// diurnal waves). `Flat` is byte-identical to the unmodulated
    /// process.
    pub modulation: RateModulation,
    /// Scheduled faults injected into the co-simulation — the seam the
    /// scenario layer uses for spot/preemptible reclaims. `None` (and an
    /// empty plan) is a structural no-op. Scheduled crashes refresh the
    /// discovery snapshot immediately, so pickers stop routing to a
    /// reclaimed server at reclaim time, not at the next tick; its
    /// already-queued requests drain (reclaim-with-grace semantics).
    /// Message-delay families are inert here: the serving engine does
    /// not simulate migration transfers on the wire.
    pub faults: Option<FaultPlan>,
    /// The routing strategy under test.
    pub picker: PickerKind,
    /// Reallocation intervals to simulate.
    pub intervals: u64,
    /// Admission bound: a request is rejected when the chosen server
    /// already queues more than this many seconds of work.
    pub reject_backlog_s: f64,
    /// Gold-class latency objective, seconds.
    pub gold_objective_s: f64,
    /// Bronze-class latency objective, seconds.
    pub bronze_objective_s: f64,
    /// Marginal power drawn per effective-service-second, watts.
    pub request_power_w: f64,
    /// Power charged while a sleeping-ordered server drains its request
    /// backlog, watts.
    pub sleep_deferral_power_w: f64,
    /// Load cap in the `1/(1−load)` slowdown (keeps the stretch finite
    /// on saturated servers).
    pub slowdown_load_cap: f64,
    /// Latency histogram range `[0, hi)`, seconds.
    pub latency_hi_s: f64,
    /// Latency histogram bins.
    pub latency_bins: usize,
}

/// Energy-proportionality factor of serving one request in a given
/// regime: joules per effective-service-second relative to the optimal
/// band. Real servers are far from energy-proportional (§3): a nearly
/// idle server amortizes its fixed power draw over very little work, so
/// work placed in R1 costs about twice what the same work costs in R3;
/// the saturated band pays a smaller premium (contention, not idle
/// waste). The multiplier applies to [`ServeConfig::request_power_w`].
pub fn regime_energy_multiplier(regime: OperatingRegime) -> f64 {
    match regime {
        OperatingRegime::UndesirableLow => 2.0,
        OperatingRegime::SuboptimalLow => 1.5,
        OperatingRegime::Optimal => 1.0,
        OperatingRegime::SuboptimalHigh => 1.05,
        OperatingRegime::UndesirableHigh => 1.25,
    }
}

impl ServeConfig {
    /// Paper-shaped defaults around a given cluster config: moderate
    /// open-loop traffic, a 2 s admission bound, 500 ms gold / 2 s
    /// bronze objectives, and serve-side power small relative to a
    /// server's idle draw.
    pub fn paper(cluster: ClusterConfig, picker: PickerKind, intervals: u64) -> Self {
        ServeConfig {
            cluster,
            load: RequestLoadSpec::moderate(),
            modulation: RateModulation::Flat,
            faults: None,
            picker,
            intervals,
            reject_backlog_s: 2.0,
            gold_objective_s: 0.5,
            bronze_objective_s: 2.0,
            request_power_w: 40.0,
            sleep_deferral_power_w: 120.0,
            slowdown_load_cap: 0.9,
            latency_hi_s: 8.0,
            latency_bins: 64,
        }
    }
}

/// Events of the serving co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// End of a reallocation interval: demand evolution + balancing +
    /// discovery refresh.
    ReallocationTick,
    /// The next request of an open-loop source arrives.
    Arrival {
        /// Index into the source table.
        source: u32,
    },
    /// A routed request finishes service.
    Completion {
        /// The request id.
        request: u64,
        /// The server that served it.
        server: ServerId,
        /// Admission instant, integer ticks, for exact latency.
        admitted_ticks: u64,
        /// SLA class index of the request.
        class: u8,
    },
    /// A scheduled fault from the plan fires (spot reclaim, crash,
    /// scripted recovery).
    Fault(FaultEventKind),
}

/// Everything a `ServeSim` run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The routing strategy that produced this report.
    pub picker: &'static str,
    /// The capacity-level cluster report (identical across pickers for
    /// the same cluster config and seed).
    pub base: ClusterRunReport,
    /// Requests admitted into the serving layer.
    pub requests_admitted: u64,
    /// Requests that completed service.
    pub requests_completed: u64,
    /// Requests rejected (no awake instance, or admission bound).
    pub requests_rejected: u64,
    /// End-to-end latency profile (queueing + service).
    pub latency: LatencyRecorder,
    /// Per-SLA-class served/violated/rejected counters.
    pub sla: SlaClassCounters,
    /// Cumulative latency overrun past each class objective, seconds
    /// (index 0 = gold, 1 = bronze) — the SLA axis of the Pareto
    /// frontier: not just *how many* requests missed, but by how much.
    pub violation_seconds: [f64; 2],
    /// Requests served per server (server-id index).
    pub per_instance_served: Vec<u64>,
    /// Serve-side energy: Σ effective service × request power, joules.
    pub serve_energy_j: f64,
    /// Energy charged to draining backlogged servers the policy slept,
    /// joules.
    pub sleep_deferral_energy_j: f64,
    /// Sleep decisions that found a non-empty request queue.
    pub deferred_sleeps: u64,
    /// Total events the engine processed.
    pub events_processed: u64,
}

impl ServeReport {
    /// Cluster energy plus both serve-side charges, joules — the energy
    /// axis of the energy-vs-p99 frontier.
    pub fn total_energy_j(&self) -> f64 {
        self.base.energy.total_j() + self.serve_energy_j + self.sleep_deferral_energy_j
    }

    /// P² estimate of the 99th-percentile latency, seconds.
    pub fn p99_s(&self) -> f64 {
        self.latency.p99()
    }

    /// Rejected fraction of admitted requests; defined 0.0 when no
    /// request ever arrived.
    pub fn reject_fraction(&self) -> f64 {
        if self.requests_admitted == 0 {
            0.0
        } else {
            self.requests_rejected as f64 / self.requests_admitted as f64
        }
    }
}

/// The request/energy co-simulation. See the module docs.
#[derive(Debug)]
pub struct ServeSim {
    config: ServeConfig,
    seed: u64,
}

struct ServeState {
    cluster: Cluster,
    discover: ClusterDiscover,
    picker: Box<dyn Picker>,
    queues: QueueModel,
    sources: Vec<OpenLoopSource>,
    profiles: Vec<SourceProfile>,
    injector: FaultInjector,
    changes: Vec<Change>,
    horizon: SimTime,
    realloc_interval: SimDuration,
    intervals_left: u64,
    seed: u64,
    // Measurement.
    next_request: u64,
    completed: u64,
    rejected: u64,
    latency: LatencyRecorder,
    sla: SlaClassCounters,
    violation_seconds: [f64; 2],
    per_instance_served: Vec<u64>,
    serve_energy_j: f64,
    sleep_deferral_energy_j: f64,
    deferred_sleeps: u64,
    sleeping_series: ecolb_metrics::timeseries::TimeSeries,
    load_series: ecolb_metrics::timeseries::TimeSeries,
}

impl ServeSim {
    /// Creates the co-simulation for the given config and seed. The
    /// seed feeds the cluster exactly as in `TimedClusterSim` plus the
    /// keyed request streams (arrivals, service times, picker choices).
    pub fn new(config: ServeConfig, seed: u64) -> Self {
        ServeSim { config, seed }
    }

    /// Runs to completion and returns the serving report.
    pub fn run(self) -> ServeReport {
        self.run_traced(&mut NoTrace)
    }

    /// [`ServeSim::run`] with a tracer observing engine dispatch, the
    /// cluster protocol *and* the request path (`request_admit`,
    /// `request_route`, `request_complete`, `request_reject`).
    pub fn run_traced<T: Tracer>(self, tracer: &mut T) -> ServeReport {
        let seed = self.seed;
        let cfg = self.config;
        let cluster = Cluster::new(cfg.cluster.clone(), seed);
        let realloc_interval = cluster.config().realloc_interval;
        let n_servers = cluster.servers().len();
        let horizon = SimTime::ZERO
            + SimDuration::from_ticks(realloc_interval.ticks().saturating_mul(cfg.intervals));

        // One open-loop source per initial application, in (server, app)
        // placement order — the source index keys its arrival stream,
        // and its modulation profile (flash-crowd participation, diurnal
        // phase) keys an independent stream on the same index.
        let mut sources = Vec::new();
        let mut profiles = Vec::new();
        for server in cluster.servers() {
            for app in server.apps() {
                let idx = sources.len() as u64;
                sources.push(cfg.load.source_for(seed, idx, app));
                profiles.push(cfg.modulation.profile_for(seed, idx));
            }
        }
        let fault_plan = cfg.faults.clone().unwrap_or_else(|| FaultPlan::empty(seed));

        let discover = ClusterDiscover::new(&cluster);
        let mut state = ServeState {
            discover,
            picker: cfg.picker.build(seed),
            queues: QueueModel::new(n_servers),
            sources,
            profiles,
            injector: FaultInjector::new(&fault_plan, n_servers),
            changes: Vec::new(),
            horizon,
            realloc_interval,
            intervals_left: cfg.intervals,
            seed,
            next_request: 0,
            completed: 0,
            rejected: 0,
            latency: LatencyRecorder::new(cfg.latency_hi_s, cfg.latency_bins),
            sla: SlaClassCounters::new(),
            violation_seconds: [0.0; 2],
            per_instance_served: vec![0; n_servers],
            serve_energy_j: 0.0,
            sleep_deferral_energy_j: 0.0,
            deferred_sleeps: 0,
            sleeping_series: ecolb_metrics::timeseries::TimeSeries::new("sleeping_servers"),
            load_series: ecolb_metrics::timeseries::TimeSeries::new("cluster_load"),
            cluster,
        };
        let initial_census = state.cluster.census();

        let mut engine: Engine<ServeEvent> = Engine::with_capacity(256);
        engine.schedule_at(
            SimTime::ZERO + realloc_interval,
            ServeEvent::ReallocationTick,
        );
        for (i, source) in state.sources.iter_mut().enumerate() {
            if let Some(gap) = state.profiles[i].next_gap_s(source, 0.0) {
                let at = SimTime::ZERO + SimDuration::from_secs_f64(gap);
                if at < horizon {
                    engine.schedule_at(at, ServeEvent::Arrival { source: i as u32 });
                }
            }
        }
        // Faults beyond the horizon can never be observed; drop them so
        // the engine drain stays bounded.
        for ev in &fault_plan.events {
            if ev.at <= horizon {
                engine.schedule_at(ev.at, ServeEvent::Fault(ev.kind));
            }
        }

        let outcome = engine.run_traced(&mut state, tracer, |state, sched, event| match event {
            ServeEvent::ReallocationTick => on_tick(state, sched, &cfg),
            ServeEvent::Arrival { source } => on_arrival(state, sched, &cfg, source),
            ServeEvent::Completion {
                request,
                server,
                admitted_ticks,
                class,
            } => on_completion(state, sched, &cfg, request, server, admitted_ticks, class),
            ServeEvent::Fault(kind) => on_fault(state, sched, kind),
        });
        debug_assert!(matches!(outcome, RunOutcome::Stopped | RunOutcome::Drained));

        let elapsed = state.cluster.now().as_secs_f64();
        let base = ClusterRunReport {
            initial_census,
            final_census: state.cluster.census(),
            ratio_series: state.cluster.ledger().ratio_series(),
            sleeping_series: state.sleeping_series,
            load_series: state.load_series,
            decision_totals: state.cluster.ledger().totals(),
            migrations: state.cluster.migrations(),
            energy: state.cluster.energy(),
            migration_energy_j: state.cluster.migration_energy_j(),
            reference_energy_j: state.cluster.reference_power_w() * elapsed,
            admission: state.cluster.admission_stats(),
            saturation_violations: state.cluster.saturation_violations(),
            undesirable_server_intervals: state.cluster.undesirable_server_intervals(),
        };
        ServeReport {
            picker: cfg.picker.label(),
            base,
            requests_admitted: state.next_request,
            requests_completed: state.completed,
            requests_rejected: state.rejected,
            latency: state.latency,
            sla: state.sla,
            violation_seconds: state.violation_seconds,
            per_instance_served: state.per_instance_served,
            serve_energy_j: state.serve_energy_j,
            sleep_deferral_energy_j: state.sleep_deferral_energy_j,
            deferred_sleeps: state.deferred_sleeps,
            events_processed: engine.events_processed(),
        }
    }
}

type Sched<'a, T> = ecolb_simcore::engine::Scheduler<'a, ServeEvent, T>;

fn on_tick<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
) -> Control {
    let now = sched.now();
    let ServeState {
        cluster, injector, ..
    } = state;
    cluster.run_interval_traced(injector, sched.tracer());
    let (asleep, frac) = state.cluster.interval_stats();
    state.sleeping_series.push(asleep as f64);
    state.load_series.push(frac);

    // Discovery refresh: surface this interval's wake/sleep/crash and
    // migration effects to the picker, and charge sleep deferral for
    // servers the policy put down while they still queue work.
    state.discover.refresh(&state.cluster);
    let mut changes = std::mem::take(&mut state.changes);
    state.discover.poll_changes(&mut changes);
    for change in &changes {
        if let Change::Left(server) = change {
            let backlog = state.queues.backlog(now, *server);
            if !backlog.is_zero() {
                state.deferred_sleeps += 1;
                state.sleep_deferral_energy_j += backlog.as_secs_f64() * cfg.sleep_deferral_power_w;
            }
        }
    }
    state.picker.on_change(state.discover.instances(), &changes);
    state.changes = changes;

    state.intervals_left -= 1;
    if state.intervals_left > 0 {
        sched.schedule_in(state.realloc_interval, ServeEvent::ReallocationTick);
        Control::Continue
    } else if sched.pending() == 0 {
        Control::Stop
    } else {
        Control::Continue // drain in-flight completions
    }
}

fn on_arrival<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    source: u32,
) -> Control {
    let now = sched.now();
    let now_ticks = now.ticks();
    let src_idx = source as usize;
    let (app, class) = match state.sources.get(src_idx) {
        Some(s) => (s.app, s.class),
        None => return Control::Continue,
    };
    let request = state.next_request;
    state.next_request += 1;
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestAdmitted {
                request,
                app: app.0,
                class: class.index() as u8,
            },
        );
    }

    let view = state.queues.view(now);
    let choice = state
        .picker
        .pick(state.discover.instances(), &view, RequestId(request));
    match choice {
        None => {
            state.rejected += 1;
            state.sla.record_rejected(class.index());
            if sched.tracer().enabled() {
                sched.tracer().event(
                    now_ticks,
                    TraceEventKind::RequestRejected {
                        request,
                        reason: "no_instance",
                    },
                );
            }
        }
        Some(server) => {
            let backlog_s = state.queues.backlog(now, server).as_secs_f64();
            if backlog_s > cfg.reject_backlog_s {
                state.rejected += 1;
                state.sla.record_rejected(class.index());
                if sched.tracer().enabled() {
                    sched.tracer().event(
                        now_ticks,
                        TraceEventKind::RequestRejected {
                            request,
                            reason: "backlog",
                        },
                    );
                }
            } else {
                // Effective service stretches with the chosen server's
                // snapshot load: processor sharing under the background
                // VM demand.
                let (load, regime) = state
                    .discover
                    .instances()
                    .get(server.index())
                    .map(|i| (i.load, i.regime))
                    .unwrap_or((0.0, OperatingRegime::Optimal));
                let service =
                    service_time_s(state.seed, RequestId(request), cfg.load.mean_service_s);
                let eff = service / (1.0 - load.min(cfg.slowdown_load_cap)).max(1e-6);
                let (_start, done) =
                    state
                        .queues
                        .enqueue(now, server, SimDuration::from_secs_f64(eff));
                state.serve_energy_j +=
                    eff * cfg.request_power_w * regime_energy_multiplier(regime);
                state.per_instance_served[server.index()] += 1;
                if sched.tracer().enabled() {
                    sched.tracer().event(
                        now_ticks,
                        TraceEventKind::RequestRouted {
                            request,
                            server: server.0,
                        },
                    );
                }
                sched.schedule_at(
                    done,
                    ServeEvent::Completion {
                        request,
                        server,
                        admitted_ticks: now_ticks,
                        class: class.index() as u8,
                    },
                );
            }
        }
    }

    // Open loop: the next arrival of this source is independent of how
    // this request fared. The gap inverts the source's modulation
    // profile from the current instant (flat profiles reduce to the
    // plain exponential draw).
    if let Some(gap) =
        state.profiles[src_idx].next_gap_s(&mut state.sources[src_idx], now.as_secs_f64())
    {
        if let Some(at) = now.checked_add(SimDuration::from_secs_f64(gap)) {
            if at < state.horizon {
                sched.schedule_at(at, ServeEvent::Arrival { source });
            }
        }
    }
    Control::Continue
}

#[allow(clippy::too_many_arguments)]
fn on_completion<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    request: u64,
    server: ServerId,
    admitted_ticks: u64,
    class: u8,
) -> Control {
    let now_ticks = sched.now().ticks();
    let latency_ticks = now_ticks.saturating_sub(admitted_ticks);
    let latency_s = latency_ticks as f64 / 1e6;
    state.latency.record(latency_s);
    let objective = if class == 0 {
        cfg.gold_objective_s
    } else {
        cfg.bronze_objective_s
    };
    state.sla.record(class as usize, latency_s > objective);
    state.violation_seconds[(class as usize).min(1)] += (latency_s - objective).max(0.0);
    state.completed += 1;
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestCompleted {
                request,
                server: server.0,
                latency_us: latency_ticks,
            },
        );
    }
    if state.intervals_left == 0 && sched.pending() == 0 {
        Control::Stop
    } else {
        Control::Continue
    }
}

/// Applies a scheduled fault to the co-simulation: crash (spot reclaim)
/// or scripted recovery. A crash orphans the host's VMs into the
/// leader's admission queue and refreshes the discovery snapshot at
/// fault time, so pickers stop routing to the reclaimed server
/// immediately; its queued requests drain to completion
/// (reclaim-with-grace). Recovery re-enters the routable set at the next
/// reallocation tick, once the reboot actually reaches C0.
fn on_fault<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    kind: FaultEventKind,
) -> Control {
    if state.intervals_left == 0 {
        return Control::Continue; // past the final tick: unobservable
    }
    let now = sched.now();
    match kind {
        FaultEventKind::ServerCrash {
            server,
            recover_after,
        } => apply_serve_crash(state, sched, server, recover_after, now),
        FaultEventKind::LeaderCrash { recover_after } => {
            let leader = state.cluster.leader_host();
            apply_serve_crash(state, sched, leader, recover_after, now);
        }
        FaultEventKind::ServerRecover { server } => {
            if state.cluster.recover_server(server, now).is_some() {
                sched.tracer().event(
                    now.ticks(),
                    TraceEventKind::ServerRecovered { server: server.0 },
                );
            }
        }
    }
    Control::Continue
}

fn apply_serve_crash<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    server: ServerId,
    recover_after: Option<SimDuration>,
    now: SimTime,
) {
    if state.cluster.servers()[server.index()].is_crashed() {
        return;
    }
    sched.tracer().event(
        now.ticks(),
        TraceEventKind::ServerCrashed { server: server.0 },
    );
    let orphans = state.cluster.crash_server(server, now);
    state.cluster.readmit_orphans(orphans);
    // Surface the reclaim to the pickers right away — routing to a
    // crashed host between now and the next tick would be wrong.
    state.discover.refresh(&state.cluster);
    let mut changes = std::mem::take(&mut state.changes);
    state.discover.poll_changes(&mut changes);
    state.picker.on_change(state.discover.instances(), &changes);
    state.changes = changes;
    if let Some(delay) = recover_after {
        sched.schedule_in(
            delay,
            ServeEvent::Fault(FaultEventKind::ServerRecover { server }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_workload::generator::WorkloadSpec;

    fn config(n: usize, picker: PickerKind, intervals: u64) -> ServeConfig {
        ServeConfig::paper(
            ClusterConfig::paper(n, WorkloadSpec::paper_low_load()),
            picker,
            intervals,
        )
    }

    #[test]
    fn serve_run_is_deterministic() {
        for kind in PickerKind::all() {
            let a = ServeSim::new(config(20, kind, 4), 11).run();
            let b = ServeSim::new(config(20, kind, 4), 11).run();
            assert_eq!(a, b, "{}", kind.label());
        }
    }

    #[test]
    fn admitted_splits_into_completed_plus_rejected() {
        for kind in PickerKind::all() {
            let r = ServeSim::new(config(20, kind, 4), 7).run();
            assert!(r.requests_admitted > 0, "{}", kind.label());
            assert_eq!(
                r.requests_admitted,
                r.requests_completed + r.requests_rejected,
                "{}",
                kind.label()
            );
            assert_eq!(r.latency.count(), r.requests_completed);
            assert_eq!(r.sla.total_served(), r.requests_completed);
            assert_eq!(r.sla.total_rejected(), r.requests_rejected);
            assert_eq!(
                r.per_instance_served.iter().sum::<u64>(),
                r.requests_completed
            );
        }
    }

    #[test]
    fn cluster_decisions_are_picker_independent() {
        let reports: Vec<ServeReport> = PickerKind::all()
            .into_iter()
            .map(|k| ServeSim::new(config(24, k, 5), 13).run())
            .collect();
        for r in &reports[1..] {
            assert_eq!(
                r.base, reports[0].base,
                "{} vs {}",
                r.picker, reports[0].picker
            );
        }
    }

    #[test]
    fn serve_report_matches_plain_cluster_run() {
        let r = ServeSim::new(config(30, PickerKind::RoundRobin, 6), 5).run();
        let mut sync = Cluster::new(ClusterConfig::paper(30, WorkloadSpec::paper_low_load()), 5);
        let sync_report = sync.run(6);
        assert_eq!(r.base.ratio_series, sync_report.ratio_series);
        assert_eq!(r.base.decision_totals, sync_report.decision_totals);
        assert_eq!(r.base.final_census, sync_report.final_census);
        assert_eq!(r.base.migrations, sync_report.migrations);
    }

    #[test]
    fn empty_fault_plan_is_a_noop() {
        let mut with_empty = config(20, PickerKind::LeastLoaded, 4);
        with_empty.faults = Some(ecolb_faults::plan::FaultPlan::empty(11));
        let a = ServeSim::new(config(20, PickerKind::LeastLoaded, 4), 11).run();
        let b = ServeSim::new(with_empty, 11).run();
        assert_eq!(a, b);
    }

    #[test]
    fn flash_crowd_raises_traffic_and_violation_seconds_accrue() {
        use ecolb_workload::processes::{FlashCrowdSpec, RateModulation};
        let flat = ServeSim::new(config(20, PickerKind::LeastLoaded, 4), 9).run();
        let mut crowded_cfg = config(20, PickerKind::LeastLoaded, 4);
        crowded_cfg.modulation = RateModulation::FlashCrowd(FlashCrowdSpec {
            onset_s: 100.0,
            ramp_s: 60.0,
            decay_s: 200.0,
            participation: 1.0,
            ..FlashCrowdSpec::moderate()
        });
        let crowded = ServeSim::new(crowded_cfg.clone(), 9).run();
        assert!(
            crowded.requests_admitted > flat.requests_admitted,
            "crowd {} vs flat {}",
            crowded.requests_admitted,
            flat.requests_admitted
        );
        // The cluster layer never observes the serving traffic.
        assert_eq!(crowded.base, flat.base);
        assert!(crowded.violation_seconds[0] >= 0.0 && crowded.violation_seconds[1] >= 0.0);
        // Modulated runs replay byte-identically.
        assert_eq!(crowded, ServeSim::new(crowded_cfg, 9).run());
    }

    #[test]
    fn spot_reclaim_removes_the_server_from_the_routable_set() {
        use ecolb_simcore::time::SimTime;
        let victim = ServerId(3);
        let mut cfg = config(20, PickerKind::RoundRobin, 5);
        cfg.faults = Some(ecolb_faults::plan::FaultPlan::empty(13).with_server_crash(
            SimTime::from_secs(400),
            victim,
            None,
        ));
        let r = ServeSim::new(cfg, 13).run();
        let baseline = ServeSim::new(config(20, PickerKind::RoundRobin, 5), 13).run();
        // The reclaimed server serves strictly less than it would have.
        assert!(
            r.per_instance_served[victim.index()] < baseline.per_instance_served[victim.index()],
            "reclaimed {} vs baseline {}",
            r.per_instance_served[victim.index()],
            baseline.per_instance_served[victim.index()]
        );
        assert_eq!(
            r.requests_admitted,
            r.requests_completed + r.requests_rejected
        );
    }

    #[test]
    fn latency_samples_are_positive_and_energy_accrues() {
        let r = ServeSim::new(config(16, PickerKind::LeastLoaded, 4), 3).run();
        assert!(r.requests_completed > 0);
        assert!(r.latency.mean() > 0.0);
        assert!(r.p99_s() >= r.latency.p50());
        assert!(r.serve_energy_j > 0.0);
        assert!(r.total_energy_j() > r.base.energy.total_j());
        assert!(r.reject_fraction() >= 0.0 && r.reject_fraction() <= 1.0);
    }
}
