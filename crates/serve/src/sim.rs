//! `ServeSim`: co-simulation of request routing and the energy policy.
//!
//! One discrete-event engine drives two coupled layers. The *cluster*
//! layer is the unmodified §4 reallocation protocol — demand evolution,
//! regime classification, migrations, drain-and-sleep — ticking every
//! reallocation interval, exactly as in `TimedClusterSim`. The *serving*
//! layer rides on the same clock: open-loop request arrivals (one
//! Poisson source per initial application), a picked instance per
//! request, FIFO queueing per server, and a latency sample per
//! completion.
//!
//! The two layers interact in both directions:
//!
//! * **policy → routing** — every reallocation boundary refreshes the
//!   [`ClusterDiscover`] snapshot, so wake/sleep/crash decisions change
//!   the routable set the pickers see (and the `RegimeAware` picker
//!   additionally reads the regime classification itself);
//! * **routing → energy** — a request's *effective* service time
//!   stretches with the chosen server's load (`1/(1−load)` processor-
//!   sharing slowdown), and each effective-service-second draws
//!   [`ServeConfig::request_power_w`] scaled by the serving regime's
//!   energy-proportionality factor ([`regime_energy_multiplier`]): work
//!   done on a nearly idle server amortizes its fixed power draw over
//!   almost nothing, so a request served in R1/R2 costs more joules than
//!   the same request served in the optimal band — the §3 argument,
//!   applied per request. When the consolidation policy puts a server to sleep while
//!   it still holds queued requests, the remaining backlog is charged at
//!   [`ServeConfig::sleep_deferral_power_w`] — the server must stay up
//!   to drain before it can actually power down. A picker that keeps
//!   routing to drain candidates therefore pays for it in joules, and a
//!   picker that routes into overloaded servers pays in both joules and
//!   tail latency.
//!
//! The cluster's own decision stream is *identical* across pickers (the
//! serving layer never mutates cluster state or consumes its RNG), so a
//! picker comparison isolates the routing policy: same migrations, same
//! sleeps — different latency and different serve-side energy.

use std::collections::{BTreeMap, BTreeSet};

use crate::discover::{Change, ClusterDiscover, Discover, InstanceSet};
use crate::picker::{Picker, PickerKind};
use crate::queue::QueueModel;
use crate::resilience::{BackoffSchedule, BreakerBank, ResiliencePolicy, RetryBudget};
use ecolb_cluster::cluster::{Cluster, ClusterConfig, ClusterRunReport};
use ecolb_cluster::instances::InstanceInfo;
use ecolb_cluster::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_faults::inject::FaultInjector;
use ecolb_faults::plan::{FaultEventKind, FaultPlan};
use ecolb_metrics::latency::{LatencyRecorder, SlaClassCounters};
use ecolb_metrics::resilience::ResilienceCounters;
use ecolb_simcore::engine::{Control, Engine, RunOutcome};
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_trace::{NoTrace, TraceEventKind, Tracer};
use ecolb_workload::processes::{RateModulation, SourceProfile};
use ecolb_workload::requests::{service_time_s, OpenLoopSource, RequestId, RequestLoadSpec};

/// Serving-layer configuration on top of a cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The cluster the requests are served by.
    pub cluster: ClusterConfig,
    /// Request traffic shape (per-app rates, service-time mean, SLA mix).
    pub load: RequestLoadSpec,
    /// Time-varying arrival modulation across the sources (flash crowds,
    /// diurnal waves). `Flat` is byte-identical to the unmodulated
    /// process.
    pub modulation: RateModulation,
    /// Scheduled faults injected into the co-simulation — the seam the
    /// scenario layer uses for spot/preemptible reclaims. `None` (and an
    /// empty plan) is a structural no-op. Scheduled crashes refresh the
    /// discovery snapshot immediately, so pickers stop routing to a
    /// reclaimed server at reclaim time, not at the next tick. A crash
    /// destroys the server's request queue: every in-flight request on
    /// it is killed and counted as failed per SLA class — or retried,
    /// when the resilience policy grants a retry. Message-delay families
    /// are inert here: the serving engine does not simulate migration
    /// transfers on the wire.
    pub faults: Option<FaultPlan>,
    /// The request-level resilience stack (deadlines, retries, hedging,
    /// breakers, shedding). [`ResiliencePolicy::disabled`] is a
    /// structural no-op: zero extra RNG draws, byte-identical report
    /// and trace.
    pub resilience: ResiliencePolicy,
    /// The routing strategy under test.
    pub picker: PickerKind,
    /// Reallocation intervals to simulate.
    pub intervals: u64,
    /// Admission bound: a request is rejected when the chosen server
    /// already queues more than this many seconds of work.
    pub reject_backlog_s: f64,
    /// Gold-class latency objective, seconds.
    pub gold_objective_s: f64,
    /// Bronze-class latency objective, seconds.
    pub bronze_objective_s: f64,
    /// Marginal power drawn per effective-service-second, watts.
    pub request_power_w: f64,
    /// Power charged while a sleeping-ordered server drains its request
    /// backlog, watts.
    pub sleep_deferral_power_w: f64,
    /// Load cap in the `1/(1−load)` slowdown (keeps the stretch finite
    /// on saturated servers).
    pub slowdown_load_cap: f64,
    /// Latency histogram range `[0, hi)`, seconds.
    pub latency_hi_s: f64,
    /// Latency histogram bins.
    pub latency_bins: usize,
}

/// Energy-proportionality factor of serving one request in a given
/// regime: joules per effective-service-second relative to the optimal
/// band. Real servers are far from energy-proportional (§3): a nearly
/// idle server amortizes its fixed power draw over very little work, so
/// work placed in R1 costs about twice what the same work costs in R3;
/// the saturated band pays a smaller premium (contention, not idle
/// waste). The multiplier applies to [`ServeConfig::request_power_w`].
pub fn regime_energy_multiplier(regime: OperatingRegime) -> f64 {
    match regime {
        OperatingRegime::UndesirableLow => 2.0,
        OperatingRegime::SuboptimalLow => 1.5,
        OperatingRegime::Optimal => 1.0,
        OperatingRegime::SuboptimalHigh => 1.05,
        OperatingRegime::UndesirableHigh => 1.25,
    }
}

impl ServeConfig {
    /// Paper-shaped defaults around a given cluster config: moderate
    /// open-loop traffic, a 2 s admission bound, 500 ms gold / 2 s
    /// bronze objectives, and serve-side power small relative to a
    /// server's idle draw.
    pub fn paper(cluster: ClusterConfig, picker: PickerKind, intervals: u64) -> Self {
        ServeConfig {
            cluster,
            load: RequestLoadSpec::moderate(),
            modulation: RateModulation::Flat,
            faults: None,
            resilience: ResiliencePolicy::disabled(),
            picker,
            intervals,
            reject_backlog_s: 2.0,
            gold_objective_s: 0.5,
            bronze_objective_s: 2.0,
            request_power_w: 40.0,
            sleep_deferral_power_w: 120.0,
            slowdown_load_cap: 0.9,
            latency_hi_s: 8.0,
            latency_bins: 64,
        }
    }
}

/// Events of the serving co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// End of a reallocation interval: demand evolution + balancing +
    /// discovery refresh.
    ReallocationTick,
    /// The next request of an open-loop source arrives.
    Arrival {
        /// Index into the source table.
        source: u32,
    },
    /// A routed request finishes service.
    Completion {
        /// The request id.
        request: u64,
        /// The server that served it.
        server: ServerId,
        /// Admission instant, integer ticks, for exact latency.
        admitted_ticks: u64,
        /// SLA class index of the request.
        class: u8,
        /// Attempt identity (0 = original; retries count up; the hedge
        /// twin carries [`HEDGE_BIT`]). Distinguishes a live completion
        /// from one whose attempt was crash-killed earlier.
        attempt: u32,
    },
    /// A backoff delay elapsed: the resilience layer re-dispatches a
    /// failed request.
    Retry {
        /// The request id.
        request: u64,
        /// SLA class index of the request.
        class: u8,
        /// Original admission instant, integer ticks — deadlines and
        /// latency are measured from first admission, not from the
        /// retry.
        admitted_ticks: u64,
        /// Retry ordinal being dispatched (1 = first retry).
        attempt: u32,
    },
    /// A scheduled fault from the plan fires (spot reclaim, crash,
    /// scripted recovery).
    Fault(FaultEventKind),
}

/// Attempt-id flag marking the hedged (duplicate) attempt of a request.
pub const HEDGE_BIT: u32 = 1 << 31;

/// One attempt occupying a server's queue — killed (and possibly
/// retried) when that server crashes.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    request: u64,
    class: u8,
    admitted_ticks: u64,
    attempt: u32,
}

/// Outstanding-attempt bookkeeping of a hedged request: the first
/// completion resolves it, the straggler is absorbed silently.
#[derive(Debug, Clone, Copy)]
struct HedgeTrack {
    outstanding: u8,
    resolved: bool,
}

/// Why a dispatch attempt could not be served — decides both the retry
/// eligibility and the terminal accounting bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailCause {
    /// The picker found no routable instance.
    NoInstance,
    /// The chosen server exceeded the hard admission bound.
    Backlog,
    /// The predicted latency already exceeded the request's deadline.
    Deadline,
    /// The serving instance crashed with the attempt queued.
    Crash,
}

impl FailCause {
    fn reason(self) -> &'static str {
        match self {
            FailCause::NoInstance => "no_instance",
            FailCause::Backlog => "backlog",
            FailCause::Deadline => "deadline",
            FailCause::Crash => "crash",
        }
    }
}

/// Everything a `ServeSim` run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The routing strategy that produced this report.
    pub picker: &'static str,
    /// The capacity-level cluster report (identical across pickers for
    /// the same cluster config and seed).
    pub base: ClusterRunReport,
    /// Requests admitted into the serving layer. Conservation:
    /// `admitted == completed + rejected + failed`.
    pub requests_admitted: u64,
    /// Requests that completed service.
    pub requests_completed: u64,
    /// Requests rejected (no awake instance, admission bound, deadline
    /// guard, or load shedding).
    pub requests_rejected: u64,
    /// Requests lost terminally to instance crashes — queued on a
    /// server when it crashed and not rescued by a retry or a surviving
    /// hedge twin.
    pub requests_failed: u64,
    /// End-to-end latency profile (queueing + service).
    pub latency: LatencyRecorder,
    /// Per-SLA-class served/violated/rejected counters.
    pub sla: SlaClassCounters,
    /// Cumulative latency overrun past each class objective, seconds
    /// (index 0 = gold, 1 = bronze) — the SLA axis of the Pareto
    /// frontier: not just *how many* requests missed, but by how much.
    pub violation_seconds: [f64; 2],
    /// Requests served per server (server-id index).
    pub per_instance_served: Vec<u64>,
    /// Serve-side energy: Σ effective service × request power, joules.
    pub serve_energy_j: f64,
    /// Energy charged to draining backlogged servers the policy slept,
    /// joules.
    pub sleep_deferral_energy_j: f64,
    /// Sleep decisions that found a non-empty request queue.
    pub deferred_sleeps: u64,
    /// Resilience-layer activity (retries, hedges, sheds, breaker
    /// transitions, per-class failures). All-zero except `failed_*`
    /// when the policy is disabled.
    pub resilience: ResilienceCounters,
    /// Total events the engine processed.
    pub events_processed: u64,
}

impl ServeReport {
    /// Cluster energy plus both serve-side charges, joules — the energy
    /// axis of the energy-vs-p99 frontier.
    pub fn total_energy_j(&self) -> f64 {
        self.base.energy.total_j() + self.serve_energy_j + self.sleep_deferral_energy_j
    }

    /// P² estimate of the 99th-percentile latency, seconds.
    pub fn p99_s(&self) -> f64 {
        self.latency.p99()
    }

    /// Rejected fraction of admitted requests; defined 0.0 when no
    /// request ever arrived.
    pub fn reject_fraction(&self) -> f64 {
        if self.requests_admitted == 0 {
            0.0
        } else {
            self.requests_rejected as f64 / self.requests_admitted as f64
        }
    }
}

/// The request/energy co-simulation. See the module docs.
#[derive(Debug)]
pub struct ServeSim {
    config: ServeConfig,
    seed: u64,
}

struct ServeState {
    cluster: Cluster,
    discover: ClusterDiscover,
    picker: Box<dyn Picker>,
    queues: QueueModel,
    sources: Vec<OpenLoopSource>,
    profiles: Vec<SourceProfile>,
    injector: FaultInjector,
    changes: Vec<Change>,
    horizon: SimTime,
    realloc_interval: SimDuration,
    intervals_left: u64,
    seed: u64,
    // Resilience.
    breakers: BreakerBank,
    budget: RetryBudget,
    in_flight: Vec<Vec<InFlight>>,
    killed: BTreeSet<(u64, u32)>,
    hedges: BTreeMap<u64, HedgeTrack>,
    filtered: InstanceSet,
    filter_scratch: Vec<InstanceInfo>,
    filtered_dirty: bool,
    reopened_scratch: Vec<ServerId>,
    // Measurement.
    next_request: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    counters: ResilienceCounters,
    latency: LatencyRecorder,
    sla: SlaClassCounters,
    violation_seconds: [f64; 2],
    per_instance_served: Vec<u64>,
    serve_energy_j: f64,
    sleep_deferral_energy_j: f64,
    deferred_sleeps: u64,
    sleeping_series: ecolb_metrics::timeseries::TimeSeries,
    load_series: ecolb_metrics::timeseries::TimeSeries,
}

impl ServeSim {
    /// Creates the co-simulation for the given config and seed. The
    /// seed feeds the cluster exactly as in `TimedClusterSim` plus the
    /// keyed request streams (arrivals, service times, picker choices).
    pub fn new(config: ServeConfig, seed: u64) -> Self {
        ServeSim { config, seed }
    }

    /// Runs to completion and returns the serving report.
    pub fn run(self) -> ServeReport {
        self.run_traced(&mut NoTrace)
    }

    /// [`ServeSim::run`] with a tracer observing engine dispatch, the
    /// cluster protocol *and* the request path (`request_admit`,
    /// `request_route`, `request_complete`, `request_reject`).
    pub fn run_traced<T: Tracer>(self, tracer: &mut T) -> ServeReport {
        let seed = self.seed;
        let cfg = self.config;
        let cluster = Cluster::new(cfg.cluster.clone(), seed);
        let realloc_interval = cluster.config().realloc_interval;
        let n_servers = cluster.servers().len();
        let horizon = SimTime::ZERO
            + SimDuration::from_ticks(realloc_interval.ticks().saturating_mul(cfg.intervals));

        // One open-loop source per initial application, in (server, app)
        // placement order — the source index keys its arrival stream,
        // and its modulation profile (flash-crowd participation, diurnal
        // phase) keys an independent stream on the same index.
        let mut sources = Vec::new();
        let mut profiles = Vec::new();
        for server in cluster.servers() {
            for app in server.apps() {
                let idx = sources.len() as u64;
                sources.push(cfg.load.source_for(seed, idx, app));
                profiles.push(cfg.modulation.profile_for(seed, idx));
            }
        }
        let fault_plan = cfg.faults.clone().unwrap_or_else(|| FaultPlan::empty(seed));

        let discover = ClusterDiscover::new(&cluster);
        let mut state = ServeState {
            discover,
            picker: cfg.picker.build(seed),
            queues: QueueModel::new(n_servers),
            sources,
            profiles,
            injector: FaultInjector::new(&fault_plan, n_servers),
            changes: Vec::new(),
            horizon,
            realloc_interval,
            intervals_left: cfg.intervals,
            seed,
            breakers: BreakerBank::new(n_servers),
            budget: RetryBudget::new(cfg.resilience.retry.budget),
            in_flight: vec![Vec::new(); n_servers],
            killed: BTreeSet::new(),
            hedges: BTreeMap::new(),
            filtered: InstanceSet::default(),
            filter_scratch: Vec::new(),
            filtered_dirty: true,
            reopened_scratch: Vec::new(),
            next_request: 0,
            completed: 0,
            rejected: 0,
            failed: 0,
            counters: ResilienceCounters::default(),
            latency: LatencyRecorder::new(cfg.latency_hi_s, cfg.latency_bins),
            sla: SlaClassCounters::new(),
            violation_seconds: [0.0; 2],
            per_instance_served: vec![0; n_servers],
            serve_energy_j: 0.0,
            sleep_deferral_energy_j: 0.0,
            deferred_sleeps: 0,
            sleeping_series: ecolb_metrics::timeseries::TimeSeries::new("sleeping_servers"),
            load_series: ecolb_metrics::timeseries::TimeSeries::new("cluster_load"),
            cluster,
        };
        let initial_census = state.cluster.census();

        let mut engine: Engine<ServeEvent> = Engine::with_capacity(256);
        engine.schedule_at(
            SimTime::ZERO + realloc_interval,
            ServeEvent::ReallocationTick,
        );
        for (i, source) in state.sources.iter_mut().enumerate() {
            if let Some(gap) = state.profiles[i].next_gap_s(source, 0.0) {
                let at = SimTime::ZERO + SimDuration::from_secs_f64(gap);
                if at < horizon {
                    engine.schedule_at(at, ServeEvent::Arrival { source: i as u32 });
                }
            }
        }
        // Faults beyond the horizon can never be observed; drop them so
        // the engine drain stays bounded.
        for ev in &fault_plan.events {
            if ev.at <= horizon {
                engine.schedule_at(ev.at, ServeEvent::Fault(ev.kind));
            }
        }

        let outcome = engine.run_traced(&mut state, tracer, |state, sched, event| match event {
            ServeEvent::ReallocationTick => on_tick(state, sched, &cfg),
            ServeEvent::Arrival { source } => on_arrival(state, sched, &cfg, source),
            ServeEvent::Completion {
                request,
                server,
                admitted_ticks,
                class,
                attempt,
            } => on_completion(
                state,
                sched,
                &cfg,
                request,
                server,
                admitted_ticks,
                class,
                attempt,
            ),
            ServeEvent::Retry {
                request,
                class,
                admitted_ticks,
                attempt,
            } => on_retry(state, sched, &cfg, request, class, admitted_ticks, attempt),
            ServeEvent::Fault(kind) => on_fault(state, sched, &cfg, kind),
        });
        debug_assert!(matches!(outcome, RunOutcome::Stopped | RunOutcome::Drained));

        let elapsed = state.cluster.now().as_secs_f64();
        let base = ClusterRunReport {
            initial_census,
            final_census: state.cluster.census(),
            ratio_series: state.cluster.ledger().ratio_series(),
            sleeping_series: state.sleeping_series,
            load_series: state.load_series,
            decision_totals: state.cluster.ledger().totals(),
            migrations: state.cluster.migrations(),
            energy: state.cluster.energy(),
            migration_energy_j: state.cluster.migration_energy_j(),
            reference_energy_j: state.cluster.reference_power_w() * elapsed,
            admission: state.cluster.admission_stats(),
            saturation_violations: state.cluster.saturation_violations(),
            undesirable_server_intervals: state.cluster.undesirable_server_intervals(),
        };
        ServeReport {
            picker: cfg.picker.label(),
            base,
            requests_admitted: state.next_request,
            requests_completed: state.completed,
            requests_rejected: state.rejected,
            requests_failed: state.failed,
            latency: state.latency,
            sla: state.sla,
            violation_seconds: state.violation_seconds,
            per_instance_served: state.per_instance_served,
            serve_energy_j: state.serve_energy_j,
            sleep_deferral_energy_j: state.sleep_deferral_energy_j,
            deferred_sleeps: state.deferred_sleeps,
            resilience: state.counters,
            events_processed: engine.events_processed(),
        }
    }
}

type Sched<'a, T> = ecolb_simcore::engine::Scheduler<'a, ServeEvent, T>;

fn on_tick<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
) -> Control {
    let now = sched.now();
    let ServeState {
        cluster, injector, ..
    } = state;
    cluster.run_interval_traced(injector, sched.tracer());
    let (asleep, frac) = state.cluster.interval_stats();
    state.sleeping_series.push(asleep as f64);
    state.load_series.push(frac);

    // Discovery refresh: surface this interval's wake/sleep/crash and
    // migration effects to the picker, and charge sleep deferral for
    // servers the policy put down while they still queue work.
    state.discover.refresh(&state.cluster);
    let mut changes = std::mem::take(&mut state.changes);
    state.discover.poll_changes(&mut changes);
    let res = &cfg.resilience;
    for change in &changes {
        match change {
            Change::Left(server) => {
                let backlog = state.queues.backlog(now, *server);
                if !backlog.is_zero() {
                    state.deferred_sleeps += 1;
                    state.sleep_deferral_energy_j +=
                        backlog.as_secs_f64() * cfg.sleep_deferral_power_w;
                }
            }
            Change::Joined(server) => {
                // A rejoin (recovery or wake) is fresh evidence: close
                // any breaker still open on the server.
                if res.enabled && res.breaker.enabled && state.breakers.reset(*server) {
                    state.counters.breaker_closes += 1;
                    if sched.tracer().enabled() {
                        sched.tracer().event(
                            now.ticks(),
                            TraceEventKind::BreakerClosed { server: server.0 },
                        );
                    }
                }
            }
            Change::Updated(_) => {}
        }
    }
    if !changes.is_empty() {
        state.filtered_dirty = true;
    }
    state.picker.on_change(state.discover.instances(), &changes);
    state.changes = changes;

    state.intervals_left -= 1;
    if state.intervals_left > 0 {
        sched.schedule_in(state.realloc_interval, ServeEvent::ReallocationTick);
        Control::Continue
    } else if sched.pending() == 0 {
        Control::Stop
    } else {
        Control::Continue // drain in-flight completions
    }
}

fn on_arrival<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    source: u32,
) -> Control {
    let now = sched.now();
    let now_ticks = now.ticks();
    let src_idx = source as usize;
    let (app, class) = match state.sources.get(src_idx) {
        Some(s) => (s.app, s.class),
        None => return Control::Continue,
    };
    let request = state.next_request;
    state.next_request += 1;
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestAdmitted {
                request,
                app: app.0,
                class: class.index() as u8,
            },
        );
    }

    // Every admission refills the retry budget, then the request takes
    // its first dispatch attempt through the resilience stack (which
    // degrades to the plain route/reject path when disabled).
    if cfg.resilience.enabled && cfg.resilience.retry.enabled {
        state.budget.deposit();
    }
    dispatch_attempt(
        state,
        sched,
        cfg,
        request,
        class.index() as u8,
        now_ticks,
        0,
    );

    // Open loop: the next arrival of this source is independent of how
    // this request fared. The gap inverts the source's modulation
    // profile from the current instant (flat profiles reduce to the
    // plain exponential draw).
    if let Some(gap) =
        state.profiles[src_idx].next_gap_s(&mut state.sources[src_idx], now.as_secs_f64())
    {
        if let Some(at) = now.checked_add(SimDuration::from_secs_f64(gap)) {
            if at < state.horizon {
                sched.schedule_at(at, ServeEvent::Arrival { source });
            }
        }
    }
    Control::Continue
}

/// One dispatch attempt of a request through the resilience stack:
/// breaker filtering, pick, shed/backlog/deadline guards, enqueue, and
/// an optional gold hedge. With the policy disabled this is exactly the
/// plain route-or-reject path — same pick key, same RNG draws, same
/// trace events.
#[allow(clippy::too_many_arguments)]
fn dispatch_attempt<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    request: u64,
    class: u8,
    admitted_ticks: u64,
    attempt: u32,
) {
    let now = sched.now();
    let now_ticks = now.ticks();
    let res = &cfg.resilience;
    let breakers_on = res.enabled && res.breaker.enabled;

    // Open windows elapse lazily, checked at dispatch time: an expired
    // breaker moves to half-open (routable probe) before the pick.
    if breakers_on && state.breakers.open_count() > 0 {
        let mut reopened = std::mem::take(&mut state.reopened_scratch);
        reopened.clear();
        state.breakers.poll_expired(now, &mut reopened);
        for server in &reopened {
            state.filtered_dirty = true;
            state.counters.breaker_closes += 1;
            if sched.tracer().enabled() {
                sched.tracer().event(
                    now_ticks,
                    TraceEventKind::BreakerClosed { server: server.0 },
                );
            }
        }
        state.reopened_scratch = reopened;
    }

    // While any breaker is open the picker sees a filtered instance
    // set; otherwise it sees the discovery snapshot untouched (the
    // disabled-policy fast path).
    let use_filtered = breakers_on && state.breakers.open_count() > 0;
    if use_filtered && state.filtered_dirty {
        let mut scratch = std::mem::take(&mut state.filter_scratch);
        scratch.clear();
        for inst in state.discover.instances().instances() {
            if !state.breakers.is_open(inst.id) {
                scratch.push(*inst);
            }
        }
        state.filtered.replace_from(&scratch);
        state.filter_scratch = scratch;
        state.filtered_dirty = false;
    }

    let view = state.queues.view(now);
    // Retries re-key the pick so a retry is not glued to the server
    // that just failed it; attempt 0 preserves the original key.
    let pick_key = RequestId(request ^ ((attempt as u64) << 56));
    let set = if use_filtered {
        &state.filtered
    } else {
        state.discover.instances()
    };
    let choice = state.picker.pick(set, &view, pick_key);
    let server = match choice {
        Some(server) => server,
        None => {
            fail_attempt(
                state,
                sched,
                cfg,
                request,
                class,
                admitted_ticks,
                attempt,
                FailCause::NoInstance,
            );
            return;
        }
    };

    let backlog_s = state.queues.backlog(now, server).as_secs_f64();

    // SLA-class shedding is terminal, not retriable: the point is to
    // drop load, and a retry would put it straight back.
    if res.enabled && res.shed.enabled && backlog_s > res.shed.watermark_s(class as usize) {
        state.counters.record_shed(class as usize);
        state.rejected += 1;
        state.sla.record_rejected(class as usize);
        if sched.tracer().enabled() {
            sched
                .tracer()
                .event(now_ticks, TraceEventKind::RequestShed { request, class });
            sched.tracer().event(
                now_ticks,
                TraceEventKind::RequestRejected {
                    request,
                    reason: "shed",
                },
            );
        }
        return;
    }

    if backlog_s > cfg.reject_backlog_s {
        fail_attempt(
            state,
            sched,
            cfg,
            request,
            class,
            admitted_ticks,
            attempt,
            FailCause::Backlog,
        );
        return;
    }

    // Effective service stretches with the chosen server's snapshot
    // load: processor sharing under the background VM demand. The
    // service draw is keyed on the original request id, identical
    // across attempts.
    let (load, regime) = state
        .discover
        .instances()
        .get(server.index())
        .map(|i| (i.load, i.regime))
        .unwrap_or((0.0, OperatingRegime::Optimal));
    let service = service_time_s(state.seed, RequestId(request), cfg.load.mean_service_s);
    let eff = service / (1.0 - load.min(cfg.slowdown_load_cap)).max(1e-6);

    // Deadline guard: fail at dispatch what would miss its deadline
    // anyway, and feed the chosen server's breaker — a queue deep
    // enough to blow deadlines is the sim analogue of timing out.
    let objective = if class == 0 {
        cfg.gold_objective_s
    } else {
        cfg.bronze_objective_s
    };
    if let Some(deadline_s) = res.deadline_s(objective) {
        let elapsed_s = now_ticks.saturating_sub(admitted_ticks) as f64 / 1e6;
        if elapsed_s + backlog_s + eff > deadline_s {
            state.counters.deadline_misses += 1;
            if breakers_on && state.breakers.record_failure(server, now, &res.breaker) {
                state.filtered_dirty = true;
                state.counters.breaker_opens += 1;
                if sched.tracer().enabled() {
                    sched.tracer().event(
                        now_ticks,
                        TraceEventKind::BreakerOpened { server: server.0 },
                    );
                }
            }
            fail_attempt(
                state,
                sched,
                cfg,
                request,
                class,
                admitted_ticks,
                attempt,
                FailCause::Deadline,
            );
            return;
        }
    }

    let (_start, done) = state
        .queues
        .enqueue(now, server, SimDuration::from_secs_f64(eff));
    state.serve_energy_j += eff * cfg.request_power_w * regime_energy_multiplier(regime);
    state.in_flight[server.index()].push(InFlight {
        request,
        class,
        admitted_ticks,
        attempt,
    });
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestRouted {
                request,
                server: server.0,
            },
        );
    }
    sched.schedule_at(
        done,
        ServeEvent::Completion {
            request,
            server,
            admitted_ticks,
            class,
            attempt,
        },
    );

    // Gold hedge: when the primary's predicted latency is slow, race a
    // duplicate on the least-backlogged alternate; first completion
    // wins, the straggler is absorbed. The duplicate costs real energy.
    if res.enabled && res.hedge.enabled && class == 0 && attempt == 0 {
        let predicted_s = backlog_s + eff;
        if predicted_s > res.hedge.threshold_s {
            let hedge_set = if use_filtered {
                &state.filtered
            } else {
                state.discover.instances()
            };
            if let Some(alt) = hedge_alternate(hedge_set, &state.queues, now, server) {
                let (alt_load, alt_regime) = state
                    .discover
                    .instances()
                    .get(alt.index())
                    .map(|i| (i.load, i.regime))
                    .unwrap_or((0.0, OperatingRegime::Optimal));
                let alt_eff = service / (1.0 - alt_load.min(cfg.slowdown_load_cap)).max(1e-6);
                let (_alt_start, alt_done) =
                    state
                        .queues
                        .enqueue(now, alt, SimDuration::from_secs_f64(alt_eff));
                state.serve_energy_j +=
                    alt_eff * cfg.request_power_w * regime_energy_multiplier(alt_regime);
                state.in_flight[alt.index()].push(InFlight {
                    request,
                    class,
                    admitted_ticks,
                    attempt: HEDGE_BIT,
                });
                state.hedges.insert(
                    request,
                    HedgeTrack {
                        outstanding: 2,
                        resolved: false,
                    },
                );
                state.counters.hedges += 1;
                if sched.tracer().enabled() {
                    sched.tracer().event(
                        now_ticks,
                        TraceEventKind::RequestHedge {
                            request,
                            server: alt.0,
                        },
                    );
                }
                sched.schedule_at(
                    alt_done,
                    ServeEvent::Completion {
                        request,
                        server: alt,
                        admitted_ticks,
                        class,
                        attempt: HEDGE_BIT,
                    },
                );
            }
        }
    }
}

/// The least-backlogged routable alternate to `primary` (ties to the
/// lower server id), or `None` when the primary is the only choice.
fn hedge_alternate(
    set: &InstanceSet,
    queues: &QueueModel,
    now: SimTime,
    primary: ServerId,
) -> Option<ServerId> {
    let mut best: Option<(u64, ServerId)> = None;
    for &idx in set.awake_indices() {
        let inst = &set.instances()[idx];
        if inst.id == primary {
            continue;
        }
        let backlog = queues.backlog(now, inst.id).ticks();
        if best.map_or(true, |(b, _)| backlog < b) {
            best = Some((backlog, inst.id));
        }
    }
    best.map(|(_, id)| id)
}

/// A dispatch attempt failed: schedule a budgeted backoff retry when
/// the ladder allows it, otherwise settle the request terminally
/// (crash-killed attempts count as failures, everything else as a
/// rejection).
#[allow(clippy::too_many_arguments)]
fn fail_attempt<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    request: u64,
    class: u8,
    admitted_ticks: u64,
    attempt: u32,
    cause: FailCause,
) {
    let now_ticks = sched.now().ticks();
    let res = &cfg.resilience;
    let next = (attempt & !HEDGE_BIT) + 1;
    if res.enabled && res.retry.enabled && next <= res.retry.max_attempts {
        if state.budget.try_withdraw() {
            state.counters.retries += 1;
            let schedule = BackoffSchedule::new(state.seed, RequestId(request), &res.retry);
            let delay = SimDuration::from_secs_f64(schedule.delay_s(next));
            if sched.tracer().enabled() {
                sched.tracer().event(
                    now_ticks,
                    TraceEventKind::RequestRetry {
                        request,
                        attempt: next,
                        delay_us: delay.ticks(),
                    },
                );
            }
            sched.schedule_in(
                delay,
                ServeEvent::Retry {
                    request,
                    class,
                    admitted_ticks,
                    attempt: next,
                },
            );
            return;
        }
        state.counters.retries_denied += 1;
    }
    match cause {
        FailCause::Crash => {
            state.failed += 1;
            state.counters.record_failed(class as usize);
        }
        _ => {
            state.rejected += 1;
            state.sla.record_rejected(class as usize);
        }
    }
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestRejected {
                request,
                reason: cause.reason(),
            },
        );
    }
}

/// A backoff delay elapsed: re-dispatch the request.
fn on_retry<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    request: u64,
    class: u8,
    admitted_ticks: u64,
    attempt: u32,
) -> Control {
    dispatch_attempt(state, sched, cfg, request, class, admitted_ticks, attempt);
    stop_check(state, sched)
}

/// Past the final reallocation tick the engine stops once the last
/// in-flight completion or retry drains.
fn stop_check<T: Tracer>(state: &ServeState, sched: &Sched<'_, T>) -> Control {
    if state.intervals_left == 0 && sched.pending() == 0 {
        Control::Stop
    } else {
        Control::Continue
    }
}

#[allow(clippy::too_many_arguments)]
fn on_completion<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    request: u64,
    server: ServerId,
    admitted_ticks: u64,
    class: u8,
    attempt: u32,
) -> Control {
    // The attempt may have been crash-killed after its completion was
    // scheduled; the kill set marks those tombstones.
    if state.killed.remove(&(request, attempt)) {
        return stop_check(state, sched);
    }
    if let Some(in_flight) = state.in_flight.get_mut(server.index()) {
        if let Some(pos) = in_flight
            .iter()
            .position(|e| e.request == request && e.attempt == attempt)
        {
            in_flight.remove(pos);
        }
    }
    let res = &cfg.resilience;
    if res.enabled && res.breaker.enabled {
        state.breakers.record_success(server);
    }
    if res.enabled && res.hedge.enabled {
        if let Some(track) = state.hedges.get_mut(&request) {
            track.outstanding -= 1;
            let first = !track.resolved;
            track.resolved = true;
            if track.outstanding == 0 {
                state.hedges.remove(&request);
            }
            if !first {
                // The straggler of a resolved hedge: the work was done
                // (energy already charged) but the request has settled.
                return stop_check(state, sched);
            }
        }
    }
    let now_ticks = sched.now().ticks();
    let latency_ticks = now_ticks.saturating_sub(admitted_ticks);
    let latency_s = latency_ticks as f64 / 1e6;
    state.latency.record(latency_s);
    let objective = if class == 0 {
        cfg.gold_objective_s
    } else {
        cfg.bronze_objective_s
    };
    state.sla.record(class as usize, latency_s > objective);
    state.violation_seconds[(class as usize).min(1)] += (latency_s - objective).max(0.0);
    state.completed += 1;
    state.per_instance_served[server.index()] += 1;
    if sched.tracer().enabled() {
        sched.tracer().event(
            now_ticks,
            TraceEventKind::RequestCompleted {
                request,
                server: server.0,
                latency_us: latency_ticks,
            },
        );
    }
    stop_check(state, sched)
}

/// Applies a scheduled fault to the co-simulation: crash (spot reclaim)
/// or scripted recovery. A crash orphans the host's VMs into the
/// leader's admission queue and refreshes the discovery snapshot at
/// fault time, so pickers stop routing to the reclaimed server
/// immediately. The crash destroys the server's request queue: every
/// queued attempt is killed and settled as a per-class failure unless
/// the resilience policy rescues it (a retry, or a surviving hedge
/// twin). Recovery re-enters the routable set at the next reallocation
/// tick, once the reboot actually reaches C0.
fn on_fault<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    kind: FaultEventKind,
) -> Control {
    if state.intervals_left == 0 {
        return Control::Continue; // past the final tick: unobservable
    }
    let now = sched.now();
    match kind {
        FaultEventKind::ServerCrash {
            server,
            recover_after,
        } => apply_serve_crash(state, sched, cfg, server, recover_after, now),
        FaultEventKind::LeaderCrash { recover_after } => {
            let leader = state.cluster.leader_host();
            apply_serve_crash(state, sched, cfg, leader, recover_after, now);
        }
        FaultEventKind::ServerRecover { server } => {
            if state.cluster.recover_server(server, now).is_some() {
                sched.tracer().event(
                    now.ticks(),
                    TraceEventKind::ServerRecovered { server: server.0 },
                );
            }
        }
    }
    Control::Continue
}

fn apply_serve_crash<T: Tracer>(
    state: &mut ServeState,
    sched: &mut Sched<'_, T>,
    cfg: &ServeConfig,
    server: ServerId,
    recover_after: Option<SimDuration>,
    now: SimTime,
) {
    if state.cluster.servers()[server.index()].is_crashed() {
        return;
    }
    sched.tracer().event(
        now.ticks(),
        TraceEventKind::ServerCrashed { server: server.0 },
    );
    let orphans = state.cluster.crash_server(server, now);
    state.cluster.readmit_orphans(orphans);
    // Surface the reclaim to the pickers right away — routing to a
    // crashed host between now and the next tick would be wrong.
    state.discover.refresh(&state.cluster);
    let mut changes = std::mem::take(&mut state.changes);
    state.discover.poll_changes(&mut changes);
    state.picker.on_change(state.discover.instances(), &changes);
    let res = &cfg.resilience;
    if !changes.is_empty() {
        state.filtered_dirty = true;
    }
    state.changes = changes;
    // Crash evidence trips the breaker straight to open, so retries of
    // the killed requests route elsewhere even before the next refresh.
    if res.enabled && res.breaker.enabled && state.breakers.trip(server, now, &res.breaker) {
        state.counters.breaker_opens += 1;
        if sched.tracer().enabled() {
            sched.tracer().event(
                now.ticks(),
                TraceEventKind::BreakerOpened { server: server.0 },
            );
        }
    }
    // The dead queue is lost: kill every in-flight attempt and settle
    // each (retry, absorbed by a hedge twin, or counted failed).
    let victims = std::mem::take(&mut state.in_flight[server.index()]);
    state.queues.reset(server);
    for victim in &victims {
        state.killed.insert((victim.request, victim.attempt));
        let mut terminal = true;
        if res.enabled && res.hedge.enabled {
            if let Some(track) = state.hedges.get_mut(&victim.request) {
                track.outstanding -= 1;
                let resolved = track.resolved;
                let twin_alive = track.outstanding > 0;
                if !twin_alive {
                    state.hedges.remove(&victim.request);
                }
                // A live twin (or an already-resolved race) settles the
                // request without this attempt.
                terminal = !resolved && !twin_alive;
            }
        }
        if terminal {
            fail_attempt(
                state,
                sched,
                cfg,
                victim.request,
                victim.class,
                victim.admitted_ticks,
                victim.attempt,
                FailCause::Crash,
            );
        }
    }
    if let Some(delay) = recover_after {
        sched.schedule_in(
            delay,
            ServeEvent::Fault(FaultEventKind::ServerRecover { server }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_workload::generator::WorkloadSpec;

    fn config(n: usize, picker: PickerKind, intervals: u64) -> ServeConfig {
        ServeConfig::paper(
            ClusterConfig::paper(n, WorkloadSpec::paper_low_load()),
            picker,
            intervals,
        )
    }

    #[test]
    fn serve_run_is_deterministic() {
        for kind in PickerKind::all() {
            let a = ServeSim::new(config(20, kind, 4), 11).run();
            let b = ServeSim::new(config(20, kind, 4), 11).run();
            assert_eq!(a, b, "{}", kind.label());
        }
    }

    #[test]
    fn admitted_splits_into_completed_rejected_and_failed() {
        for kind in PickerKind::all() {
            let r = ServeSim::new(config(20, kind, 4), 7).run();
            assert!(r.requests_admitted > 0, "{}", kind.label());
            assert_eq!(
                r.requests_admitted,
                r.requests_completed + r.requests_rejected + r.requests_failed,
                "{}",
                kind.label()
            );
            assert_eq!(r.requests_failed, 0, "no crashes, nothing fails");
            assert!(!r.resilience.is_active(), "disabled policy stays silent");
            assert_eq!(r.latency.count(), r.requests_completed);
            assert_eq!(r.sla.total_served(), r.requests_completed);
            assert_eq!(r.sla.total_rejected(), r.requests_rejected);
            assert_eq!(
                r.per_instance_served.iter().sum::<u64>(),
                r.requests_completed
            );
        }
    }

    #[test]
    fn cluster_decisions_are_picker_independent() {
        let reports: Vec<ServeReport> = PickerKind::all()
            .into_iter()
            .map(|k| ServeSim::new(config(24, k, 5), 13).run())
            .collect();
        for r in &reports[1..] {
            assert_eq!(
                r.base, reports[0].base,
                "{} vs {}",
                r.picker, reports[0].picker
            );
        }
    }

    #[test]
    fn serve_report_matches_plain_cluster_run() {
        let r = ServeSim::new(config(30, PickerKind::RoundRobin, 6), 5).run();
        let mut sync = Cluster::new(ClusterConfig::paper(30, WorkloadSpec::paper_low_load()), 5);
        let sync_report = sync.run(6);
        assert_eq!(r.base.ratio_series, sync_report.ratio_series);
        assert_eq!(r.base.decision_totals, sync_report.decision_totals);
        assert_eq!(r.base.final_census, sync_report.final_census);
        assert_eq!(r.base.migrations, sync_report.migrations);
    }

    #[test]
    fn empty_fault_plan_is_a_noop() {
        let mut with_empty = config(20, PickerKind::LeastLoaded, 4);
        with_empty.faults = Some(ecolb_faults::plan::FaultPlan::empty(11));
        let a = ServeSim::new(config(20, PickerKind::LeastLoaded, 4), 11).run();
        let b = ServeSim::new(with_empty, 11).run();
        assert_eq!(a, b);
    }

    #[test]
    fn flash_crowd_raises_traffic_and_violation_seconds_accrue() {
        use ecolb_workload::processes::{FlashCrowdSpec, RateModulation};
        let flat = ServeSim::new(config(20, PickerKind::LeastLoaded, 4), 9).run();
        let mut crowded_cfg = config(20, PickerKind::LeastLoaded, 4);
        crowded_cfg.modulation = RateModulation::FlashCrowd(FlashCrowdSpec {
            onset_s: 100.0,
            ramp_s: 60.0,
            decay_s: 200.0,
            participation: 1.0,
            ..FlashCrowdSpec::moderate()
        });
        let crowded = ServeSim::new(crowded_cfg.clone(), 9).run();
        assert!(
            crowded.requests_admitted > flat.requests_admitted,
            "crowd {} vs flat {}",
            crowded.requests_admitted,
            flat.requests_admitted
        );
        // The cluster layer never observes the serving traffic.
        assert_eq!(crowded.base, flat.base);
        assert!(crowded.violation_seconds[0] >= 0.0 && crowded.violation_seconds[1] >= 0.0);
        // Modulated runs replay byte-identically.
        assert_eq!(crowded, ServeSim::new(crowded_cfg, 9).run());
    }

    #[test]
    fn spot_reclaim_removes_the_server_from_the_routable_set() {
        use ecolb_simcore::time::SimTime;
        let victim = ServerId(3);
        let mut cfg = config(20, PickerKind::RoundRobin, 5);
        cfg.faults = Some(ecolb_faults::plan::FaultPlan::empty(13).with_server_crash(
            SimTime::from_secs(400),
            victim,
            None,
        ));
        let r = ServeSim::new(cfg, 13).run();
        let baseline = ServeSim::new(config(20, PickerKind::RoundRobin, 5), 13).run();
        // The reclaimed server serves strictly less than it would have.
        assert!(
            r.per_instance_served[victim.index()] < baseline.per_instance_served[victim.index()],
            "reclaimed {} vs baseline {}",
            r.per_instance_served[victim.index()],
            baseline.per_instance_served[victim.index()]
        );
        assert_eq!(
            r.requests_admitted,
            r.requests_completed + r.requests_rejected + r.requests_failed
        );
    }

    /// Regression for the silent-loss bug: requests queued on a crashed
    /// instance used to vanish from the books entirely (admitted but
    /// neither completed nor rejected). They are failures, counted per
    /// SLA class.
    #[test]
    fn crash_kills_queued_requests_and_counts_them_failed() {
        use ecolb_simcore::time::SimTime;
        let victim = ServerId(3);
        let mut cfg = config(20, PickerKind::RoundRobin, 5);
        cfg.faults = Some(ecolb_faults::plan::FaultPlan::empty(13).with_server_crash(
            SimTime::from_secs(400),
            victim,
            None,
        ));
        let r = ServeSim::new(cfg, 13).run();
        assert!(r.requests_failed > 0, "the dead queue was not empty");
        assert_eq!(
            r.requests_failed,
            r.resilience.total_failed(),
            "per-class failure accounting matches the total"
        );
        assert_eq!(
            r.requests_admitted,
            r.requests_completed + r.requests_rejected + r.requests_failed,
            "no request vanishes from the books"
        );
        assert_eq!(r.latency.count(), r.requests_completed);
        // Pinned count: any change to crash-kill accounting must be
        // deliberate.
        assert_eq!(r.requests_failed, 1);
    }

    #[test]
    fn retry_rescues_crash_killed_requests() {
        use ecolb_simcore::time::SimTime;
        let crash_cfg = |policy| {
            let mut cfg = config(20, PickerKind::RoundRobin, 5);
            cfg.faults = Some(ecolb_faults::plan::FaultPlan::empty(13).with_server_crash(
                SimTime::from_secs(400),
                ServerId(3),
                None,
            ));
            cfg.resilience = policy;
            cfg
        };
        let plain = ServeSim::new(crash_cfg(ResiliencePolicy::disabled()), 13).run();
        let retried = ServeSim::new(crash_cfg(ResiliencePolicy::retry_only()), 13).run();
        assert!(plain.requests_failed > 0);
        assert!(
            retried.requests_failed < plain.requests_failed,
            "retries {} vs plain {}",
            retried.requests_failed,
            plain.requests_failed
        );
        assert!(retried.resilience.retries > 0);
        assert_eq!(
            retried.requests_admitted,
            retried.requests_completed + retried.requests_rejected + retried.requests_failed
        );
        // Replays stay byte-identical with the stack on.
        assert_eq!(
            retried,
            ServeSim::new(crash_cfg(ResiliencePolicy::retry_only()), 13).run()
        );
    }

    #[test]
    fn full_stack_is_deterministic_and_conserves_requests() {
        use ecolb_simcore::time::SimTime;
        let make = || {
            let mut cfg = config(20, PickerKind::LeastLoaded, 5);
            cfg.faults = Some(ecolb_faults::plan::FaultPlan::empty(13).with_server_crash(
                SimTime::from_secs(300),
                ServerId(2),
                Some(ecolb_simcore::time::SimDuration::from_secs(200)),
            ));
            cfg.resilience = ResiliencePolicy::full();
            cfg
        };
        let a = ServeSim::new(make(), 13).run();
        let b = ServeSim::new(make(), 13).run();
        assert_eq!(a, b);
        assert_eq!(
            a.requests_admitted,
            a.requests_completed + a.requests_rejected + a.requests_failed
        );
        assert_eq!(a.latency.count(), a.requests_completed);
        assert_eq!(
            a.per_instance_served.iter().sum::<u64>(),
            a.requests_completed
        );
        assert!(
            a.resilience.breaker_closes <= a.resilience.breaker_opens,
            "a breaker can only close after opening"
        );
    }

    #[test]
    fn latency_samples_are_positive_and_energy_accrues() {
        let r = ServeSim::new(config(16, PickerKind::LeastLoaded, 4), 3).run();
        assert!(r.requests_completed > 0);
        assert!(r.latency.mean() > 0.0);
        assert!(r.p99_s() >= r.latency.p50());
        assert!(r.serve_energy_j > 0.0);
        assert!(r.total_energy_j() > r.base.energy.total_j());
        assert!(r.reject_fraction() >= 0.0 && r.reject_fraction() <= 1.0);
    }
}
