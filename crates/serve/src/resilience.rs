//! The request-level resilience layer: deadlines, retry budgets,
//! hedging, circuit breaking and SLA-class load shedding.
//!
//! Everything here is *policy vocabulary plus pure state machines*; the
//! co-simulation in [`sim`](crate::sim) wires them into the dispatch
//! path. Five mechanisms, each independently switchable:
//!
//! * **Deadlines** — every request carries a deadline derived from its
//!   SLA-class latency objective
//!   ([`ResiliencePolicy::deadline_objective_multiplier`]). An attempt
//!   whose *predicted* latency (queue backlog + effective service)
//!   already exceeds the deadline is failed at dispatch instead of
//!   being enqueued to miss it — the failure feeds the retry ladder and
//!   the chosen server's breaker.
//! * **Retries** — failed attempts back off exponentially with
//!   per-request jitter drawn once from the keyed
//!   `(seed, Retry, request id)` stream ([`BackoffSchedule`]), governed
//!   by a token-bucket [`RetryBudget`] that refills per admitted
//!   request: when the fleet degrades, the budget bounds the retry
//!   amplification instead of letting a retry storm finish it off.
//! * **Hedging** — a gold request whose primary pick predicts a slow
//!   response is duplicated onto the least-backlogged alternate
//!   instance; the earlier completion wins.
//! * **Circuit breaking** — per-instance closed→open→half-open state
//!   machine ([`BreakerBank`]) fed by dispatch failures and crash
//!   events; an open breaker ejects the instance from the routable set
//!   until its open window elapses in sim ticks.
//! * **Load shedding** — admission control sheds requests whose chosen
//!   server's backlog exceeds the class watermark; bronze watermarks
//!   sit below gold ([`ShedPolicy`]), so bronze sheds first and gold
//!   capacity survives the longest.
//!
//! [`ResiliencePolicy::disabled`] is a structural no-op: the simulation
//! draws zero extra random numbers, emits zero extra trace events and
//! produces a byte-identical report.

use ecolb_cluster::server::ServerId;
use ecolb_simcore::time::{SimDuration, SimTime};
use ecolb_workload::requests::{request_stream, RequestId, RequestStreamDomain};

/// One milli-token; a retry withdraws exactly this much.
pub const RETRY_COST_MTOKENS: u64 = 1000;

/// The full resilience configuration of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Master switch. `false` short-circuits every mechanism and makes
    /// the layer a structural no-op regardless of the other fields.
    pub enabled: bool,
    /// Deadline per class as a multiple of its latency objective
    /// (gold 0.5 s × 2.0 → 1.0 s deadline). `0.0` disables the
    /// dispatch-time deadline guard.
    pub deadline_objective_multiplier: f64,
    /// Retry ladder and budget.
    pub retry: RetryPolicy,
    /// Gold-class hedging.
    pub hedge: HedgePolicy,
    /// Per-instance circuit breakers.
    pub breaker: BreakerPolicy,
    /// SLA-class load shedding.
    pub shed: ShedPolicy,
}

impl ResiliencePolicy {
    /// The structural no-op default: every mechanism off.
    pub fn disabled() -> Self {
        ResiliencePolicy {
            enabled: false,
            deadline_objective_multiplier: 0.0,
            retry: RetryPolicy::disabled(),
            hedge: HedgePolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            shed: ShedPolicy::disabled(),
        }
    }

    /// Retries only: crash-killed attempts are retried under the
    /// default budget, but no deadline guard, hedging, breakers or
    /// shedding — the middle column of the EXPERIMENTS "RS" sweep.
    pub fn retry_only() -> Self {
        ResiliencePolicy {
            enabled: true,
            deadline_objective_multiplier: 0.0,
            retry: RetryPolicy::default_enabled(),
            hedge: HedgePolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            shed: ShedPolicy::disabled(),
        }
    }

    /// The full stack with paper-shaped defaults: 2× objective
    /// deadlines, budgeted retries, gold hedging, breakers and
    /// bronze-first shedding.
    pub fn full() -> Self {
        ResiliencePolicy {
            enabled: true,
            deadline_objective_multiplier: 2.0,
            retry: RetryPolicy::default_enabled(),
            hedge: HedgePolicy::default_enabled(),
            breaker: BreakerPolicy::default_enabled(),
            shed: ShedPolicy::default_enabled(),
        }
    }

    /// The deadline for a request with the given class objective, or
    /// `None` when the deadline guard is off.
    pub fn deadline_s(&self, objective_s: f64) -> Option<f64> {
        if self.enabled && self.deadline_objective_multiplier > 0.0 {
            Some(objective_s * self.deadline_objective_multiplier)
        } else {
            None
        }
    }
}

/// Exponential-backoff retry configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Whether failed attempts are retried at all.
    pub enabled: bool,
    /// Maximum retry attempts per request (not counting the original).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt (≥ 1 keeps the schedule
    /// monotone).
    pub backoff_multiplier: f64,
    /// Backoff cap, seconds.
    pub max_backoff_s: f64,
    /// Jitter width: the per-request factor is uniform in
    /// `[1 − jitter_fraction, 1]`. `0.0` draws nothing.
    pub jitter_fraction: f64,
    /// The token bucket governing the global retry volume.
    pub budget: RetryBudgetSpec,
}

impl RetryPolicy {
    /// Retries off entirely.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            max_attempts: 0,
            base_backoff_s: 0.0,
            backoff_multiplier: 1.0,
            max_backoff_s: 0.0,
            jitter_fraction: 0.0,
            budget: RetryBudgetSpec::unlimited(),
        }
    }

    /// Up to 3 budgeted retries at 50 ms × 2^k capped at 400 ms, with
    /// 20 % jitter.
    pub fn default_enabled() -> Self {
        RetryPolicy {
            enabled: true,
            max_attempts: 3,
            base_backoff_s: 0.05,
            backoff_multiplier: 2.0,
            max_backoff_s: 0.4,
            jitter_fraction: 0.2,
            budget: RetryBudgetSpec::default_enabled(),
        }
    }
}

/// Token-bucket retry-budget configuration, in milli-tokens (one retry
/// costs [`RETRY_COST_MTOKENS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetSpec {
    /// `false` makes the budget unlimited: every withdrawal is granted
    /// and no state moves.
    pub enabled: bool,
    /// Milli-tokens deposited per admitted request (100 ⇒ a sustained
    /// retry ratio of 10 % of admissions).
    pub fill_per_admit_mtokens: u64,
    /// Bucket capacity, milli-tokens — the burst of back-to-back
    /// retries one fault may trigger.
    pub burst_mtokens: u64,
}

impl RetryBudgetSpec {
    /// An unlimited budget (the disabled spec).
    pub fn unlimited() -> Self {
        RetryBudgetSpec {
            enabled: false,
            fill_per_admit_mtokens: 0,
            burst_mtokens: 0,
        }
    }

    /// 10 % sustained retry ratio with a 200-retry burst.
    pub fn default_enabled() -> Self {
        RetryBudgetSpec {
            enabled: true,
            fill_per_admit_mtokens: 100,
            burst_mtokens: 200 * RETRY_COST_MTOKENS,
        }
    }
}

/// Gold-class hedging configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Whether gold requests may be hedged.
    pub enabled: bool,
    /// Predicted primary latency above which a hedge is issued, seconds.
    pub threshold_s: f64,
}

impl HedgePolicy {
    /// Hedging off.
    pub fn disabled() -> Self {
        HedgePolicy {
            enabled: false,
            threshold_s: f64::INFINITY,
        }
    }

    /// Hedge gold requests predicted slower than 350 ms.
    pub fn default_enabled() -> Self {
        HedgePolicy {
            enabled: true,
            threshold_s: 0.35,
        }
    }
}

/// Per-instance circuit-breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Whether breakers eject instances at all.
    pub enabled: bool,
    /// Consecutive dispatch failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Open window before the half-open probe, seconds (sim ticks).
    pub open_s: f64,
}

impl BreakerPolicy {
    /// Breakers off.
    pub fn disabled() -> Self {
        BreakerPolicy {
            enabled: false,
            failure_threshold: u32::MAX,
            open_s: 0.0,
        }
    }

    /// Trip after 5 consecutive failures, eject for 20 s.
    pub fn default_enabled() -> Self {
        BreakerPolicy {
            enabled: true,
            failure_threshold: 5,
            open_s: 20.0,
        }
    }
}

/// SLA-class load-shedding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Whether admission control sheds at all.
    pub enabled: bool,
    /// Bronze requests shed once the chosen server queues more than
    /// this many seconds of work.
    pub bronze_watermark_s: f64,
    /// Gold watermark — strictly above bronze, so bronze sheds first.
    pub gold_watermark_s: f64,
}

impl ShedPolicy {
    /// Shedding off.
    pub fn disabled() -> Self {
        ShedPolicy {
            enabled: false,
            bronze_watermark_s: f64::INFINITY,
            gold_watermark_s: f64::INFINITY,
        }
    }

    /// Shed bronze past 1.2 s of backlog, gold past 1.6 s (both below
    /// the 2 s hard admission bound).
    pub fn default_enabled() -> Self {
        ShedPolicy {
            enabled: true,
            bronze_watermark_s: 1.2,
            gold_watermark_s: 1.6,
        }
    }

    /// The watermark for a class index (0 = gold, 1 = bronze).
    pub fn watermark_s(&self, class: usize) -> f64 {
        if class == 0 {
            self.gold_watermark_s
        } else {
            self.bronze_watermark_s
        }
    }
}

/// The capped-exponential backoff schedule of one request: a pure
/// function of `(seed, request id, policy)`.
///
/// The jitter factor is drawn *once* per request from the keyed
/// `(seed, Retry, request)` stream and applied uniformly, so the
/// schedule stays monotone non-decreasing (multiplier ≥ 1) and never
/// exceeds the cap. With `jitter_fraction == 0` no stream is opened at
/// all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffSchedule {
    base_s: f64,
    multiplier: f64,
    cap_s: f64,
    jitter_factor: f64,
}

impl BackoffSchedule {
    /// Builds the schedule for `request` under `policy`.
    pub fn new(seed: u64, request: RequestId, policy: &RetryPolicy) -> Self {
        let jitter_factor = if policy.jitter_fraction > 0.0 {
            let width = policy.jitter_fraction.min(1.0);
            let mut rng = request_stream(seed, RequestStreamDomain::Retry, request.0);
            1.0 - width * rng.next_f64()
        } else {
            1.0
        };
        BackoffSchedule {
            base_s: policy.base_backoff_s.max(0.0),
            multiplier: policy.backoff_multiplier.max(1.0),
            cap_s: policy.max_backoff_s.max(0.0),
            jitter_factor,
        }
    }

    /// Backoff before retry attempt `k` (1-based), seconds.
    pub fn delay_s(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(63);
        let raw = self.base_s * self.multiplier.powi(exp as i32);
        raw.min(self.cap_s).max(0.0) * self.jitter_factor
    }
}

/// The runtime token bucket behind [`RetryBudgetSpec`].
///
/// Starts full at the burst capacity; every admitted request deposits
/// the fill amount (clamped at the capacity, the spill counted in
/// [`RetryBudget::dropped_mtokens`]); every granted retry withdraws
/// [`RETRY_COST_MTOKENS`]. Conservation holds exactly in integer
/// milli-tokens:
/// `initial + deposited == balance + withdrawn + dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    spec: RetryBudgetSpec,
    balance: u64,
    deposited: u64,
    withdrawn: u64,
    dropped: u64,
}

impl RetryBudget {
    /// A bucket starting full at the spec's burst capacity.
    pub fn new(spec: RetryBudgetSpec) -> Self {
        RetryBudget {
            spec,
            balance: spec.burst_mtokens,
            deposited: 0,
            withdrawn: 0,
            dropped: 0,
        }
    }

    /// Deposits the per-admission fill. Disabled budgets hold no state.
    pub fn deposit(&mut self) {
        if !self.spec.enabled {
            return;
        }
        let fill = self.spec.fill_per_admit_mtokens;
        self.deposited += fill;
        let room = self.spec.burst_mtokens - self.balance;
        let kept = fill.min(room);
        self.balance += kept;
        self.dropped += fill - kept;
    }

    /// Withdraws one retry's worth of tokens; `false` means the retry
    /// is denied. A disabled budget always grants and never moves.
    pub fn try_withdraw(&mut self) -> bool {
        if !self.spec.enabled {
            return true;
        }
        if self.balance >= RETRY_COST_MTOKENS {
            self.balance -= RETRY_COST_MTOKENS;
            self.withdrawn += RETRY_COST_MTOKENS;
            true
        } else {
            false
        }
    }

    /// Current balance, milli-tokens.
    pub fn balance_mtokens(&self) -> u64 {
        self.balance
    }

    /// Initial capacity the bucket started with, milli-tokens.
    pub fn initial_mtokens(&self) -> u64 {
        self.spec.burst_mtokens
    }

    /// Total deposited, milli-tokens (including spill).
    pub fn deposited_mtokens(&self) -> u64 {
        self.deposited
    }

    /// Total withdrawn by granted retries, milli-tokens.
    pub fn withdrawn_mtokens(&self) -> u64 {
        self.withdrawn
    }

    /// Deposits spilled over the burst capacity, milli-tokens.
    pub fn dropped_mtokens(&self) -> u64 {
        self.dropped
    }
}

/// One instance's breaker position. `HalfOpen` is routable: the next
/// attempt is the probe that closes or re-opens the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: SimTime },
    HalfOpen,
}

/// The per-instance circuit breakers of a fleet.
///
/// Transition protocol (the `breaker_routing` invariant relies on the
/// emission sites being exactly the `true` returns here):
///
/// * closed → open on the threshold'th consecutive failure, or
///   immediately on a crash ([`BreakerBank::trip`]);
/// * half-open → open on a probe failure;
/// * open → half-open once the open window elapses
///   ([`BreakerBank::poll_expired`]), or on a discovery rejoin
///   ([`BreakerBank::reset`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerBank {
    states: Vec<BreakerState>,
    failures: Vec<u32>,
    open_count: usize,
}

impl BreakerBank {
    /// A bank of `n` closed breakers.
    pub fn new(n: usize) -> Self {
        BreakerBank {
            states: vec![BreakerState::Closed; n],
            failures: vec![0; n],
            open_count: 0,
        }
    }

    /// Breakers currently open (routing-forbidden instances).
    pub fn open_count(&self) -> usize {
        self.open_count
    }

    /// True when `server` must not receive traffic.
    pub fn is_open(&self, server: ServerId) -> bool {
        matches!(
            self.states.get(server.index()),
            Some(BreakerState::Open { .. })
        )
    }

    fn set_open(&mut self, idx: usize, until: SimTime) -> bool {
        match self.states.get_mut(idx) {
            Some(slot) if !matches!(slot, BreakerState::Open { .. }) => {
                *slot = BreakerState::Open { until };
                self.open_count += 1;
                true
            }
            _ => false,
        }
    }

    /// Records a dispatch failure against `server`; returns `true` when
    /// this trips the breaker open (emit `breaker_open`).
    pub fn record_failure(
        &mut self,
        server: ServerId,
        now: SimTime,
        policy: &BreakerPolicy,
    ) -> bool {
        let idx = server.index();
        let open_until = now + SimDuration::from_secs_f64(policy.open_s);
        match self.states.get(idx).copied() {
            Some(BreakerState::Closed) => {
                if let Some(f) = self.failures.get_mut(idx) {
                    *f += 1;
                    if *f >= policy.failure_threshold {
                        *f = 0;
                        return self.set_open(idx, open_until);
                    }
                }
                false
            }
            Some(BreakerState::HalfOpen) => self.set_open(idx, open_until),
            _ => false,
        }
    }

    /// Records a successful completion on `server`: closes a half-open
    /// breaker and clears the failure streak.
    pub fn record_success(&mut self, server: ServerId) {
        let idx = server.index();
        if let Some(slot) = self.states.get_mut(idx) {
            if *slot == BreakerState::HalfOpen {
                *slot = BreakerState::Closed;
            }
        }
        if let Some(f) = self.failures.get_mut(idx) {
            *f = 0;
        }
    }

    /// Trips `server` straight to open (crash evidence); returns `true`
    /// when the breaker actually transitioned (emit `breaker_open`).
    pub fn trip(&mut self, server: ServerId, now: SimTime, policy: &BreakerPolicy) -> bool {
        let until = now + SimDuration::from_secs_f64(policy.open_s);
        let idx = server.index();
        if let Some(f) = self.failures.get_mut(idx) {
            *f = 0;
        }
        self.set_open(idx, until)
    }

    /// Moves every breaker whose open window has elapsed to half-open,
    /// appending the servers to `reopened` (emit `breaker_close` for
    /// each). O(n) only while something is open.
    pub fn poll_expired(&mut self, now: SimTime, reopened: &mut Vec<ServerId>) {
        if self.open_count == 0 {
            return;
        }
        for (idx, slot) in self.states.iter_mut().enumerate() {
            if let BreakerState::Open { until } = *slot {
                if now >= until {
                    *slot = BreakerState::HalfOpen;
                    self.open_count -= 1;
                    reopened.push(ServerId(idx as u32));
                }
            }
        }
    }

    /// Resets `server` to closed (discovery rejoin after recovery or
    /// wake); returns `true` when it was open (emit `breaker_close`).
    pub fn reset(&mut self, server: ServerId) -> bool {
        let idx = server.index();
        if let Some(f) = self.failures.get_mut(idx) {
            *f = 0;
        }
        match self.states.get_mut(idx) {
            Some(slot) => {
                let was_open = matches!(slot, BreakerState::Open { .. });
                *slot = BreakerState::Closed;
                if was_open {
                    self.open_count -= 1;
                }
                was_open
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_turns_everything_off() {
        let p = ResiliencePolicy::disabled();
        assert!(!p.enabled);
        assert_eq!(p.deadline_s(0.5), None);
        assert!(!p.retry.enabled);
        assert!(!p.hedge.enabled);
        assert!(!p.breaker.enabled);
        assert!(!p.shed.enabled);
    }

    #[test]
    fn full_policy_derives_deadlines_from_objectives() {
        let p = ResiliencePolicy::full();
        assert_eq!(p.deadline_s(0.5), Some(1.0));
        assert_eq!(p.deadline_s(2.0), Some(4.0));
        assert!(p.shed.watermark_s(1) < p.shed.watermark_s(0));
    }

    #[test]
    fn backoff_is_deterministic_monotone_and_capped() {
        let policy = RetryPolicy::default_enabled();
        let a = BackoffSchedule::new(7, RequestId(42), &policy);
        let b = BackoffSchedule::new(7, RequestId(42), &policy);
        assert_eq!(a, b);
        let mut last = 0.0;
        for k in 1..=10 {
            let d = a.delay_s(k);
            assert!(d >= last, "monotone at attempt {k}");
            assert!(d <= policy.max_backoff_s, "cap at attempt {k}");
            last = d;
        }
    }

    #[test]
    fn zero_jitter_schedule_is_exact_exponential() {
        let policy = RetryPolicy {
            jitter_fraction: 0.0,
            ..RetryPolicy::default_enabled()
        };
        let s = BackoffSchedule::new(1, RequestId(0), &policy);
        assert_eq!(s.delay_s(1), 0.05);
        assert_eq!(s.delay_s(2), 0.1);
        assert_eq!(s.delay_s(3), 0.2);
        assert_eq!(s.delay_s(4), 0.4);
        assert_eq!(s.delay_s(9), 0.4, "capped");
    }

    #[test]
    fn budget_conserves_tokens_and_never_goes_negative() {
        let mut b = RetryBudget::new(RetryBudgetSpec {
            enabled: true,
            fill_per_admit_mtokens: 300,
            burst_mtokens: 2000,
        });
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "empty bucket denies");
        b.deposit();
        b.deposit();
        b.deposit();
        b.deposit();
        assert!(b.try_withdraw());
        for _ in 0..20 {
            b.deposit();
        }
        assert_eq!(
            b.initial_mtokens() + b.deposited_mtokens(),
            b.balance_mtokens() + b.withdrawn_mtokens() + b.dropped_mtokens()
        );
        assert!(b.balance_mtokens() <= 2000);
    }

    #[test]
    fn disabled_budget_is_unlimited_and_stateless() {
        let mut b = RetryBudget::new(RetryBudgetSpec::unlimited());
        for _ in 0..1000 {
            assert!(b.try_withdraw());
            b.deposit();
        }
        assert_eq!(b.balance_mtokens(), 0);
        assert_eq!(b.withdrawn_mtokens(), 0);
        assert_eq!(b.deposited_mtokens(), 0);
    }

    #[test]
    fn breaker_trips_on_threshold_and_probes_half_open() {
        let policy = BreakerPolicy {
            enabled: true,
            failure_threshold: 3,
            open_s: 10.0,
        };
        let mut bank = BreakerBank::new(4);
        let s = ServerId(1);
        let t0 = SimTime::ZERO;
        assert!(!bank.record_failure(s, t0, &policy));
        assert!(!bank.record_failure(s, t0, &policy));
        assert!(bank.record_failure(s, t0, &policy), "third failure trips");
        assert!(bank.is_open(s));
        assert_eq!(bank.open_count(), 1);
        // Further failures while open change nothing.
        assert!(!bank.record_failure(s, t0, &policy));

        let mut reopened = Vec::new();
        bank.poll_expired(t0 + SimDuration::from_secs(5), &mut reopened);
        assert!(reopened.is_empty(), "window not elapsed");
        bank.poll_expired(t0 + SimDuration::from_secs(10), &mut reopened);
        assert_eq!(reopened, vec![s]);
        assert!(!bank.is_open(s), "half-open is routable");
        assert_eq!(bank.open_count(), 0);

        // A half-open probe failure re-opens immediately.
        assert!(bank.record_failure(s, t0 + SimDuration::from_secs(11), &policy));
        assert!(bank.is_open(s));
    }

    #[test]
    fn success_closes_a_half_open_breaker_and_clears_streaks() {
        let policy = BreakerPolicy {
            enabled: true,
            failure_threshold: 2,
            open_s: 1.0,
        };
        let mut bank = BreakerBank::new(2);
        let s = ServerId(0);
        assert!(!bank.record_failure(s, SimTime::ZERO, &policy));
        bank.record_success(s);
        // The streak reset means two more failures are needed.
        assert!(!bank.record_failure(s, SimTime::ZERO, &policy));
        assert!(bank.record_failure(s, SimTime::ZERO, &policy));
        let mut reopened = Vec::new();
        bank.poll_expired(SimTime::from_secs(2), &mut reopened);
        assert_eq!(reopened, vec![s]);
        bank.record_success(s);
        assert!(!bank.is_open(s));
        assert!(!bank.record_failure(s, SimTime::from_secs(3), &policy));
    }

    #[test]
    fn trip_and_reset_pair_for_crash_and_rejoin() {
        let policy = BreakerPolicy::default_enabled();
        let mut bank = BreakerBank::new(3);
        let s = ServerId(2);
        assert!(bank.trip(s, SimTime::ZERO, &policy));
        assert!(!bank.trip(s, SimTime::ZERO, &policy), "already open");
        assert!(bank.reset(s), "reset of an open breaker reports it");
        assert!(!bank.reset(s), "reset of a closed breaker is silent");
        assert_eq!(bank.open_count(), 0);
    }
}
