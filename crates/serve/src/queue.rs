//! Per-instance FIFO queueing model.
//!
//! Each server instance serves requests one at a time in arrival order:
//! the model is a single `busy_until` horizon per server. A request
//! enqueued at `now` starts at `max(now, busy_until)` and completes
//! after its (effective) service time; the gap between arrival and
//! start is its queueing delay. Everything is integer tick arithmetic —
//! no float accumulation order to worry about, and latencies come out
//! as exact tick differences.

use ecolb_cluster::server::ServerId;
use ecolb_simcore::time::{SimDuration, SimTime};

/// FIFO queue horizons, one per server (indexed by server id).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueModel {
    busy_until: Vec<SimTime>,
}

impl QueueModel {
    /// A model for `n` servers, all idle.
    pub fn new(n: usize) -> Self {
        QueueModel {
            busy_until: vec![SimTime::ZERO; n],
        }
    }

    /// Number of modelled servers.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// True for a zero-server model.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Outstanding work on `server` beyond `now` (zero when idle).
    pub fn backlog(&self, now: SimTime, server: ServerId) -> SimDuration {
        match self.busy_until.get(server.index()) {
            Some(&b) => b.saturating_sub(now),
            None => SimDuration::ZERO,
        }
    }

    /// Enqueues a request of the given service time on `server` at
    /// `now`; returns `(start, completion)`. The queue grows by exactly
    /// the service time — FIFO, no preemption.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        server: ServerId,
        service: SimDuration,
    ) -> (SimTime, SimTime) {
        let idx = server.index();
        let start = if self.busy_until[idx] > now {
            self.busy_until[idx]
        } else {
            now
        };
        let completion = start + service;
        self.busy_until[idx] = completion;
        (start, completion)
    }

    /// Clears `server`'s queue horizon — a crash destroys its backlog,
    /// and without the reset a recovered server would appear to still
    /// owe the work its dead queue never performed.
    pub fn reset(&mut self, server: ServerId) {
        if let Some(slot) = self.busy_until.get_mut(server.index()) {
            *slot = SimTime::ZERO;
        }
    }

    /// A read-only view bound to an instant, handed to pickers.
    pub fn view(&self, now: SimTime) -> QueueView<'_> {
        QueueView { model: self, now }
    }
}

/// A picker's read-only window onto the queue state at one instant.
#[derive(Debug, Clone, Copy)]
pub struct QueueView<'a> {
    model: &'a QueueModel,
    now: SimTime,
}

impl QueueView<'_> {
    /// Outstanding work on `server`, seconds.
    pub fn backlog_s(&self, server: ServerId) -> f64 {
        self.model.backlog(self.now, server).as_secs_f64()
    }

    /// Outstanding work on `server`, integer ticks — the exact quantity
    /// for tie-free comparisons.
    pub fn backlog_ticks(&self, server: ServerId) -> u64 {
        self.model.backlog(self.now, server).ticks()
    }

    /// The instant this view is bound to.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut q = QueueModel::new(2);
        let now = SimTime::from_secs(10);
        let (start, done) = q.enqueue(now, ServerId(0), SimDuration::from_secs(2));
        assert_eq!(start, now);
        assert_eq!(done, SimTime::from_secs(12));
        assert_eq!(q.backlog(now, ServerId(0)), SimDuration::from_secs(2));
        assert_eq!(q.backlog(now, ServerId(1)), SimDuration::ZERO);
    }

    #[test]
    fn fifo_queues_back_to_back() {
        let mut q = QueueModel::new(1);
        let now = SimTime::from_secs(0);
        q.enqueue(now, ServerId(0), SimDuration::from_secs(3));
        let (start, done) = q.enqueue(now, ServerId(0), SimDuration::from_secs(1));
        assert_eq!(start, SimTime::from_secs(3));
        assert_eq!(done, SimTime::from_secs(4));
    }

    #[test]
    fn backlog_drains_with_time() {
        let mut q = QueueModel::new(1);
        q.enqueue(SimTime::ZERO, ServerId(0), SimDuration::from_secs(5));
        assert_eq!(
            q.backlog(SimTime::from_secs(3), ServerId(0)),
            SimDuration::from_secs(2)
        );
        assert_eq!(
            q.backlog(SimTime::from_secs(9), ServerId(0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn view_reports_seconds_and_ticks() {
        let mut q = QueueModel::new(1);
        q.enqueue(SimTime::ZERO, ServerId(0), SimDuration::from_millis(1500));
        let v = q.view(SimTime::ZERO);
        assert!((v.backlog_s(ServerId(0)) - 1.5).abs() < 1e-12);
        assert_eq!(v.backlog_ticks(ServerId(0)), 1_500_000);
    }

    #[test]
    fn reset_clears_the_backlog() {
        let mut q = QueueModel::new(2);
        q.enqueue(SimTime::ZERO, ServerId(0), SimDuration::from_secs(5));
        q.reset(ServerId(0));
        q.reset(ServerId(9)); // out of range is a no-op
        assert_eq!(q.backlog(SimTime::ZERO, ServerId(0)), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_server_reads_as_idle() {
        let q = QueueModel::new(1);
        assert_eq!(q.backlog(SimTime::ZERO, ServerId(7)), SimDuration::ZERO);
    }
}
