//! # ecolb-serve
//!
//! The request-level serving seam: the paper's energy-aware cluster
//! behind a sans-io `Discover`/`LoadBalance` front end.
//!
//! The §4 protocol decides *migrations and sleeps*; what a user of the
//! cloud sees is *request latency*. This crate closes that gap with
//! four pieces, shaped like the loadbalance module of a production RPC
//! stack but fully deterministic and I/O-free:
//!
//! * [`discover`] — [`Discover`](discover::Discover): the live instance
//!   set as canonical snapshots plus [`Change`](discover::Change)
//!   notifications diffed from cluster events (wake/sleep/crash/
//!   migration);
//! * [`picker`] — [`Picker`](picker::Picker): deterministic routing
//!   strategies — round-robin, least-loaded, power-of-two-choices
//!   (keyed per request id) and the paper-native
//!   [`RegimeAware`](picker::RegimeAware) router;
//! * [`queue`] — per-instance FIFO service queues in integer tick
//!   arithmetic;
//! * [`resilience`] — the request-level resilience layer: SLA-class
//!   deadlines, budgeted retries with keyed backoff jitter, gold-class
//!   hedging, per-instance circuit breakers and bronze-first load
//!   shedding ([`ResiliencePolicy`](resilience::ResiliencePolicy));
//!   `disabled()` is a structural no-op;
//! * [`sim`] — [`ServeSim`](sim::ServeSim): one engine co-simulating
//!   open-loop request traffic with the reallocation protocol, so
//!   energy decisions and routing decisions interact and a picker
//!   comparison yields an energy-vs-p99 frontier (EXPERIMENTS.md "RQ").
//!
//! Everything is a pure function of `(config, seed)`: replaying a run
//! byte-identically reproduces its [`ServeReport`](sim::ServeReport).
//! A future live backend replaces the discovery source and the clock —
//! the pickers, queues and reports are backend-agnostic.
//!
//! ```
//! use ecolb_cluster::cluster::ClusterConfig;
//! use ecolb_serve::picker::PickerKind;
//! use ecolb_serve::sim::{ServeConfig, ServeSim};
//! use ecolb_workload::generator::WorkloadSpec;
//!
//! let cluster = ClusterConfig::paper(20, WorkloadSpec::paper_low_load());
//! let config = ServeConfig::paper(cluster, PickerKind::RegimeAware, 3);
//! let report = ServeSim::new(config, 7).run();
//! assert_eq!(report.picker, "regime_aware");
//! assert_eq!(
//!     report.requests_admitted,
//!     report.requests_completed + report.requests_rejected
//! );
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod discover;
pub mod picker;
pub mod queue;
pub mod resilience;
pub mod sim;

pub use discover::{diff_into, Change, ClusterDiscover, Discover, InstanceSet};
pub use picker::{LeastLoaded, Picker, PickerKind, PowerOfTwo, RegimeAware, RoundRobin};
pub use queue::{QueueModel, QueueView};
pub use resilience::{
    BackoffSchedule, BreakerBank, BreakerPolicy, HedgePolicy, ResiliencePolicy, RetryBudget,
    RetryBudgetSpec, RetryPolicy, ShedPolicy,
};
pub use sim::{regime_energy_multiplier, ServeConfig, ServeEvent, ServeReport, ServeSim};
