//! Deterministic request pickers — the `LoadBalance` seam.
//!
//! A [`Picker`] maps one request to one awake instance given the current
//! [`InstanceSet`] and a read-only [`QueueView`]. All four shipped
//! pickers are pure functions of `(instance set, queue state, request
//! id, seed)`:
//!
//! * [`RoundRobin`] — cyclic over the awake instances;
//! * [`LeastLoaded`] — global argmin of queued work;
//! * [`PowerOfTwo`] — two keyed-random candidates, less-loaded wins
//!   (the classic two-choices result: near-least-loaded quality at O(1)
//!   cost). The candidate draws come from the `(seed, request id)`
//!   stream, so the choice is independent of call order — seed
//!   provenance the lint can follow;
//! * [`RegimeAware`] — the paper's §4 regime classification re-exposed
//!   as a router: requests steer *off* the underloaded servers the
//!   consolidation policy wants to drain and sleep (R1/R2) and off the
//!   overloaded ones (R5), concentrating traffic where the policy wants
//!   it — so the serving layer stops fighting the energy layer.
//!
//! Ties always break toward the lower server id, and candidates only
//! ever come from [`InstanceSet::awake_indices`] — no picker can route
//! to a sleeping or crashed instance.

use crate::discover::{Change, InstanceSet};
use crate::queue::QueueView;
use ecolb_cluster::server::ServerId;
use ecolb_energy::regimes::OperatingRegime;
use ecolb_workload::requests::{request_stream, RequestId, RequestStreamDomain};

/// A routing strategy: picks an awake instance for each request.
pub trait Picker {
    /// Stable strategy label for reports and traces.
    fn name(&self) -> &'static str;

    /// Picks the serving instance for `request`, or `None` when no
    /// awake instance exists.
    fn pick(
        &mut self,
        set: &InstanceSet,
        queues: &QueueView<'_>,
        request: RequestId,
    ) -> Option<ServerId>;

    /// Discovery notification: the instance set changed (wake, sleep,
    /// crash, migration). Default: no internal state to fix up.
    fn on_change(&mut self, _set: &InstanceSet, _changes: &[Change]) {}
}

/// The four shipped strategies, as config vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickerKind {
    /// Cyclic over the awake instances.
    RoundRobin,
    /// Global argmin of queued work.
    LeastLoaded,
    /// Two keyed-random candidates, less-loaded wins.
    PowerOfTwo,
    /// Regime-scored routing (paper §4 classification).
    RegimeAware,
}

impl PickerKind {
    /// Every shipped strategy, in report order.
    pub fn all() -> [PickerKind; 4] {
        [
            PickerKind::RoundRobin,
            PickerKind::LeastLoaded,
            PickerKind::PowerOfTwo,
            PickerKind::RegimeAware,
        ]
    }

    /// Stable label matching [`Picker::name`].
    pub fn label(self) -> &'static str {
        match self {
            PickerKind::RoundRobin => "round_robin",
            PickerKind::LeastLoaded => "least_loaded",
            PickerKind::PowerOfTwo => "power_of_two",
            PickerKind::RegimeAware => "regime_aware",
        }
    }

    /// Instantiates the picker. `seed` feeds the keyed choice stream of
    /// [`PowerOfTwo`]; the other strategies ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Picker> {
        match self {
            PickerKind::RoundRobin => Box::new(RoundRobin::new()),
            PickerKind::LeastLoaded => Box::new(LeastLoaded),
            PickerKind::PowerOfTwo => Box::new(PowerOfTwo::new(seed)),
            PickerKind::RegimeAware => Box::new(RegimeAware),
        }
    }
}

/// Cyclic picker over the awake instances.
///
/// The cursor indexes the *awake list*, so over any window in which the
/// awake set is stable every awake instance receives either ⌊w/n⌋ or
/// ⌈w/n⌉ of the w requests — the fairness property in the property
/// tests. Membership changes reset the cursor (a deterministic function
/// of the new set, not of which server happened to change).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh picker with the cursor at the first awake instance.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl Picker for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn pick(
        &mut self,
        set: &InstanceSet,
        _queues: &QueueView<'_>,
        _request: RequestId,
    ) -> Option<ServerId> {
        let awake = set.awake_indices();
        if awake.is_empty() {
            return None;
        }
        let slot = self.cursor % awake.len();
        self.cursor = slot + 1;
        set.get(awake[slot]).map(|i| i.id)
    }

    fn on_change(&mut self, _set: &InstanceSet, changes: &[Change]) {
        if !changes.is_empty() {
            self.cursor = 0;
        }
    }
}

/// Global argmin of queued work; ties break to the lower server id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl Picker for LeastLoaded {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn pick(
        &mut self,
        set: &InstanceSet,
        queues: &QueueView<'_>,
        _request: RequestId,
    ) -> Option<ServerId> {
        let mut best: Option<(u64, ServerId)> = None;
        for &idx in set.awake_indices() {
            if let Some(inst) = set.get(idx) {
                let key = (queues.backlog_ticks(inst.id), inst.id);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

/// Two keyed-random candidates; the one with less queued work wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerOfTwo {
    seed: u64,
}

impl PowerOfTwo {
    /// A picker whose candidate draws are keyed on `(seed, request)`.
    pub fn new(seed: u64) -> Self {
        PowerOfTwo { seed }
    }
}

impl Picker for PowerOfTwo {
    fn name(&self) -> &'static str {
        "power_of_two"
    }

    fn pick(
        &mut self,
        set: &InstanceSet,
        queues: &QueueView<'_>,
        request: RequestId,
    ) -> Option<ServerId> {
        let awake = set.awake_indices();
        let n = awake.len();
        if n == 0 {
            return None;
        }
        // Candidates come from the per-request stream, so the draw is a
        // pure function of (seed, request id, awake count) — replaying
        // the same request against the same set always picks the same
        // pair, regardless of how many requests ran before it.
        let mut rng = request_stream(self.seed, RequestStreamDomain::Choice, request.0);
        let first_slot = rng.index(n);
        if n == 1 {
            return set.get(awake[first_slot]).map(|i| i.id);
        }
        // Second candidate distinct from the first: draw from the n−1
        // remaining slots and skip over the first pick.
        let mut second_slot = rng.index(n - 1);
        if second_slot >= first_slot {
            second_slot += 1;
        }
        let a = set.get(awake[first_slot])?;
        let b = set.get(awake[second_slot])?;
        let ka = (queues.backlog_ticks(a.id), a.id);
        let kb = (queues.backlog_ticks(b.id), b.id);
        Some(if ka <= kb { a.id } else { b.id })
    }
}

/// Regime-scored router: keep traffic on optimally loaded servers,
/// off drain candidates and off overloaded ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegimeAware;

/// Routing penalty of a regime, as virtual backlog ticks added to the
/// instance's real queue before comparison. Zero for the optimal band
/// (R3); small for the high suboptimal band (R4, still has headroom);
/// larger for the low band (R2) and especially R1 — the consolidation
/// policy's drain candidates, where every routed request keeps a server
/// the energy layer wants asleep busy; largest for saturated R5, which
/// serves slowest. A *penalty* rather than a strict tier: preferred
/// regimes absorb traffic first, but once their queues grow past the
/// penalty gap the load spills over instead of piling up.
pub fn regime_penalty_ticks(regime: OperatingRegime) -> u64 {
    match regime {
        OperatingRegime::Optimal => 0,
        OperatingRegime::SuboptimalHigh => 100_000,
        OperatingRegime::SuboptimalLow => 250_000,
        OperatingRegime::UndesirableLow => 500_000,
        OperatingRegime::UndesirableHigh => 1_500_000,
    }
}

impl Picker for RegimeAware {
    fn name(&self) -> &'static str {
        "regime_aware"
    }

    fn pick(
        &mut self,
        set: &InstanceSet,
        queues: &QueueView<'_>,
        _request: RequestId,
    ) -> Option<ServerId> {
        let mut best: Option<(u64, ServerId)> = None;
        for &idx in set.awake_indices() {
            if let Some(inst) = set.get(idx) {
                let key = (
                    queues
                        .backlog_ticks(inst.id)
                        .saturating_add(regime_penalty_ticks(inst.regime)),
                    inst.id,
                );
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueModel;
    use ecolb_cluster::instances::InstanceInfo;
    use ecolb_simcore::time::{SimDuration, SimTime};

    fn inst(id: u32, awake: bool, regime: OperatingRegime, load: f64) -> InstanceInfo {
        InstanceInfo {
            id: ServerId(id),
            awake,
            regime,
            load,
            vms: 1,
        }
    }

    fn set(instances: Vec<InstanceInfo>) -> InstanceSet {
        InstanceSet::from_instances(instances)
    }

    #[test]
    fn round_robin_cycles_over_awake_only() {
        let s = set(vec![
            inst(0, true, OperatingRegime::Optimal, 0.5),
            inst(1, false, OperatingRegime::UndesirableLow, 0.0),
            inst(2, true, OperatingRegime::Optimal, 0.5),
        ]);
        let q = QueueModel::new(3);
        let view = q.view(SimTime::ZERO);
        let mut rr = RoundRobin::new();
        let picks: Vec<u32> = (0..4)
            .filter_map(|i| rr.pick(&s, &view, RequestId(i)))
            .map(|id| id.0)
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_follows_backlog() {
        let s = set(vec![
            inst(0, true, OperatingRegime::Optimal, 0.5),
            inst(1, true, OperatingRegime::Optimal, 0.5),
        ]);
        let mut q = QueueModel::new(2);
        q.enqueue(SimTime::ZERO, ServerId(0), SimDuration::from_secs(5));
        let view = q.view(SimTime::ZERO);
        let mut ll = LeastLoaded;
        assert_eq!(ll.pick(&s, &view, RequestId(0)), Some(ServerId(1)));
    }

    #[test]
    fn power_of_two_is_keyed_per_request() {
        let s = set((0..8)
            .map(|i| inst(i, true, OperatingRegime::Optimal, 0.5))
            .collect());
        let q = QueueModel::new(8);
        let view = q.view(SimTime::ZERO);
        let mut a = PowerOfTwo::new(42);
        let mut b = PowerOfTwo::new(42);
        // Same request id → same pick, regardless of call history.
        for _ in 0..5 {
            let _ = a.pick(&s, &view, RequestId(0));
        }
        assert_eq!(
            a.pick(&s, &view, RequestId(7)),
            b.pick(&s, &view, RequestId(7))
        );
    }

    #[test]
    fn power_of_two_single_instance() {
        let s = set(vec![inst(3, true, OperatingRegime::Optimal, 0.5)]);
        let q = QueueModel::new(4);
        let view = q.view(SimTime::ZERO);
        let mut p = PowerOfTwo::new(1);
        assert_eq!(p.pick(&s, &view, RequestId(0)), Some(ServerId(3)));
    }

    #[test]
    fn regime_aware_prefers_optimal_band() {
        let s = set(vec![
            inst(0, true, OperatingRegime::UndesirableLow, 0.05),
            inst(1, true, OperatingRegime::Optimal, 0.6),
            inst(2, true, OperatingRegime::UndesirableHigh, 0.95),
        ]);
        let q = QueueModel::new(3);
        let view = q.view(SimTime::ZERO);
        let mut ra = RegimeAware;
        assert_eq!(ra.pick(&s, &view, RequestId(0)), Some(ServerId(1)));
    }

    #[test]
    fn empty_awake_set_yields_none() {
        let s = set(vec![inst(0, false, OperatingRegime::UndesirableLow, 0.0)]);
        let q = QueueModel::new(1);
        let view = q.view(SimTime::ZERO);
        for kind in PickerKind::all() {
            let mut p = kind.build(9);
            assert_eq!(p.pick(&s, &view, RequestId(0)), None, "{}", p.name());
        }
    }

    #[test]
    fn kind_labels_match_picker_names() {
        for kind in PickerKind::all() {
            assert_eq!(kind.label(), kind.build(1).name());
        }
    }

    #[test]
    fn regime_penalties_are_a_strict_preference_order() {
        let penalties: Vec<u64> = [
            OperatingRegime::Optimal,
            OperatingRegime::SuboptimalHigh,
            OperatingRegime::SuboptimalLow,
            OperatingRegime::UndesirableLow,
            OperatingRegime::UndesirableHigh,
        ]
        .into_iter()
        .map(regime_penalty_ticks)
        .collect();
        assert!(
            penalties.windows(2).all(|w| w[0] < w[1]),
            "penalties must strictly increase with routing undesirability: {penalties:?}"
        );
    }

    #[test]
    fn regime_penalty_spills_over_under_load() {
        // An optimal server with a queue deeper than the drain-candidate
        // penalty gap loses to the idle drain candidate: steering, not
        // strict tiering.
        let s = set(vec![
            inst(0, true, OperatingRegime::UndesirableLow, 0.05),
            inst(1, true, OperatingRegime::Optimal, 0.6),
        ]);
        let mut q = QueueModel::new(2);
        q.enqueue(SimTime::ZERO, ServerId(1), SimDuration::from_secs(5));
        let view = q.view(SimTime::ZERO);
        let mut ra = RegimeAware;
        assert_eq!(ra.pick(&s, &view, RequestId(0)), Some(ServerId(0)));
    }
}
