//! Service discovery over the cluster: instance sets and change events.
//!
//! The serving layer is sans-io: nothing here polls a network registry.
//! [`Discover`] exposes the current routable [`InstanceSet`] plus the
//! [`Change`] events since the last poll — the deterministic analogue of
//! volo's discovery push channel. [`ClusterDiscover`] implements it by
//! snapshotting a [`Cluster`](ecolb_cluster::Cluster) at reallocation
//! boundaries and diffing successive snapshots, so wake/sleep/crash
//! decisions made by the §4 consolidation policy surface to the pickers
//! as membership changes, and migrations surface as instance updates.

use ecolb_cluster::instances::InstanceInfo;
use ecolb_cluster::server::ServerId;
use ecolb_cluster::Cluster;

/// A canonically ordered instance snapshot.
///
/// Instances are sorted by server id regardless of how they were
/// handed in, so every picker decision is a function of the *set*, not
/// of the discovery order — the determinism-under-reordering property
/// checked in the picker property tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InstanceSet {
    instances: Vec<InstanceInfo>,
    /// Indices (into `instances`) of the awake, routable entries.
    awake: Vec<usize>,
}

impl InstanceSet {
    /// Builds a set from instances in any order; sorts by server id.
    pub fn from_instances(mut instances: Vec<InstanceInfo>) -> Self {
        instances.sort_by_key(|i| i.id);
        let mut set = InstanceSet {
            instances,
            awake: Vec::new(),
        };
        set.reindex();
        set
    }

    /// Replaces the contents from a snapshot buffer (already in id
    /// order when it comes from `Cluster::instance_snapshot`); sorts
    /// defensively so callers cannot break the canonical order.
    pub fn replace_from(&mut self, snapshot: &[InstanceInfo]) {
        self.instances.clear();
        self.instances.extend_from_slice(snapshot);
        self.instances.sort_by_key(|i| i.id);
        self.reindex();
    }

    fn reindex(&mut self) {
        self.awake.clear();
        for (i, inst) in self.instances.iter().enumerate() {
            if inst.awake {
                self.awake.push(i);
            }
        }
    }

    /// All instances, in server-id order.
    pub fn instances(&self) -> &[InstanceInfo] {
        &self.instances
    }

    /// Indices of the awake (routable) instances, ascending.
    pub fn awake_indices(&self) -> &[usize] {
        &self.awake
    }

    /// Number of awake (routable) instances.
    pub fn awake_len(&self) -> usize {
        self.awake.len()
    }

    /// Total instances, routable or not.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the set holds no instances at all.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instance at `idx` (id order).
    pub fn get(&self, idx: usize) -> Option<&InstanceInfo> {
        self.instances.get(idx)
    }
}

/// One discovery change between two snapshots — the sans-io analogue of
/// a registry push notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// The server became routable (woke, recovered, or first seen).
    Joined(ServerId),
    /// The server left the routable set (slept or crashed).
    Left(ServerId),
    /// The server stayed routable but its load or VM census moved
    /// (demand evolution or a migration landing).
    Updated(ServerId),
}

impl Change {
    /// The server the change concerns.
    pub fn server(self) -> ServerId {
        match self {
            Change::Joined(s) | Change::Left(s) | Change::Updated(s) => s,
        }
    }
}

/// Computes the changes turning `old` into `new`, in server-id order.
/// Both sets are canonically ordered, so this is a linear merge.
pub fn diff_into(old: &InstanceSet, new: &InstanceSet, out: &mut Vec<Change>) {
    out.clear();
    let (a, b) = (old.instances(), new.instances());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let order = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.id.cmp(&y.id),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => break,
        };
        match order {
            std::cmp::Ordering::Less => {
                if a[i].awake {
                    out.push(Change::Left(a[i].id));
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if b[j].awake {
                    out.push(Change::Joined(b[j].id));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (x, y) = (&a[i], &b[j]);
                match (x.awake, y.awake) {
                    (false, true) => out.push(Change::Joined(y.id)),
                    (true, false) => out.push(Change::Left(y.id)),
                    (true, true) => {
                        if x.load != y.load || x.vms != y.vms || x.regime != y.regime {
                            out.push(Change::Updated(y.id));
                        }
                    }
                    (false, false) => {}
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// The discovery seam: the current routable set plus the changes since
/// the previous poll.
pub trait Discover {
    /// The current canonical instance set.
    fn instances(&self) -> &InstanceSet;
    /// Drains the changes accumulated since the last call into `out`
    /// (cleared first).
    fn poll_changes(&mut self, out: &mut Vec<Change>);
}

/// [`Discover`] backed by cluster snapshots at reallocation boundaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterDiscover {
    current: InstanceSet,
    previous: InstanceSet,
    scratch: Vec<InstanceInfo>,
    diff_scratch: Vec<Change>,
    pending: Vec<Change>,
}

impl ClusterDiscover {
    /// Creates a discover seeded with the cluster's initial snapshot
    /// (no pending changes — the initial set is the baseline).
    pub fn new(cluster: &Cluster) -> Self {
        let mut d = ClusterDiscover::default();
        cluster.instance_snapshot(&mut d.scratch);
        d.current.replace_from(&d.scratch);
        d
    }

    /// Re-snapshots the cluster and accumulates the diff against the
    /// previous snapshot into the pending change queue.
    pub fn refresh(&mut self, cluster: &Cluster) {
        std::mem::swap(&mut self.previous, &mut self.current);
        cluster.instance_snapshot(&mut self.scratch);
        self.current.replace_from(&self.scratch);
        diff_into(&self.previous, &self.current, &mut self.diff_scratch);
        self.pending.extend_from_slice(&self.diff_scratch);
    }
}

impl Discover for ClusterDiscover {
    fn instances(&self) -> &InstanceSet {
        &self.current
    }

    fn poll_changes(&mut self, out: &mut Vec<Change>) {
        out.clear();
        out.append(&mut self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolb_energy::regimes::OperatingRegime;

    fn inst(id: u32, awake: bool, load: f64) -> InstanceInfo {
        InstanceInfo {
            id: ServerId(id),
            awake,
            regime: OperatingRegime::Optimal,
            load,
            vms: 2,
        }
    }

    #[test]
    fn sets_canonicalize_order() {
        let a = InstanceSet::from_instances(vec![inst(2, true, 0.5), inst(0, true, 0.1)]);
        let b = InstanceSet::from_instances(vec![inst(0, true, 0.1), inst(2, true, 0.5)]);
        assert_eq!(a, b);
        assert_eq!(a.awake_len(), 2);
    }

    #[test]
    fn awake_index_skips_sleepers() {
        let s = InstanceSet::from_instances(vec![
            inst(0, true, 0.1),
            inst(1, false, 0.0),
            inst(2, true, 0.5),
        ]);
        assert_eq!(s.awake_indices(), &[0, 2]);
    }

    #[test]
    fn diff_reports_joins_leaves_updates() {
        let old = InstanceSet::from_instances(vec![
            inst(0, true, 0.1),
            inst(1, true, 0.2),
            inst(2, false, 0.0),
        ]);
        let new = InstanceSet::from_instances(vec![
            inst(0, true, 0.3),  // load moved
            inst(1, false, 0.0), // slept
            inst(2, true, 0.1),  // woke
        ]);
        let mut out = Vec::new();
        diff_into(&old, &new, &mut out);
        assert_eq!(
            out,
            vec![
                Change::Updated(ServerId(0)),
                Change::Left(ServerId(1)),
                Change::Joined(ServerId(2)),
            ]
        );
    }

    #[test]
    fn diff_of_identical_sets_is_empty() {
        let s = InstanceSet::from_instances(vec![inst(0, true, 0.1), inst(1, false, 0.0)]);
        let mut out = vec![Change::Joined(ServerId(9))];
        diff_into(&s, &s.clone(), &mut out);
        assert!(out.is_empty());
    }
}
