//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** held in a
//! [`SimTime`] newtype. Fixed-point time keeps event ordering exact and
//! platform-independent: two runs with the same seed produce bit-identical
//! schedules, which floating-point time cannot guarantee once durations are
//! accumulated in different orders.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of microsecond ticks per simulated second.
pub const TICKS_PER_SECOND: u64 = 1_000_000;

/// A point on the simulated timeline, in microseconds since the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for stop conditions.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates a time from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Creates a time from fractional simulated seconds, rounding to the
    /// nearest tick. Negative values saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// Raw microsecond ticks since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Creates a duration from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Creates a duration from whole simulated milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * (TICKS_PER_SECOND / 1000))
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// tick. Negative values saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// Raw microsecond ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// True when the span is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to ticks.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds when `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SECOND);
        assert_eq!(SimTime::from_ticks(42).ticks(), 42);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn fractional_seconds_round_to_ticks() {
        let t = SimTime::from_secs_f64(1.234_567_8);
        assert_eq!(t.ticks(), 1_234_568);
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_sub(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_sub(t), d);
    }

    #[test]
    fn ordering_is_total_on_ticks() {
        let a = SimTime::from_ticks(1);
        let b = SimTime::from_ticks(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_ticks(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_ticks(7)),
            Some(SimTime::from_ticks(7))
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn tracer_tick_rate_agrees_with_engine() {
        // ecolb-trace duplicates the tick rate so it can sit below this
        // crate in the dependency graph; the duplication must not drift.
        assert_eq!(ecolb_trace::TICKS_PER_SECOND, TICKS_PER_SECOND);
    }
}
