//! A tiny property-testing harness on the in-repo PRNG.
//!
//! The workspace is hermetic (no external crates), so instead of
//! `proptest` the property tests use this shrink-free harness: each case
//! draws its inputs from a [`Gen`] seeded by `splitmix64(base ^ case)`,
//! and a failing case panics with the **case seed** so it can be replayed
//! in isolation:
//!
//! ```text
//! ECOLB_PROP_SEED=<seed> cargo test -q failing_test_name
//! ```
//!
//! Design choices, deliberately simpler than proptest:
//! * no shrinking — cases are already small by construction, and the
//!   printed seed makes any failure reproducible;
//! * assertions are plain `assert!`/`assert_eq!` inside the closure;
//! * the number of cases defaults to 64 and is overridable with
//!   `ECOLB_PROP_CASES` (CI can crank it up without a recompile).

use crate::rng::{splitmix64, Rng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 64;

/// Per-case random input source: a thin wrapper over [`Rng`] with the
/// draw helpers property tests need.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Creates a generator for one case from its case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
        }
    }

    /// An arbitrary 64-bit value (the `any::<u64>()` of this harness).
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.uniform_u64(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(lo as u64, hi as u64) as u8
    }

    /// Uniform `f64` in `[lo, hi)` (or `[lo, hi]` when callers treat the
    /// half-open edge as closed; the distinction never matters for the
    /// properties here).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// A `Vec<f64>` with uniform entries in `[lo, hi)` and a uniform
    /// length in `[min_len, max_len)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Access to the underlying PRNG for draws the helpers do not cover.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// Runs `property` for [`DEFAULT_CASES`] cases (or `ECOLB_PROP_CASES`),
/// panicking with a replayable case seed on the first failure.
pub fn check(name: &str, property: impl FnMut(&mut Gen)) {
    check_cases(name, cases_from_env(), property);
}

/// [`check`] with an explicit case count.
pub fn check_cases(name: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = replay_seed_from_env() {
        eprintln!("proptest_lite: replaying {name} with ECOLB_PROP_SEED={seed}");
        let mut gen = Gen::from_seed(seed);
        property(&mut gen);
        return;
    }
    // Vary the base per property name so two properties in one test
    // binary do not see identical input streams.
    let base = name.bytes().fold(0x5EED_u64, |h, b| {
        let mut s = h ^ b as u64;
        splitmix64(&mut s)
    });
    for case in 0..cases {
        let mut s = base ^ case;
        let case_seed = splitmix64(&mut s);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(case_seed);
            property(&mut gen);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest_lite: property {name} failed on case {case}/{cases}; \
                 replay with ECOLB_PROP_SEED={case_seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn cases_from_env() -> u64 {
    match std::env::var("ECOLB_PROP_CASES") {
        Err(_) => DEFAULT_CASES,
        // A typo must not silently fall back: the caller thinks they
        // changed the case count.
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("ECOLB_PROP_CASES must be a u64, got {v:?}")),
    }
}

fn replay_seed_from_env() -> Option<u64> {
    let v = std::env::var("ECOLB_PROP_SEED").ok()?;
    // A typo must not silently run a fresh sweep: the caller thinks
    // they replayed the recorded failure.
    Some(
        v.parse()
            .unwrap_or_else(|_| panic!("ECOLB_PROP_SEED must be a u64, got {v:?}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_see_distinct_inputs() {
        let mut seen = Vec::new();
        check_cases("distinct", 16, |g| seen.push(g.u64()));
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16, "16 cases draw 16 distinct first values");
    }

    #[test]
    fn properties_with_different_names_diverge() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        check_cases("stream-a", 8, |g| a.push(g.u64()));
        check_cases("stream-b", 8, |g| b.push(g.u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        check_cases("ranges", 64, |g| {
            assert!((2..30).contains(&g.usize_in(2, 30)));
            let x = g.f64_in(0.25, 0.5);
            assert!((0.25..0.5).contains(&x));
            let v = g.vec_f64(0.0, 1.0, 2, 50);
            assert!((2..50).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        });
    }

    #[test]
    fn failure_reports_replay_seed() {
        let caught = std::panic::catch_unwind(|| {
            check_cases("always-fails", 4, |_| panic!("intentional"));
        });
        assert!(caught.is_err(), "failing property must propagate the panic");
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        check_cases("replay", 8, |g| a.push(g.u64()));
        check_cases("replay", 8, |g| b.push(g.u64()));
        assert_eq!(a, b, "property streams are deterministic");
    }
}
