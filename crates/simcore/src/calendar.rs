//! Calendar queue — the classic O(1) pending-event set.
//!
//! Brown's calendar queue (CACM 1988) buckets events by time like a desk
//! calendar: one bucket per "day", a linear scan within the current day,
//! and automatic resizing when the population outgrows the year. For the
//! uniformly distributed event offsets a cluster simulation generates, it
//! amortises enqueue/dequeue to O(1) where a binary heap pays O(log n).
//!
//! [`CalendarQueue`] is a drop-in alternative to
//! [`EventQueue`](crate::event::EventQueue) with the same deterministic
//! tie-breaking (insertion order via sequence numbers). `bench_engine`
//! compares the two; on this suite's bulk push-then-drain workload the
//! binary heap wins (~0.9 ms vs ~2.4 ms per 10 k events — this
//! implementation keeps buckets sorted with `Vec` insert/remove, which is
//! O(bucket length)), so the engine keeps the heap as its default. The
//! calendar queue is here as the classic DES alternative with an
//! equivalence proof against the heap, and a measured — not assumed —
//! verdict.

use crate::time::SimTime;

/// One stored event with its deterministic tie-break key.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

/// A calendar queue over payload type `T`.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Buckets of events, each kept sorted by `(at, seq)` ascending.
    buckets: Vec<Vec<Entry<T>>>,
    /// Width of one bucket ("day length") in ticks.
    day_ticks: u64,
    /// Index of the bucket the cursor is in.
    current_bucket: usize,
    /// Start tick of the current year's current day.
    current_day_start: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;
const INITIAL_DAY_TICKS: u64 = 1_000; // 1 ms days to start

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            day_ticks: INITIAL_DAY_TICKS,
            current_bucket: 0,
            current_day_start: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.ticks() / self.day_ticks) % self.buckets.len() as u64) as usize
    }

    /// Schedules `payload` at `at`. Events already due before the cursor
    /// are allowed (they land in the cursor's bucket and are found by the
    /// scan).
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bucket = self.bucket_of(at);
        let entry = Entry { at, seq, payload };
        let list = &mut self.buckets[bucket];
        // Insert sorted; bucket lists stay short by construction.
        let pos = list
            .binary_search_by(|e| (e.at, e.seq).cmp(&(entry.at, entry.seq)))
            .unwrap_err();
        list.insert(pos, entry);
        self.len += 1;
        // Maintain the scan invariant (no pending event earlier than the
        // cursor's day): inserts behind the cursor — or into an empty
        // queue whose cursor drifted ahead — rewind it.
        if self.len == 1 || at.ticks() < self.current_day_start {
            self.current_day_start = at.ticks() / self.day_ticks * self.day_ticks;
            self.current_bucket = self.bucket_of(at);
        }
        if self.len > self.buckets.len() * 4 {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn resize(&mut self, new_buckets: usize) {
        // Re-estimate the day width from the average inter-event gap so
        // each bucket holds O(1) events of the next year.
        let mut entries: Vec<Entry<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        entries.sort_by(|a, b| (a.at, a.seq).cmp(&(b.at, b.seq)));
        if entries.len() >= 2 {
            let span = entries[entries.len() - 1].at.ticks() - entries[0].at.ticks();
            self.day_ticks = (span / entries.len() as u64).max(1);
        }
        self.buckets = (0..new_buckets).map(|_| Vec::new()).collect();
        let restart = entries.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
        self.current_day_start = restart.ticks() / self.day_ticks * self.day_ticks;
        self.current_bucket = self.bucket_of(restart);
        self.len = 0;
        let seq_backup = self.next_seq;
        for e in entries {
            // Re-insert preserving original sequence numbers.
            let bucket = self.bucket_of(e.at);
            self.buckets[bucket].push(e);
            self.len += 1;
        }
        for b in &mut self.buckets {
            b.sort_by(|a, c| (a.at, a.seq).cmp(&(c.at, c.seq)));
        }
        self.next_seq = seq_backup;
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.len == 0 {
            return None;
        }
        let n_buckets = self.buckets.len();
        // Walk days until the cursor's bucket holds an event of the
        // current day; after a whole lap, fall back to a global minimum
        // search (events far in the future).
        for _ in 0..=n_buckets {
            let day_end = self.current_day_start + self.day_ticks;
            let bucket = &self.buckets[self.current_bucket];
            if let Some(first) = bucket.first() {
                if first.at.ticks() < day_end {
                    let e = self.buckets[self.current_bucket].remove(0);
                    self.len -= 1;
                    return Some((e.at, e.payload));
                }
            }
            self.current_bucket = (self.current_bucket + 1) % n_buckets;
            self.current_day_start = day_end;
        }
        // Sparse year: jump straight to the global minimum. `len > 0`
        // implies a non-empty bucket exists; if the invariant ever broke we
        // report empty instead of panicking mid-simulation.
        let Some((idx, _)) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, (e.at, e.seq))))
            .min_by_key(|&(_, key)| key)
        else {
            debug_assert!(false, "len > 0 but all buckets empty");
            return None;
        };
        let e = self.buckets[idx].remove(0);
        self.len -= 1;
        self.current_bucket = idx;
        self.current_day_start = e.at.ticks() / self.day_ticks * self.day_ticks;
        Some((e.at, e.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.schedule(SimTime::from_secs(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn agrees_with_binary_heap_on_random_workload() {
        let mut rng = Rng::new(99);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        // Mixed schedule/pop sequence over a wide time range.
        for i in 0..5_000u64 {
            let t = SimTime::from_ticks(rng.uniform_u64(10_000_000));
            cal.schedule(t, i);
            heap.schedule(t, i);
            if rng.chance(0.3) {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn handles_resize_across_wide_spans() {
        let mut q = CalendarQueue::new();
        // Forces several resizes and a sparse far-future tail.
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_secs(i * i), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev, "time went backwards");
            prev = t;
            count += 1;
        }
        assert_eq!(count, 1_000);
    }

    #[test]
    fn interleaves_past_and_future_inserts() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(100), 100u64);
        assert_eq!(q.pop().unwrap().1, 100);
        // Insert before the cursor's notion of "now": still retrievable.
        q.schedule(SimTime::from_secs(10), 10);
        q.schedule(SimTime::from_secs(200), 200);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 200);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }
}
