//! Calendar queue — the classic O(1) pending-event set.
//!
//! Brown's calendar queue (CACM 1988) buckets events by time like a desk
//! calendar: one bucket per "day", a linear scan within the current day,
//! and automatic resizing when the population outgrows (or underflows)
//! the year. For the uniformly distributed event offsets a cluster
//! simulation generates, it amortises enqueue/dequeue to O(1) where a
//! binary heap pays O(log n).
//!
//! [`CalendarQueue`] is a drop-in alternative to
//! [`EventQueue`](crate::event::EventQueue) with the same deterministic
//! tie-breaking (insertion order via sequence numbers). Buckets are
//! [`VecDeque`]s kept sorted by `(time, seq)`: `pop` is a front pop
//! (O(1)), and the common in-time-order insert is a back push (O(1));
//! only out-of-order inserts pay a binary search plus a shift. The year
//! grows *and* shrinks (Brown's rule: double above 2× buckets, halve
//! below ½× buckets), and the day width is re-estimated from the average
//! *positive* gap between adjacent event timestamps, so clustered or
//! all-tied timestamps cannot collapse the day to 1 tick and degrade
//! pops to full-ring scans.
//!
//! `perf_engine` in `ecolb-bench` compares the two, and the measured
//! verdict is workload-shaped. On the classic *hold model* (steady
//! population, pop-earliest-then-reschedule — the shape `Engine::run`
//! generates) the fixed calendar queue is flat at ~130 ns/op regardless
//! of population, while the heap grows with log n: ~80 ns/op at 1 k
//! pending events, ~260 ns/op at 100 k. The crossover sits near ~10 k
//! pending events; below it the heap's contiguous, L1-resident array
//! beats the calendar's pointer-chasing buckets. On a one-shot bulk
//! push-then-drain of 10 k events the heap also wins (~0.9 ms vs
//! ~2.5 ms) because the calendar pays its resize churn with no
//! steady state to amortise it. The engine keeps the heap as its
//! default: its pending populations are tens of events, and the heap
//! supports same-instant [`Priority`](crate::event::Priority) tiers,
//! which the calendar queue does not. The verdict is measured, not
//! assumed — `perf_engine`'s `push_pop_10k`/`hold_10k` smokes reproduce
//! it.

use crate::time::SimTime;
use std::collections::VecDeque;

/// One stored event with its deterministic tie-break key.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A calendar queue over payload type `T`.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Buckets of events, each kept sorted by `(at, seq)` ascending.
    /// `VecDeque` so the earliest entry pops from the front in O(1).
    buckets: Vec<VecDeque<Entry<T>>>,
    /// Width of one bucket ("day length") in ticks.
    day_ticks: u64,
    /// Index of the bucket the cursor is in.
    current_bucket: usize,
    /// Start tick of the current year's current day.
    current_day_start: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;
const INITIAL_DAY_TICKS: u64 = 1_000; // 1 ms days to start

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| VecDeque::new()).collect(),
            day_ticks: INITIAL_DAY_TICKS,
            current_bucket: 0,
            current_day_start: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.ticks() / self.day_ticks) % self.buckets.len() as u64) as usize
    }

    /// Schedules `payload` at `at`. Events already due before the cursor
    /// are allowed (they land in the cursor's bucket and are found by the
    /// scan).
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bucket = self.bucket_of(at);
        let entry = Entry { at, seq, payload };
        let list = &mut self.buckets[bucket];
        // The common case — events scheduled in nondecreasing time order —
        // is a back push. Out-of-order inserts binary-search the position;
        // `seq` is unique so the key is never already present.
        if list.back().is_none_or(|b| b.key() < entry.key()) {
            list.push_back(entry);
        } else {
            let pos = list.partition_point(|e| e.key() < entry.key());
            list.insert(pos, entry);
        }
        self.len += 1;
        // Maintain the scan invariant (no pending event earlier than the
        // cursor's day): inserts behind the cursor — or into an empty
        // queue whose cursor drifted ahead — rewind it.
        if self.len == 1 || at.ticks() < self.current_day_start {
            self.current_day_start = at.ticks() / self.day_ticks * self.day_ticks;
            self.current_bucket = self.bucket_of(at);
        }
        // Brown's growth rule: keep the year at least half as long as the
        // population so buckets stay O(1).
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Rebuilds the year with `new_buckets` days and a day width
    /// re-estimated from the events actually pending.
    fn resize(&mut self, new_buckets: usize) {
        let mut entries: Vec<Entry<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        entries.sort_by(|a, b| a.key().cmp(&b.key()));
        // Day width from the average *positive* gap between adjacent
        // timestamps. The previous `span / len` estimate collapsed to
        // 1 tick whenever timestamps clustered (many ties shrink the
        // apparent gap), which degraded every pop to a full-ring scan.
        // Ties contribute nothing here; when *all* timestamps tie there
        // is no gap information, so the current width is kept.
        let mut gap_sum = 0u64;
        let mut gaps = 0u64;
        for pair in entries.windows(2) {
            let d = pair[1].at.ticks() - pair[0].at.ticks();
            if d > 0 {
                gap_sum = gap_sum.saturating_add(d);
                gaps += 1;
            }
        }
        if gaps > 0 {
            self.day_ticks = (gap_sum / gaps).max(1);
        }
        self.buckets = (0..new_buckets).map(|_| VecDeque::new()).collect();
        let restart = entries.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
        self.current_day_start = restart.ticks() / self.day_ticks * self.day_ticks;
        self.current_bucket = self.bucket_of(restart);
        self.len = entries.len();
        // Entries are globally sorted, so per-bucket push order is sorted
        // too — no per-bucket re-sort needed.
        for e in entries {
            let bucket = self.bucket_of(e.at);
            self.buckets[bucket].push_back(e);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.len == 0 {
            return None;
        }
        let popped = self.pop_inner();
        // Brown's shrink rule: halve the year when the population falls
        // below half the bucket count, so a drained queue does not keep
        // walking a huge, mostly-empty ring.
        if popped.is_some()
            && self.buckets.len() > INITIAL_BUCKETS
            && self.len < self.buckets.len() / 2
        {
            self.resize(self.buckets.len() / 2);
        }
        popped
    }

    fn pop_inner(&mut self) -> Option<(SimTime, T)> {
        let n_buckets = self.buckets.len();
        // Walk days until the cursor's bucket holds an event of the
        // current day; after a whole lap, fall back to a global minimum
        // search (events far in the future).
        for _ in 0..=n_buckets {
            let day_end = self.current_day_start + self.day_ticks;
            let bucket = &mut self.buckets[self.current_bucket];
            if bucket
                .front()
                .is_some_and(|first| first.at.ticks() < day_end)
            {
                let e = bucket.pop_front()?;
                self.len -= 1;
                return Some((e.at, e.payload));
            }
            self.current_bucket = (self.current_bucket + 1) % n_buckets;
            self.current_day_start = day_end;
        }
        // Sparse year: jump straight to the global minimum. `len > 0`
        // implies a non-empty bucket exists; if the invariant ever broke we
        // report empty instead of panicking mid-simulation.
        let Some((idx, _)) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|e| (i, e.key())))
            .min_by_key(|&(_, key)| key)
        else {
            debug_assert!(false, "len > 0 but all buckets empty");
            return None;
        };
        let e = self.buckets[idx].pop_front()?;
        self.len -= 1;
        self.current_bucket = idx;
        self.current_day_start = e.at.ticks() / self.day_ticks * self.day_ticks;
        Some((e.at, e.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::proptest_lite::{check, Gen};
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.schedule(SimTime::from_secs(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.schedule(SimTime::from_secs(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn agrees_with_binary_heap_on_random_workload() {
        let mut rng = Rng::new(99);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        // Mixed schedule/pop sequence over a wide time range.
        for i in 0..5_000u64 {
            let t = SimTime::from_ticks(rng.uniform_u64(10_000_000));
            cal.schedule(t, i);
            heap.schedule(t, i);
            if rng.chance(0.3) {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn handles_resize_across_wide_spans() {
        let mut q = CalendarQueue::new();
        // Forces several resizes and a sparse far-future tail.
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_secs(i * i), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev, "time went backwards");
            prev = t;
            count += 1;
        }
        assert_eq!(count, 1_000);
    }

    #[test]
    fn interleaves_past_and_future_inserts() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(100), 100u64);
        assert_eq!(q.pop().unwrap().1, 100);
        // Insert before the cursor's notion of "now": still retrievable.
        q.schedule(SimTime::from_secs(10), 10);
        q.schedule(SimTime::from_secs(200), 200);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 200);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn year_shrinks_after_draining() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_ticks(i * 37), i);
        }
        let grown = q.buckets.len();
        assert!(grown > INITIAL_BUCKETS, "10k events must grow the year");
        for _ in 0..9_990 {
            q.pop();
        }
        assert!(
            q.buckets.len() < grown,
            "draining to 10 events must shrink the year ({} -> {})",
            grown,
            q.buckets.len()
        );
        // And the survivors still pop in order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (9_990..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn clustered_timestamps_do_not_collapse_day_width() {
        let mut q = CalendarQueue::new();
        // 40 clusters of 25 tied events, 1 s apart: the old `span / len`
        // estimate gave span/1000 = 40 ms-days ≈ fine here, but with ties
        // *within* a growing population it could reach 1 tick. The gap
        // estimator must land on ~1 s (the only positive gap present).
        for c in 0..40u64 {
            for i in 0..25u64 {
                q.schedule(SimTime::from_secs(c), c * 25 + i);
            }
        }
        assert_eq!(q.day_ticks, SimTime::from_secs(1).ticks());
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn all_ties_keep_previous_day_width() {
        let mut q = CalendarQueue::new();
        // 100 events at the same instant force a resize with zero positive
        // gaps; the estimator must keep the prior width, not divide by the
        // population and collapse to 1 tick.
        for i in 0..100u64 {
            q.schedule(SimTime::from_secs(5), i);
        }
        assert_eq!(q.day_ticks, INITIAL_DAY_TICKS);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Draws one adversarial timestamp according to the case's
    /// distribution mode: 0 = uniform, 1 = clustered (few distinct
    /// instants), 2 = sparse-year (rare events flung across ~a year),
    /// 3 = all-ties (a single instant).
    fn adversarial_time(g: &mut Gen, mode: u8) -> SimTime {
        match mode {
            0 => SimTime::from_ticks(g.u64_in(0, 50_000_000)),
            1 => SimTime::from_secs(g.u64_in(0, 8) * 3600),
            2 => SimTime::from_secs(g.u64_in(0, 365 * 24 * 3600)),
            _ => SimTime::from_secs(42),
        }
    }

    #[test]
    fn equivalence_with_heap_under_adversarial_distributions() {
        check("calendar-heap-equivalence", |g| {
            let mode = g.u8_in(0, 4);
            let ops = g.usize_in(50, 400);
            let mut cal = CalendarQueue::new();
            let mut heap = EventQueue::new();
            for i in 0..ops as u64 {
                let t = adversarial_time(g, mode);
                cal.schedule(t, i);
                heap.schedule(t, i);
                // Interleave pops so the cursor walks, rewinds, and the
                // queue resizes (grows and shrinks) mid-stream.
                if g.u8_in(0, 10) < 4 {
                    assert_eq!(cal.pop(), heap.pop(), "mid-stream pop diverged");
                }
            }
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                assert_eq!(a, b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        });
    }
}
