//! The simulation run-loop.
//!
//! [`Engine`] owns the clock and pending-event set and repeatedly pops the
//! earliest event, advances the clock, and hands the event to a user-supplied
//! handler. The handler can schedule further events through the
//! [`Scheduler`] view it receives, but it cannot touch the clock — time only
//! moves forward through the loop itself.
//!
//! The design is deliberately monomorphic over the event payload type `E`
//! (each simulation defines one event enum) rather than trait objects: event
//! dispatch is the hottest loop of the simulator and an enum match compiles
//! to a jump table, whereas boxed closures would allocate per event.

use ecolb_trace::{NoTrace, SpanKind, TraceEventKind, Tracer};

use crate::event::{EventQueue, Priority};
use crate::time::{SimDuration, SimTime};

/// The scheduling interface handed to event handlers.
///
/// A thin wrapper over the queue that also knows the current instant, so
/// handlers schedule with relative delays. The tracer parameter defaults
/// to [`NoTrace`], so pre-trace `Scheduler<'_, E>` annotations keep
/// compiling and the untraced path monomorphizes to the original code.
pub struct Scheduler<'a, E, T: Tracer = NoTrace> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    tracer: &'a mut T,
}

impl<'a, E, T: Tracer> Scheduler<'a, E, T> {
    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's tracer, for handlers that emit domain events. A
    /// `&mut T` auto-coerces to `&mut dyn Tracer` at cold call sites.
    #[inline]
    pub fn tracer(&mut self) -> &mut T {
        self.tracer
    }

    /// Schedules `event` to fire `delay` after the current instant.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.tracer.counter("engine.scheduled", 1);
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant, which must not be in the
    /// past (panics in debug builds otherwise).
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.tracer.counter("engine.scheduled", 1);
        self.queue.schedule(at, event);
    }

    /// Schedules with an explicit same-instant priority.
    #[inline]
    pub fn schedule_at_with(&mut self, at: SimTime, prio: Priority, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.tracer.counter("engine.scheduled", 1);
        self.queue.schedule_with(at, prio, event);
    }

    /// Number of currently pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained before any limit was hit.
    Drained,
    /// The time horizon was reached.
    HorizonReached,
    /// The event-count budget was exhausted (runaway-schedule backstop).
    EventBudgetExhausted,
    /// A handler requested an early stop.
    Stopped,
}

impl RunOutcome {
    /// Stable snake_case label used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            RunOutcome::Drained => "drained",
            RunOutcome::HorizonReached => "horizon",
            RunOutcome::EventBudgetExhausted => "budget",
            RunOutcome::Stopped => "stopped",
        }
    }
}

/// Flow-control decision returned by event handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep running.
    #[default]
    Continue,
    /// Stop after this event; `Engine::run` returns [`RunOutcome::Stopped`].
    Stop,
}

/// An interceptor's verdict on an event about to be delivered — the
/// injection seam of [`Engine::run_intercepted`]. Fault layers use it to
/// model lossy or slow links without the handler ever knowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Hand the event to the handler normally.
    #[default]
    Deliver,
    /// Silently discard the event (it still counts as processed).
    Drop,
    /// Requeue the event this far in the future instead of delivering it
    /// now. A zero delay delivers immediately (no requeue), so an
    /// interceptor cannot live-lock the loop.
    Delay(SimDuration),
}

/// A discrete-event simulation engine over event payload type `E`.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: SimTime,
    event_budget: u64,
    events_processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with no horizon and a very large event budget.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon: SimTime::MAX,
            event_budget: u64::MAX,
            events_processed: 0,
        }
    }

    /// [`Engine::new`] with the event queue pre-sized for `capacity`
    /// pending events. With enough headroom for the simulation's peak
    /// event population, the dispatch loop performs no heap allocation at
    /// all: popping, handling, and rescheduling reuse the queue's storage.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// Sets the time horizon: events strictly after `horizon` are not
    /// processed (they stay pending).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets a hard cap on the number of processed events.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules an initial event before the run starts (or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Schedules an initial event with a same-instant priority.
    pub fn schedule_at_with(&mut self, at: SimTime, prio: Priority, event: E) {
        self.queue.schedule_with(at, prio, event);
    }

    /// Runs the loop until drained, horizon, budget, or handler stop.
    ///
    /// The handler receives each event together with a [`Scheduler`] for
    /// follow-up scheduling and a `&mut S` simulation state.
    pub fn run<S>(
        &mut self,
        state: &mut S,
        handler: impl FnMut(&mut S, &mut Scheduler<'_, E>, E) -> Control,
    ) -> RunOutcome {
        self.run_intercepted(state, |_, _, _| Disposition::Deliver, handler)
    }

    /// [`Engine::run`] with a tracer: the loop emits `engine_started` /
    /// `engine_finished` events, an `engine` span, and per-dispatch
    /// counters. With [`NoTrace`] this monomorphizes back to the plain
    /// loop.
    pub fn run_traced<S, T: Tracer>(
        &mut self,
        state: &mut S,
        tracer: &mut T,
        handler: impl FnMut(&mut S, &mut Scheduler<'_, E, T>, E) -> Control,
    ) -> RunOutcome {
        self.run_intercepted_traced(state, tracer, |_, _, _| Disposition::Deliver, handler)
    }

    /// [`Engine::run`] with an injection seam: before each event reaches
    /// the handler, `intercept` may [`Disposition::Drop`] it (lossy link)
    /// or [`Disposition::Delay`] it (slow link, requeued at `now + d`).
    /// An interceptor that always answers [`Disposition::Deliver`] makes
    /// this loop identical to [`Engine::run`] — same clock, same event
    /// order, same `events_processed` count.
    pub fn run_intercepted<S>(
        &mut self,
        state: &mut S,
        intercept: impl FnMut(&mut S, SimTime, &E) -> Disposition,
        handler: impl FnMut(&mut S, &mut Scheduler<'_, E>, E) -> Control,
    ) -> RunOutcome {
        self.run_intercepted_traced(state, &mut NoTrace, intercept, handler)
    }

    /// [`Engine::run_intercepted`] with a tracer. Interceptor verdicts
    /// become `event_dropped` / `event_delayed` trace events, so fault
    /// injection dispositions are visible in the trace without the fault
    /// layer knowing about the tracer.
    pub fn run_intercepted_traced<S, T: Tracer>(
        &mut self,
        state: &mut S,
        tracer: &mut T,
        mut intercept: impl FnMut(&mut S, SimTime, &E) -> Disposition,
        mut handler: impl FnMut(&mut S, &mut Scheduler<'_, E, T>, E) -> Control,
    ) -> RunOutcome {
        tracer.span_enter(self.now.ticks(), SpanKind::Engine);
        tracer.event(self.now.ticks(), TraceEventKind::EngineStarted);
        let outcome = loop {
            match self.queue.peek_time() {
                None => break RunOutcome::Drained,
                Some(t) if t > self.horizon => break RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::EventBudgetExhausted;
            }
            // An invariant-checking tracer can stop the run as soon as a
            // violation is detected; the default `false` lets this poll
            // monomorphize away for `NoTrace`.
            if tracer.abort_requested() {
                break RunOutcome::Stopped;
            }
            // The peek above saw an event; a racing-free single-threaded
            // queue cannot lose it, but drain gracefully rather than panic.
            let Some((at, event)) = self.queue.pop() else {
                break RunOutcome::Drained;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            tracer.counter("engine.dispatched", 1);
            match intercept(state, self.now, &event) {
                Disposition::Deliver => {}
                Disposition::Drop => {
                    tracer.event(self.now.ticks(), TraceEventKind::EventDropped);
                    tracer.counter("engine.dropped", 1);
                    continue;
                }
                Disposition::Delay(d) if !d.is_zero() => {
                    tracer.event(
                        self.now.ticks(),
                        TraceEventKind::EventDelayed {
                            delay_us: d.ticks(),
                        },
                    );
                    tracer.counter("engine.delayed", 1);
                    self.queue.schedule(self.now + d, event);
                    continue;
                }
                Disposition::Delay(_) => {} // zero delay: deliver now
            }
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                tracer: &mut *tracer,
            };
            if handler(state, &mut sched, event) == Control::Stop {
                break RunOutcome::Stopped;
            }
        };
        tracer.event(
            self.now.ticks(),
            TraceEventKind::EngineFinished {
                outcome: outcome.label(),
                events: self.events_processed,
            },
        );
        tracer.span_exit(self.now.ticks(), SpanKind::Engine);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn drains_when_no_follow_ups() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut seen = Vec::new();
        let outcome = engine.run(&mut seen, |seen, _s, ev| {
            if let Ev::Tick(i) = ev {
                seen.push(i);
            }
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn self_scheduling_chain_advances_clock() {
        let mut engine = Engine::new().with_horizon(SimTime::from_secs(10));
        engine.schedule_at(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        let outcome = engine.run(&mut count, |count, s, _ev| {
            *count += 1;
            s.schedule_in(SimDuration::from_secs(1), Ev::Tick(*count));
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t = 0..=10 inclusive fire; t = 11 exceeds the horizon.
        assert_eq!(count, 11);
        assert_eq!(engine.now(), SimTime::from_secs(10));
    }

    #[test]
    fn handler_stop_is_honoured() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        engine.schedule_at(SimTime::from_secs(2), Ev::Stop);
        engine.schedule_at(SimTime::from_secs(3), Ev::Tick(3));
        let mut seen = Vec::new();
        let outcome = engine.run(&mut seen, |seen, _s, ev| match ev {
            Ev::Stop => Control::Stop,
            Ev::Tick(i) => {
                seen.push(i);
                Control::Continue
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn event_budget_backstops_runaway_schedules() {
        let mut engine = Engine::new().with_event_budget(100);
        engine.schedule_at(SimTime::ZERO, Ev::Tick(0));
        let outcome = engine.run(&mut (), |_, s, _| {
            // Pathological: schedules two follow-ups per event.
            s.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
            s.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(engine.events_processed(), 100);
    }

    #[test]
    fn always_deliver_interception_matches_plain_run() {
        let mk = || {
            let mut e = Engine::new();
            for i in 0..5 {
                e.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
            }
            e
        };
        let mut plain = mk();
        let mut seen_plain = Vec::new();
        plain.run(&mut seen_plain, |seen, _s, ev| {
            if let Ev::Tick(i) = ev {
                seen.push(i);
            }
            Control::Continue
        });
        let mut hooked = mk();
        let mut seen_hooked = Vec::new();
        hooked.run_intercepted(
            &mut seen_hooked,
            |_, _, _| Disposition::Deliver,
            |seen, _s, ev| {
                if let Ev::Tick(i) = ev {
                    seen.push(i);
                }
                Control::Continue
            },
        );
        assert_eq!(seen_plain, seen_hooked);
        assert_eq!(plain.events_processed(), hooked.events_processed());
        assert_eq!(plain.now(), hooked.now());
    }

    #[test]
    fn dropped_events_never_reach_the_handler() {
        let mut engine = Engine::new();
        for i in 0..6 {
            engine.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut seen = Vec::new();
        let outcome = engine.run_intercepted(
            &mut seen,
            |_, _, ev| match ev {
                Ev::Tick(i) if i % 2 == 1 => Disposition::Drop,
                _ => Disposition::Deliver,
            },
            |seen, _s, ev| {
                if let Ev::Tick(i) = ev {
                    seen.push(i);
                }
                Control::Continue
            },
        );
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![0, 2, 4], "odd ticks dropped on the link");
        assert_eq!(engine.events_processed(), 6, "drops still count");
    }

    #[test]
    fn delayed_events_arrive_later_in_order() {
        struct St {
            delayed_once: bool,
            order: Vec<(u32, u64)>,
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        engine.schedule_at(SimTime::from_secs(2), Ev::Tick(2));
        // Delay tick 1 by 3 s (once): it now lands after tick 2.
        let mut st = St {
            delayed_once: false,
            order: Vec::new(),
        };
        engine.run_intercepted(
            &mut st,
            |st, _, ev| {
                if matches!(ev, Ev::Tick(1)) && !st.delayed_once {
                    st.delayed_once = true;
                    return Disposition::Delay(SimDuration::from_secs(3));
                }
                Disposition::Deliver
            },
            |st, s, ev| {
                if let Ev::Tick(i) = ev {
                    st.order.push((i, s.now().ticks() / 1_000_000));
                }
                Control::Continue
            },
        );
        assert!(st.delayed_once);
        assert_eq!(st.order, vec![(2, 2), (1, 4)], "tick 1 requeued to t = 4 s");
    }

    #[test]
    fn zero_delay_delivers_immediately() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        let mut count = 0u32;
        let outcome = engine.run_intercepted(
            &mut count,
            |_, _, _| Disposition::Delay(SimDuration::ZERO),
            |count, _s, _ev| {
                *count += 1;
                Control::Continue
            },
        );
        assert_eq!(outcome, RunOutcome::Drained, "no live-lock on zero delay");
        assert_eq!(count, 1);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut engine = Engine::new();
        for i in [5u64, 1, 9, 3, 3, 7] {
            engine.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut last = SimTime::ZERO;
        engine.run(&mut last, |last, s, _| {
            assert!(s.now() >= *last);
            *last = s.now();
            Control::Continue
        });
    }

    #[test]
    fn traced_run_brackets_with_engine_lifecycle_events() {
        use ecolb_trace::RingTracer;
        let mut engine = Engine::new();
        for i in 0..3 {
            engine.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut tracer = RingTracer::new();
        let outcome = engine.run_traced(&mut (), &mut tracer, |_, s, _| {
            s.tracer().counter("test.handled", 1);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        let kinds: Vec<&'static str> = tracer.events().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "span_enter",
                "engine_started",
                "engine_finished",
                "span_exit"
            ]
        );
        assert_eq!(tracer.counter_value("engine.dispatched"), 3);
        assert_eq!(tracer.counter_value("test.handled"), 3);
        assert!(tracer.events().any(|e| e.kind
            == TraceEventKind::EngineFinished {
                outcome: "drained",
                events: 3
            }));
    }

    #[test]
    fn traced_interception_records_dispositions() {
        use ecolb_trace::RingTracer;
        let mut engine = Engine::new();
        for i in 0..4 {
            engine.schedule_at(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let mut tracer = RingTracer::new();
        let mut seen = Vec::new();
        let mut delayed_once = false;
        engine.run_intercepted_traced(
            &mut seen,
            &mut tracer,
            |_, _, ev| match ev {
                Ev::Tick(1) => Disposition::Drop,
                Ev::Tick(2) if !delayed_once => {
                    delayed_once = true;
                    Disposition::Delay(SimDuration::from_secs(5))
                }
                _ => Disposition::Deliver,
            },
            |seen: &mut Vec<u32>, _s, ev| {
                if let Ev::Tick(i) = ev {
                    seen.push(i);
                }
                Control::Continue
            },
        );
        assert_eq!(seen, vec![0, 3, 2], "tick 2 requeued past tick 3");
        assert_eq!(tracer.counter_value("engine.dropped"), 1);
        assert_eq!(tracer.counter_value("engine.delayed"), 1);
        assert!(tracer.events().any(|e| e.kind
            == TraceEventKind::EventDelayed {
                delay_us: 5_000_000
            }));
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        use ecolb_trace::RingTracer;
        let mk = || {
            let mut e = Engine::new();
            e.schedule_at(SimTime::ZERO, Ev::Tick(0));
            e
        };
        let mut plain = mk();
        let plain_outcome = plain.run(&mut 0u32, |n, s, _| {
            *n += 1;
            if *n < 10 {
                s.schedule_in(SimDuration::from_secs(1), Ev::Tick(*n));
            }
            Control::Continue
        });
        let mut traced = mk();
        let mut rt = RingTracer::new();
        let traced_outcome = traced.run_traced(&mut 0u32, &mut rt, |n, s, _| {
            *n += 1;
            if *n < 10 {
                s.schedule_in(SimDuration::from_secs(1), Ev::Tick(*n));
            }
            Control::Continue
        });
        assert_eq!(plain_outcome, traced_outcome);
        assert_eq!(plain.now(), traced.now());
        assert_eq!(plain.events_processed(), traced.events_processed());
        assert_eq!(rt.counter_value("engine.scheduled"), 9);
    }

    #[test]
    fn scheduler_reports_pending() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Tick(0));
        engine.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
        let mut pendings = Vec::new();
        engine.run(&mut pendings, |p, s, _| {
            p.push(s.pending());
            Control::Continue
        });
        assert_eq!(pendings, vec![1, 0]);
    }
}
