//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own PRNG — **xoshiro256++** seeded through
//! SplitMix64 — instead of depending on an external crate whose stream might
//! change between versions. Every experiment in the paper reproduction is
//! identified by a single `u64` seed; the same seed always yields the same
//! event schedule and therefore bit-identical reports.
//!
//! The generator also supports cheap *stream splitting* ([`Rng::split`]):
//! each server or application can own an independent sub-stream derived from
//! the parent seed, so adding instrumentation that draws extra numbers in one
//! component does not perturb any other component.

/// SplitMix64 step; used for seeding and stream splitting.
///
/// Reference: Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", <https://prng.di.unimi.it/xoshiro256plusplus.c>.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed. The four state words are
    /// produced by SplitMix64, which guarantees a non-zero state for every
    /// seed, including zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator. The child stream is a
    /// function of the parent's current state, so successive `split` calls
    /// produce distinct streams, and the parent advances by one draw.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (high bits of the 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in the half-open interval `[0, 1)` with 53 bits of
    /// precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Panics in debug builds when `lo > hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased multiply-shift
    /// rejection method. Panics when `n == 0`.
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_u64 upper bound must be positive");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)` for container indexing.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.uniform_u64(n as u64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the canonical C implementation of
    /// xoshiro256++ seeded with SplitMix64(1..=4 steps from seed 0).
    #[test]
    fn matches_reference_stream_shape() {
        // We can't link the C code here, so instead pin the first outputs of
        // our own implementation: any accidental change to the generator
        // breaks reproducibility of every experiment and must be deliberate.
        let mut rng = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = Rng::new(7);
        let child1 = parent1.split();
        let mut parent2 = Rng::new(7);
        let child2 = parent2.split();
        assert_eq!(child1, child2);
        // Consuming the parent after the split does not affect the child.
        parent1.next_u64();
        assert_eq!(child1, child2);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            let x = rng.uniform(0.2, 0.4);
            assert!((0.2..0.4).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_unbiased_small_range() {
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.uniform_u64(5) as usize] += 1;
        }
        let expect = n as f64 / 5.0;
        for &c in &counts {
            // 5-sigma band for a binomial with p = 1/5.
            let sigma = (n as f64 * 0.2 * 0.8).sqrt();
            assert!(
                (c as f64 - expect).abs() < 5.0 * sigma,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_u64_power_of_two_path() {
        let mut rng = Rng::new(6);
        for _ in 0..1000 {
            assert!(rng.uniform_u64(8) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_u64_zero_panics() {
        Rng::new(0).uniform_u64(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(8);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = Rng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(10);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
