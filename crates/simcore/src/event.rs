//! The pending-event set.
//!
//! [`EventQueue`] is a binary min-heap keyed on `(time, priority, seq)`.
//! The sequence number breaks ties **deterministically in insertion order**,
//! which is essential for reproducibility: two events scheduled for the same
//! instant always fire in the order they were scheduled, on every platform
//! and every run.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Scheduling priority for events that share a timestamp. Lower values fire
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// Fires before everything else at the same instant (e.g. measurement
    /// snapshots that must observe pre-transition state).
    pub const FIRST: Priority = Priority(0);
    /// Default priority.
    pub const NORMAL: Priority = Priority(128);
    /// Fires after everything else at the same instant (e.g. end-of-interval
    /// bookkeeping).
    pub const LAST: Priority = Priority(255);
}

/// A scheduled entry: payload `T` plus its firing key.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    at: SimTime,
    prio: Priority,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Scheduled<T> {
    #[inline]
    fn key(&self) -> (SimTime, Priority, u64) {
        (self.at, self.prio, self.seq)
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest key on top.
        other.key().cmp(&self.key())
    }
}

/// Deterministic pending-event set.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at` with [`Priority::NORMAL`].
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        self.schedule_with(at, Priority::NORMAL, payload);
    }

    /// Schedules `payload` at `at` with an explicit same-instant priority.
    pub fn schedule_with(&mut self, at: SimTime, prio: Priority, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            prio,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn priority_overrides_insertion_order_within_instant() {
        let mut q = EventQueue::new();
        q.schedule_with(t(2), Priority::LAST, "last");
        q.schedule_with(t(2), Priority::NORMAL, "normal");
        q.schedule_with(t(2), Priority::FIRST, "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["first", "normal", "last"]);
    }

    #[test]
    fn time_dominates_priority() {
        let mut q = EventQueue::new();
        q.schedule_with(t(1), Priority::LAST, "early-low-prio");
        q.schedule_with(t(2), Priority::FIRST, "late-high-prio");
        assert_eq!(q.pop().unwrap().1, "early-low-prio");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(4), ());
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(t(5), 5);
        q.schedule(t(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
