//! # ecolb-simcore
//!
//! Deterministic discrete-event simulation core for the `ecolb` suite — the
//! reproduction of *"Energy-aware Load Balancing Policies for the Cloud
//! Ecosystem"* (Paya & Marinescu, 2014).
//!
//! The crate provides the three primitives every experiment builds on:
//!
//! * [`time`] — fixed-point simulated time ([`SimTime`], [`SimDuration`]);
//! * [`rng`]/[`dist`] — a self-contained, seedable xoshiro256++ generator
//!   and the distributions used by the workload models;
//! * [`event`]/[`engine`] — a deterministic pending-event set and run-loop;
//! * [`par`] — order-preserving `std::thread` fan-out for experiment
//!   matrices (bit-identical at any thread count);
//! * [`proptest_lite`] — a shrink-free, seed-replayable property harness.
//!
//! Everything is seed-reproducible: the same seed produces bit-identical
//! results on every platform, which is what lets the benchmark harness pin
//! the paper's tables as regression tests.
//!
//! ```
//! use ecolb_simcore::prelude::*;
//!
//! let mut engine: Engine<u32> = Engine::new().with_horizon(SimTime::from_secs(5));
//! engine.schedule_at(SimTime::ZERO, 0);
//! let mut fired = 0u32;
//! engine.run(&mut fired, |fired, sched, _ev| {
//!     *fired += 1;
//!     sched.schedule_in(SimDuration::from_secs(1), *fired);
//!     Control::Continue
//! });
//! assert_eq!(fired, 6); // t = 0,1,2,3,4,5
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod par;
pub mod proptest_lite;
pub mod rng;
pub mod time;

/// One-stop imports for simulation authors.
pub mod prelude {
    pub use crate::dist::{
        Constant, Distribution, Erlang, Exponential, LogNormal, Normal, Pareto, Poisson, Uniform,
        Weibull, Zipf,
    };
    pub use crate::engine::{Control, Disposition, Engine, RunOutcome, Scheduler};
    pub use crate::event::{EventQueue, Priority};
    pub use crate::rng::Rng;
    pub use crate::time::{SimDuration, SimTime};
}

pub use calendar::CalendarQueue;
pub use dist::Distribution;
pub use engine::{Control, Disposition, Engine, RunOutcome, Scheduler};
pub use event::{EventQueue, Priority};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
