//! Probability distributions on top of [`Rng`](crate::rng::Rng).
//!
//! Each distribution is a small value type with a `sample(&mut Rng)` method,
//! plus the [`Distribution`] trait for generic call sites (workload
//! generators take `impl Distribution` so experiments can swap load shapes
//! without touching the cluster code).

use crate::rng::Rng;

/// Something that can draw `f64` samples from an [`Rng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution mean, when it exists, for analytic cross-checks.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates the distribution; panics when `lo > hi` or a bound is not
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "uniform bounds must be finite"
        );
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    #[inline]
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Normal distribution via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (non-negative).
    pub sigma: f64,
}

impl Normal {
    /// Creates the distribution; panics on negative or non-finite `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be >= 0, got {sigma}"
        );
        Normal { mu, sigma }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Marsaglia polar method; we deliberately discard the second variate
        // to keep the sampler stateless (determinism is easier to reason
        // about when each draw consumes a bounded, state-free number of RNG
        // outputs).
        loop {
            let u = rng.uniform(-1.0, 1.0);
            let v = rng.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter; strictly positive.
    pub lambda: f64,
}

impl Exponential {
    /// Creates the distribution; panics when `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be > 0, got {lambda}"
        );
        Exponential { lambda }
    }
}

impl Distribution for Exponential {
    #[inline]
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform; (1 - u) keeps the argument strictly positive.
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Pareto (type I) distribution: heavy-tailed, used for spiky workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale: the minimum value, strictly positive.
    pub scale: f64,
    /// Shape `alpha`; strictly positive. The mean is finite only for
    /// `alpha > 1`.
    pub shape: f64,
}

impl Pareto {
    /// Creates the distribution; panics on non-positive parameters.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "scale must be > 0, got {scale}");
        assert!(shape > 0.0, "shape must be > 0, got {shape}");
        Pareto { scale, shape }
    }
}

impl Distribution for Pareto {
    #[inline]
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale / (1.0 - rng.next_f64()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        (self.shape > 1.0).then(|| self.shape * self.scale / (self.shape - 1.0))
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampled by inversion against the precomputed CDF; `O(log n)` per draw.
/// Used for popularity-skewed application placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n`; panics when `n == 0` or
    /// `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be >= 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Knuth's multiplication method for small means, normal approximation with
/// continuity correction beyond `lambda = 30` (adequate for arrival counts;
/// error is well below the stochastic noise of the experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Mean; non-negative.
    pub lambda: f64,
}

impl Poisson {
    /// Creates the distribution; panics on negative or non-finite `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be >= 0, got {lambda}"
        );
        Poisson { lambda }
    }

    /// Draws a count.
    pub fn sample_count(&self, rng: &mut Rng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let n = Normal::new(self.lambda, self.lambda.sqrt()).sample(rng) + 0.5;
            if n < 0.0 {
                0
            } else {
                n as u64
            }
        }
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_count(rng) as f64
    }

    fn mean(&self) -> Option<f64> {
        Some(self.lambda)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))` — the classic model for
/// file sizes and service times with a heavy right tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; panics on negative or non-finite `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be >= 0, got {sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Parameterises the distribution by its own mean and the underlying
    /// sigma: `mu = ln(mean) − sigma²/2`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        Normal::new(self.mu, self.sigma).sample(rng).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

/// Weibull distribution — failure times and duty cycles; `shape < 1`
/// gives a decreasing hazard (infant mortality), `shape > 1` wear-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Scale parameter λ, strictly positive.
    pub scale: f64,
    /// Shape parameter k, strictly positive.
    pub shape: f64,
}

impl Weibull {
    /// Creates the distribution; panics on non-positive parameters.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "scale must be > 0, got {scale}");
        assert!(shape > 0.0, "shape must be > 0, got {shape}");
        Weibull { scale, shape }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform: λ · (−ln(1−u))^{1/k}.
        self.scale * (-(1.0 - rng.next_f64()).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma(1.0 + 1.0 / self.shape))
    }
}

/// Erlang-k distribution: sum of `k` exponentials — service times with
/// bounded variability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    /// Number of exponential stages.
    pub k: u32,
    /// Rate of each stage.
    pub lambda: f64,
}

impl Erlang {
    /// Creates the distribution; panics on `k == 0` or non-positive rate.
    pub fn new(k: u32, lambda: f64) -> Self {
        assert!(k > 0, "Erlang needs at least one stage");
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be > 0");
        Erlang { k, lambda }
    }
}

impl Distribution for Erlang {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Product-of-uniforms form avoids k logarithms.
        let mut prod = 1.0;
        for _ in 0..self.k {
            prod *= 1.0 - rng.next_f64();
        }
        -prod.ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(self.k as f64 / self.lambda)
    }
}

/// Lanczos approximation of the gamma function, used for the Weibull
/// mean. Accurate to ~1e-10 over the range the distributions use.
fn gamma(x: f64) -> f64 {
    // Lanczos g = 7, n = 9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A constant "distribution" — handy as a degenerate workload shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    #[inline]
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }

    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean<D: Distribution>(d: &D, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_mean_matches() {
        let d = Uniform::new(0.2, 0.4);
        let m = sample_mean(&d, 1, 100_000);
        assert!((m - 0.3).abs() < 0.002, "mean {m}");
        assert!((d.mean().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn normal_mean_and_sd_match() {
        let d = Normal::new(5.0, 2.0);
        let mut rng = Rng::new(2);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(0.25);
        let m = sample_mean(&d, 3, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1.0);
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Pareto::new(2.0, 2.5);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        let m = sample_mean(&d, 6, 400_000);
        let expect = d.mean().unwrap();
        assert!(
            (m - expect).abs() / expect < 0.05,
            "mean {m} expect {expect}"
        );
    }

    #[test]
    fn pareto_mean_undefined_for_heavy_tail() {
        assert_eq!(Pareto::new(1.0, 0.9).mean(), None);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.2);
        let mut rng = Rng::new(7);
        let mut counts = vec![0u32; 101];
        for _ in 0..50_000 {
            counts[d.sample_rank(&mut rng)] += 1;
        }
        assert!(
            counts[1] > counts[2],
            "rank 1 {} rank 2 {}",
            counts[1],
            counts[2]
        );
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0, "rank 0 must never occur");
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let d = Zipf::new(4, 0.0);
        let mut rng = Rng::new(8);
        let mut counts = [0u32; 5];
        let n = 80_000;
        for _ in 0..n {
            counts[d.sample_rank(&mut rng)] += 1;
        }
        for &c in &counts[1..] {
            assert!((c as f64 - n as f64 / 4.0).abs() < 800.0, "count {c}");
        }
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.5);
        let m = sample_mean(&d, 9, 100_000);
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(250.0);
        let m = sample_mean(&d, 10, 50_000);
        assert!((m - 250.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = Rng::new(11);
        assert_eq!(Poisson::new(0.0).sample_count(&mut rng), 0);
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = Rng::new(12);
        assert_eq!(Constant(0.7).sample(&mut rng), 0.7);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_rejects_inverted_bounds() {
        Uniform::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn normal_rejects_negative_sigma() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = LogNormal::with_mean(5.0, 0.5);
        let m = sample_mean(&d, 20, 400_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((d.mean().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let d = LogNormal::new(0.0, 1.0);
        let mut rng = Rng::new(21);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "right skew: mean {mean} > median {median}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(2.0, 1.0);
        let m = sample_mean(&w, 22, 200_000);
        assert!((m - 2.0).abs() < 0.03, "mean {m}");
        assert!((w.mean().unwrap() - 2.0).abs() < 1e-9, "Γ(2) = 1");
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        let w = Weibull::new(1.0, 2.0);
        // mean = Γ(1.5) = √π/2 ≈ 0.8862.
        assert!((w.mean().unwrap() - 0.886_226_9).abs() < 1e-6);
        let m = sample_mean(&w, 23, 200_000);
        assert!((m - 0.8862).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn erlang_mean_and_lower_variance_than_exponential() {
        let e = Erlang::new(4, 2.0); // mean 2.0
        let m = sample_mean(&e, 24, 200_000);
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
        let mut rng = Rng::new(25);
        let n = 100_000;
        let var_erlang = {
            let xs: Vec<f64> = (0..n).map(|_| e.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        let ex = Exponential::new(0.5); // same mean 2.0
        let var_exp = {
            let xs: Vec<f64> = (0..n).map(|_| ex.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        assert!(
            var_erlang < var_exp,
            "Erlang-4 is less variable: {var_erlang} < {var_exp}"
        );
    }

    #[test]
    fn gamma_function_reference_points() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "stage")]
    fn erlang_rejects_zero_stages() {
        Erlang::new(0, 1.0);
    }
}
