//! Deterministic data parallelism on plain `std::thread`.
//!
//! The experiment matrices are embarrassingly parallel, but the harness
//! must stay hermetic (no external crates) and bit-reproducible: the
//! result of a sweep may not depend on how many workers ran it. This
//! module provides a scoped, work-stealing-free pool: items are assigned
//! to workers by a fixed round-robin stripe of their *index*, each worker
//! returns `(index, result)` pairs, and the caller reassembles them in
//! input order. Because every item carries its own seed derived from its
//! index (not from a shared RNG), output is byte-identical at any thread
//! count.

use std::num::NonZeroUsize;

/// Number of workers to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` scoped worker threads and returns
/// the results **in input order**, regardless of thread count or
/// scheduling. `f` receives the item's index alongside the item so
/// callers can derive per-item seeds.
///
/// Items are striped round-robin across workers (worker `w` takes items
/// `w`, `w + threads`, `w + 2·threads`, …) — no queue, no stealing — so
/// the assignment itself is deterministic too.
///
/// Panics in a worker are propagated to the caller.
pub fn map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    // Deal items into per-worker stripes, remembering original indices.
    let mut stripes: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        stripes[i % threads].push((i, item));
    }

    let f = &f;
    let mut produced = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                scope.spawn(move || {
                    stripe
                        .into_iter()
                        .map(|(i, x)| (i, f(i, x)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                // Re-raise the worker's own panic payload instead of
                // replacing it with a second, less informative one.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<(usize, R)>>()
    });
    // Every index 0..n occurs exactly once across the stripes, so sorting
    // by index restores input order without per-slot occupancy checks.
    produced.sort_by_key(|&(i, _)| i);
    produced.into_iter().map(|(_, r)| r).collect()
}

/// [`map_indexed`] with [`default_threads`] workers.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_indexed(items, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = map_indexed((0..100u64).collect(), 7, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize, x: u64| x.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let one = map_indexed((0..37u64).collect(), 1, work);
        let four = map_indexed((0..37u64).collect(), 4, work);
        let many = map_indexed((0..37u64).collect(), 16, work);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = map_indexed(Vec::new(), 4, |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(map_indexed(vec![9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(map_indexed(vec![1u8, 2], 64, |_, x| x), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        map_indexed(vec![0u8, 1], 2, |_, x| {
            assert_ne!(x, 1, "boom");
            x
        });
    }
}
