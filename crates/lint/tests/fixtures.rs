//! Self-test: every rule must fire on its bad fixture and stay silent on
//! its good fixture. The fixtures live under `crates/lint/fixtures/` and
//! are excluded from the workspace walk — they are fed to the engine
//! directly here, under a synthetic path inside the rule's scope.

use ecolb_lint::{lint_files, lint_source};

/// (rule, synthetic path placing the fixture in the rule's scope, bad, good)
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "no-wallclock",
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/no-wallclock/bad.rs"),
        include_str!("../fixtures/no-wallclock/good.rs"),
    ),
    (
        "no-unordered-collections",
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/no-unordered-collections/bad.rs"),
        include_str!("../fixtures/no-unordered-collections/good.rs"),
    ),
    (
        "no-ambient-rng",
        "crates/policies/src/fixture.rs",
        include_str!("../fixtures/no-ambient-rng/bad.rs"),
        include_str!("../fixtures/no-ambient-rng/good.rs"),
    ),
    (
        "no-env-reads",
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/no-env-reads/bad.rs"),
        include_str!("../fixtures/no-env-reads/good.rs"),
    ),
    (
        "float-truncating-cast",
        "crates/metrics/src/fixture.rs",
        include_str!("../fixtures/float-truncating-cast/bad.rs"),
        include_str!("../fixtures/float-truncating-cast/good.rs"),
    ),
    (
        "float-reduction-order",
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/float-reduction-order/bad.rs"),
        include_str!("../fixtures/float-reduction-order/good.rs"),
    ),
];

/// Graph-layer rules need the full workspace pipeline (`lint_files`), not
/// the token-only `lint_source` — the fixture is a one-file workspace.
const GRAPH_CASES: &[(&str, &str, &str, &str)] = &[
    (
        "seed-provenance",
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/seed-provenance/bad.rs"),
        include_str!("../fixtures/seed-provenance/good.rs"),
    ),
    (
        "silent-result-drop",
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/silent-result-drop/bad.rs"),
        include_str!("../fixtures/silent-result-drop/good.rs"),
    ),
];

#[test]
fn every_rule_fires_on_bad_and_passes_good() {
    for (rule, path, bad, good) in CASES {
        let (bad_findings, _) = lint_source(path, bad);
        assert!(
            bad_findings.iter().any(|f| f.rule == *rule),
            "rule {rule} did not fire on its bad fixture; findings: {bad_findings:?}"
        );
        let (good_findings, _) = lint_source(path, good);
        let leaked: Vec<_> = good_findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            leaked.is_empty(),
            "rule {rule} fired on its good fixture: {leaked:?}"
        );
    }
}

#[test]
fn good_fixtures_are_clean_under_all_rules() {
    for (rule, path, _, good) in CASES {
        let (findings, _) = lint_source(path, good);
        assert!(
            findings.is_empty(),
            "good fixture of {rule} has findings under other rules: {findings:?}"
        );
    }
}

#[test]
fn every_graph_rule_fires_on_bad_and_passes_good() {
    for (rule, path, bad, good) in GRAPH_CASES {
        let report = lint_files(&[(path.to_string(), bad.to_string())]);
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            !hits.is_empty(),
            "rule {rule} did not fire on its bad fixture; findings: {:?}",
            report.findings
        );
        let report = lint_files(&[(path.to_string(), good.to_string())]);
        let leaked: Vec<_> = report.findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            leaked.is_empty(),
            "rule {rule} fired on its good fixture: {leaked:?}"
        );
    }
}

#[test]
fn graph_good_fixtures_are_clean_under_the_full_pipeline() {
    for (rule, path, _, good) in GRAPH_CASES {
        let report = lint_files(&[(path.to_string(), good.to_string())]);
        assert!(
            report.findings.is_empty(),
            "good fixture of {rule} has findings under other rules: {:?}",
            report.findings
        );
    }
}

#[test]
fn seed_provenance_findings_carry_witnesses() {
    let (_, path, bad, _) = GRAPH_CASES[0];
    let report = lint_files(&[(path.to_string(), bad.to_string())]);
    for f in report
        .findings
        .iter()
        .filter(|f| f.rule == "seed-provenance")
    {
        assert!(
            !f.witness.is_empty(),
            "seed-provenance finding without a call-path witness: {f:?}"
        );
        assert!(
            f.witness[0].contains("balance_round"),
            "witness should start at the entry point: {:?}",
            f.witness
        );
    }
}

#[test]
fn panic_budget_counts_bad_sites_and_ignores_good() {
    let path = "crates/cluster/src/fixture.rs";
    let (_, bad_sites) = lint_source(path, include_str!("../fixtures/panic-budget/bad.rs"));
    assert_eq!(
        bad_sites.len(),
        3,
        "two unwraps and one panic! expected: {bad_sites:?}"
    );
    let (_, good_sites) = lint_source(path, include_str!("../fixtures/panic-budget/good.rs"));
    assert!(
        good_sites.is_empty(),
        "good fixture has library panic sites: {good_sites:?}"
    );
}

#[test]
fn bad_fixture_locations_are_plausible() {
    let (findings, _) = lint_source(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/no-wallclock/bad.rs"),
    );
    for f in &findings {
        assert!(f.line > 1, "finding should not point at the comment header");
        assert!(f.col >= 1);
    }
}
