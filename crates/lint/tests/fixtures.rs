//! Self-test: every rule must fire on its bad fixture and stay silent on
//! its good fixture. The fixtures live under `crates/lint/fixtures/` and
//! are excluded from the workspace walk — they are fed to the engine
//! directly here, under a synthetic path inside the rule's scope.

use ecolb_lint::lint_source;

/// (rule, synthetic path placing the fixture in the rule's scope, bad, good)
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "no-wallclock",
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/no-wallclock/bad.rs"),
        include_str!("../fixtures/no-wallclock/good.rs"),
    ),
    (
        "no-unordered-collections",
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/no-unordered-collections/bad.rs"),
        include_str!("../fixtures/no-unordered-collections/good.rs"),
    ),
    (
        "no-ambient-rng",
        "crates/policies/src/fixture.rs",
        include_str!("../fixtures/no-ambient-rng/bad.rs"),
        include_str!("../fixtures/no-ambient-rng/good.rs"),
    ),
    (
        "no-env-reads",
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/no-env-reads/bad.rs"),
        include_str!("../fixtures/no-env-reads/good.rs"),
    ),
    (
        "float-truncating-cast",
        "crates/metrics/src/fixture.rs",
        include_str!("../fixtures/float-truncating-cast/bad.rs"),
        include_str!("../fixtures/float-truncating-cast/good.rs"),
    ),
];

#[test]
fn every_rule_fires_on_bad_and_passes_good() {
    for (rule, path, bad, good) in CASES {
        let (bad_findings, _) = lint_source(path, bad);
        assert!(
            bad_findings.iter().any(|f| f.rule == *rule),
            "rule {rule} did not fire on its bad fixture; findings: {bad_findings:?}"
        );
        let (good_findings, _) = lint_source(path, good);
        let leaked: Vec<_> = good_findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            leaked.is_empty(),
            "rule {rule} fired on its good fixture: {leaked:?}"
        );
    }
}

#[test]
fn good_fixtures_are_clean_under_all_rules() {
    for (rule, path, _, good) in CASES {
        let (findings, _) = lint_source(path, good);
        assert!(
            findings.is_empty(),
            "good fixture of {rule} has findings under other rules: {findings:?}"
        );
    }
}

#[test]
fn panic_budget_counts_bad_sites_and_ignores_good() {
    let path = "crates/cluster/src/fixture.rs";
    let (_, bad_sites) = lint_source(path, include_str!("../fixtures/panic-budget/bad.rs"));
    assert_eq!(
        bad_sites.len(),
        3,
        "two unwraps and one panic! expected: {bad_sites:?}"
    );
    let (_, good_sites) = lint_source(path, include_str!("../fixtures/panic-budget/good.rs"));
    assert!(
        good_sites.is_empty(),
        "good fixture has library panic sites: {good_sites:?}"
    );
}

#[test]
fn bad_fixture_locations_are_plausible() {
    let (findings, _) = lint_source(
        "crates/simcore/src/fixture.rs",
        include_str!("../fixtures/no-wallclock/bad.rs"),
    );
    for f in &findings {
        assert!(f.line > 1, "finding should not point at the comment header");
        assert!(f.col >= 1);
    }
}
