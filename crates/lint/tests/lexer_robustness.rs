//! Satellite: lexer robustness against the classic false-positive traps.
//! A lint that fires inside comments or strings would train people to
//! ignore it; these tests pin the no-false-positive behaviour end to end
//! (through `lint_source`, not just the lexer).

use ecolb_lint::lexer::{lex, TokenKind};
use ecolb_lint::lint_source;

const SIM_PATH: &str = "crates/cluster/src/doc_heavy.rs";

#[test]
fn banned_names_in_line_comments_do_not_fire() {
    let src = "\
// This module once used HashMap and Instant::now() — see the git log.
// std::env::var(\"ECOLB_X\") is also only mentioned here.
pub fn clean() {}
";
    let (findings, _) = lint_source(SIM_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn banned_names_in_nested_block_comments_do_not_fire() {
    let src = "\
/* outer
   /* nested: HashMap<ServerId, f64> and SystemTime::now() */
   still inside the outer comment: HashSet
*/
pub fn clean() {}
";
    let (findings, _) = lint_source(SIM_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn banned_names_in_strings_and_raw_strings_do_not_fire() {
    let src = r####"
pub fn messages() -> [&'static str; 3] {
    [
        "replace HashMap with BTreeMap",
        r#"raw: SystemTime::now() inside a guarded "string""#,
        r##"deeper guard: std::env::var("HOME") and Instant"##,
    ]
}
"####;
    let (findings, _) = lint_source(SIM_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn comment_markers_inside_strings_do_not_hide_following_code() {
    // If `//` inside the string opened a comment, the HashMap after it
    // would be invisible and the lint would go silent. It must fire.
    let src = r#"
pub fn url() -> &'static str { "http://example.com" }
pub type Bad = HashMap<u32, u32>;
"#;
    let (findings, _) = lint_source(SIM_PATH, src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "no-unordered-collections");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn block_comment_markers_inside_strings_do_not_swallow_code() {
    let src = "\
pub fn s() -> &'static str { \"/* not a comment\" }
pub type Bad = HashSet<u32>;
";
    let (findings, _) = lint_source(SIM_PATH, src);
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn escaped_quotes_do_not_terminate_strings_early() {
    let src = r#"
pub fn s() -> String { format!("quote \" then HashMap {}", 1) }
"#;
    let (findings, _) = lint_source(SIM_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
    let src = "\
pub fn f<'a>(s: &'a str) -> char {
    let q = '\"';
    let n = '\\'';
    if s.is_empty() { q } else { n }
}
pub type Bad = HashMap<u32, u32>;
";
    let (findings, _) = lint_source(SIM_PATH, src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 6);
}

#[test]
fn token_positions_survive_multibyte_chars() {
    // The é is two bytes but one column; the ident after it must still
    // have a sane column.
    let toks = lex("let é_x = 1; y").tokens;
    let y = toks.iter().find(|t| t.is_ident("y")).expect("y lexed");
    assert_eq!(y.line, 1);
    assert_eq!(y.col, 14);
}

#[test]
fn doc_comments_are_comments_too() {
    let src = "\
/// Uses HashMap internally? No — that would be flagged. Doc mention ok.
//! Module docs naming SystemTime are fine as well.
pub fn clean() {}
";
    let (findings, _) = lint_source(SIM_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn kinds_roundtrip_on_a_mixed_snippet() {
    let toks =
        lex(r#"let x = 1.5e3; let s = "hi"; let c = 'c'; 'label: loop { break 'label; }"#).tokens;
    assert!(toks.iter().any(|t| t.kind == TokenKind::Float));
    assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
    assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
}

// ---- item-parser robustness (v2: the parser feeds the call graph, so a
// ---- parse derailment would silently empty the reachable set) ----

use ecolb_lint::parse::parse_items;

#[test]
fn parser_survives_nested_generics_in_signatures() {
    let src = "\
pub fn fold<K: Ord, V, F: FnMut(BTreeMap<K, Vec<V>>, (K, V)) -> BTreeMap<K, Vec<V>>>(
    init: BTreeMap<K, Vec<V>>,
    items: Vec<(K, V)>,
    f: F,
) -> BTreeMap<K, Vec<V>> {
    items.into_iter().fold(init, f)
}
pub fn after(x: u64) -> u64 { x }
";
    let parsed = parse_items(&lex(src).tokens);
    let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        ["fold", "after"],
        "nested generics derailed the item scan"
    );
    let fold = &parsed.fns[0];
    assert!(
        fold.params.contains(&"init".to_string()),
        "{:?}",
        fold.params
    );
    assert!(fold.params.contains(&"f".to_string()), "{:?}", fold.params);
    assert!(fold.body.is_some());
}

#[test]
fn parser_survives_raw_and_byte_strings_inside_items() {
    let src = r####"
pub fn emit() -> String {
    let header = r#"{"fn": "not a real item", "impl Engine {": 1}"#;
    let bytes = b"fn also_not_real() {";
    format!("{}{:?}", header, bytes)
}
pub fn next_item(n: u64) -> u64 { n + 1 }
"####;
    let parsed = parse_items(&lex(src).tokens);
    let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        ["emit", "next_item"],
        "string contents leaked into the item scan"
    );
}

#[test]
fn parser_keeps_impl_owner_across_where_clauses_and_arrows() {
    let src = "\
impl<T> Scheduler<T> where T: Tracer {
    pub fn run(&mut self) -> RunOutcome { self.step() }
    fn step(&mut self) -> RunOutcome { RunOutcome::Done }
}
";
    let parsed = parse_items(&lex(src).tokens);
    let owners: Vec<Option<&str>> = parsed.fns.iter().map(|f| f.owner.as_deref()).collect();
    assert_eq!(owners, [Some("Scheduler"), Some("Scheduler")], "{parsed:?}");
}

#[test]
fn parser_marks_cfg_test_functions() {
    let src = "\
pub fn library_fn() {}
#[cfg(test)]
mod tests {
    #[test]
    fn a_test() { library_fn(); }
}
";
    let parsed = parse_items(&lex(src).tokens);
    let by_name: Vec<(&str, bool)> = parsed
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.is_test))
        .collect();
    assert!(by_name.contains(&("library_fn", false)), "{by_name:?}");
    assert!(by_name.contains(&("a_test", true)), "{by_name:?}");
}
