//! Call-graph / reachability integration tests on a mini multi-file
//! workspace, including the acceptance regression: an injected wall-clock
//! read in a helper called (transitively) from `balance_round` must be
//! caught by `sim-path-purity`, with a call-path witness.

use ecolb_lint::lint_files;

fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// The acceptance regression from the issue: `balance_round` calls
/// `select_donor`, which calls `tiebreak`, which reads the wall clock.
/// The helpers live in *different files and crates* — only the call graph
/// can connect them.
#[test]
fn injected_wallclock_in_a_balance_round_helper_is_caught() {
    let sources = ws(&[
        (
            "crates/cluster/src/balance.rs",
            "use crate::select::select_donor;\n\
             pub fn balance_round(seed: u64, servers: &mut [Server]) {\n\
                 let donor = select_donor(servers);\n\
                 let _ = (seed, donor);\n\
             }\n",
        ),
        (
            "crates/cluster/src/select.rs",
            "use ecolb_policies::tiebreak;\n\
             pub fn select_donor(servers: &[Server]) -> usize {\n\
                 tiebreak(servers.len())\n\
             }\n",
        ),
        (
            "crates/policies/src/lib.rs",
            "pub fn tiebreak(n: usize) -> usize {\n\
                 let t = std::time::Instant::now();\n\
                 t.elapsed().subsec_nanos() as usize % n\n\
             }\n",
        ),
    ]);
    let report = lint_files(&sources);
    let purity: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "sim-path-purity" && f.path == "crates/policies/src/lib.rs")
        .collect();
    assert!(
        !purity.is_empty(),
        "injected wallclock not caught: {:?}",
        report.findings
    );
    let witness = &purity[0].witness;
    assert!(
        witness
            .first()
            .map(|w| w.contains("balance_round"))
            .unwrap_or(false),
        "witness must start at the entry point: {witness:?}"
    );
    assert!(
        witness
            .last()
            .map(|w| w.contains("tiebreak"))
            .unwrap_or(false),
        "witness must end at the violating function: {witness:?}"
    );
    assert!(
        witness.iter().any(|w| w.contains("select_donor")),
        "witness must pass through the intermediate helper: {witness:?}"
    );
}

/// The same hazard in a function *not* reachable from any entry point is
/// reported only by the token layer (here: none, since `policies` is in
/// the no-wallclock scope — so it still fires as no-wallclock, but with
/// no purity finding and no witness).
#[test]
fn unreachable_helpers_get_no_purity_finding() {
    let sources = ws(&[(
        "crates/policies/src/lib.rs",
        "pub fn debug_probe(n: usize) -> usize {\n\
             let t = std::time::Instant::now();\n\
             t.elapsed().subsec_nanos() as usize % n\n\
         }\n",
    )]);
    let report = lint_files(&sources);
    assert!(
        !report.findings.iter().any(|f| f.rule == "sim-path-purity"),
        "{:?}",
        report.findings
    );
    // The token rule still covers it.
    assert!(report.findings.iter().any(|f| f.rule == "no-wallclock"));
}

/// Code in tests, benches and bin targets never enters the graph: an
/// entry-point-named function there creates no reachability.
#[test]
fn tests_and_bins_stay_off_the_sim_path() {
    let sources = ws(&[
        (
            "crates/cluster/tests/repro.rs",
            "pub fn balance_round(seed: u64) { helper(); }\n\
             fn helper() { let t = std::time::Instant::now(); }\n",
        ),
        (
            "crates/bench/src/bin/sweep.rs",
            "pub fn balance_round(seed: u64) { helper(); }\n\
             fn helper() { let mut r = Rng::new(7); }\n",
        ),
    ]);
    let report = lint_files(&sources);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "sim-path-purity" || f.rule == "seed-provenance"),
        "{:?}",
        report.findings
    );
}

/// An `allow` on the base token rule keeps covering the site after the
/// purity layer takes over reporting it — and a genuinely unused allow in
/// the same workspace is flagged stale.
#[test]
fn base_rule_allows_cover_purity_and_stale_ones_are_flagged() {
    let sources = ws(&[(
        "crates/cluster/src/balance.rs",
        "pub fn balance_round(seed: u64) {\n\
             // ecolb-lint: allow(no-wallclock, \"coarse host-load probe, value unused in decisions\")\n\
             let t = Instant::now();\n\
             // ecolb-lint: allow(no-unordered-collections, \"nothing unordered here anymore\")\n\
             let n = seed;\n\
         }\n",
    )]);
    let report = lint_files(&sources);
    assert!(
        !report.findings.iter().any(|f| f.rule == "sim-path-purity"),
        "allow(no-wallclock) must cover the purity finding: {:?}",
        report.findings
    );
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-suppression")
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.findings);
    assert_eq!(stale[0].line, 4);
}

/// Chaos harness entry points reach into the faults crate through a
/// qualified cross-crate call.
#[test]
fn chaos_harness_reaches_fault_stream() {
    let sources = ws(&[
        (
            "crates/chaos/src/harness.rs",
            "pub fn run_plan(seed: u64) {\n\
                 let p = crate::gen::generate_plan(seed);\n\
             }\n",
        ),
        (
            "crates/chaos/src/gen.rs",
            "pub fn generate_plan(seed: u64) -> Plan {\n\
                 let ps = mix(seed, 3);\n\
                 let stream = ecolb_faults::plan::fault_stream(ps, CRASH, LEADER);\n\
                 Plan::from(stream)\n\
             }\n",
        ),
        (
            "crates/faults/src/plan.rs",
            "pub fn fault_stream(seed: u64, kind: FaultKind, server: ServerId) -> Rng {\n\
                 Rng::new(seed)\n\
             }\n",
        ),
    ]);
    let report = lint_files(&sources);
    // Both constructions derive from `seed` (through the `ps` local and
    // the `seed` parameter), so the clean shape stays clean; replace the
    // derivation with a literal and it must fire, with a witness.
    assert!(
        !report.findings.iter().any(|f| f.rule == "seed-provenance"),
        "{:?}",
        report.findings
    );
    let sources = ws(&[
        (
            "crates/chaos/src/harness.rs",
            "pub fn run_plan(seed: u64) {\n\
                 let p = crate::gen::generate_plan(seed);\n\
             }\n",
        ),
        (
            "crates/chaos/src/gen.rs",
            "pub fn generate_plan(seed: u64) -> Plan {\n\
                 let stream = Rng::new(123);\n\
                 Plan::from(stream)\n\
             }\n",
        ),
    ]);
    let report = lint_files(&sources);
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "seed-provenance")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].witness.iter().any(|w| w.contains("run_plan")));
}

/// Method calls over-approximate: a hazard behind a method named like a
/// reachable call is still found (conservative, may over-report — the
/// documented trade-off).
#[test]
fn engine_run_entry_reaches_methods_by_name() {
    let sources = ws(&[(
        "crates/simcore/src/engine.rs",
        "impl Engine {\n\
             pub fn run(&mut self) { self.step(); }\n\
             fn step(&mut self) {\n\
                 let order: HashMap<u32, u32> = HashMap::new();\n\
             }\n\
         }\n",
    )]);
    let report = lint_files(&sources);
    let purity: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "sim-path-purity")
        .collect();
    assert_eq!(purity.len(), 2, "{:?}", report.findings); // two HashMap tokens
    assert!(purity[0].witness.iter().any(|w| w.contains("Engine::run")));
}
