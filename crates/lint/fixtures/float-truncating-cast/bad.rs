// Fixture: silent float→int truncation in measurement code. `as usize`
// on f64 saturates and maps NaN to 0 — fine semantics, but they must be
// chosen once, in an audited helper, not rediscovered at every cast.
pub fn bin_index(x: f64, lo: f64, hi: f64, bins: usize) -> usize {
    ((x - lo) / (hi - lo) * bins as f64) as usize
}

pub fn scaled_bar(v: f64, max: f64, width: usize) -> usize {
    ((v / max) * width as f64).round() as usize
}

pub fn whole_joules(j: f64) -> u64 {
    j.floor() as u64
}
