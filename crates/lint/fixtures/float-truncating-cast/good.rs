// Fixture: all float→int conversions routed through the audited helpers,
// which document saturation and NaN handling in one place. Int→int and
// int→float casts are unaffected by the rule.
use ecolb_metrics::convert;

pub fn bin_index(x: f64, lo: f64, hi: f64, bins: usize) -> usize {
    convert::saturating_usize((x - lo) / (hi - lo) * bins as f64)
}

pub fn scaled_bar(v: f64, max: f64, width: usize) -> usize {
    convert::saturating_usize(((v / max) * width as f64).round())
}

pub fn whole_joules(j: f64) -> u64 {
    convert::saturating_u64(j.floor())
}

pub fn widen(disk: u32) -> u64 {
    disk as u64
}
