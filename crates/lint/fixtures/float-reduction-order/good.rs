// Fixture: the deterministic counterpart — closures return per-item
// values; all float reduction happens sequentially over the collected
// Vec, whose order is the item order at any thread count. Integer folds
// inside the closure are fine (addition is associative).
pub fn total_energy(shards: &[Shard], threads: usize) -> f64 {
    let per_shard: Vec<Vec<f64>> = par::map(shards, threads, |shard| shard.energy_vec());
    let mut total = 0.0f64;
    for shard in &per_shard {
        for e in shard {
            total += e;
        }
    }
    total
}

pub fn event_counts(shards: &[Shard], threads: usize) -> Vec<u64> {
    par::map(shards, threads, |shard| {
        let mut n = 0u64;
        for r in shard.reports() {
            n += r.events;
        }
        n
    })
}
