// Fixture: order-sensitive float folds inside parallel map closures.
// Float addition is not associative, so these change output bytes when
// the shard count changes — exactly what the 1/2/8-thread identity tests
// exist to catch.
pub fn total_energy(shards: &[Shard], threads: usize) -> Vec<f64> {
    par::map(shards, threads, |shard| {
        let mut acc = 0.0f64;
        for r in shard.reports() {
            acc += r.energy_wh;
        }
        acc
    })
}

pub fn mean_load(shards: &[Shard], threads: usize) -> Vec<f64> {
    par::map(shards, threads, |shard| {
        shard.samples().iter().sum::<f64>() / shard.len() as f64
    })
}
