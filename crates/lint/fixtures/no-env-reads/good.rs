// Fixture: configuration flows through explicit arguments; only bin
// targets translate the process environment into config at the edge.
pub struct HarnessConfig {
    pub threads: usize,
    pub debug: bool,
}

pub fn thread_count(config: &HarnessConfig) -> usize {
    config.threads
}

pub fn debug_enabled(config: &HarnessConfig) -> bool {
    config.debug
}
