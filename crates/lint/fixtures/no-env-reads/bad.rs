// Fixture: library behaviour keyed off ambient environment variables —
// two hosts running the same experiment binary can silently diverge.
pub fn thread_count() -> usize {
    match std::env::var("ECOLB_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}

pub fn debug_enabled() -> bool {
    std::env::var_os("ECOLB_DEBUG").is_some()
}
