// Fixture: ordered replacements — BTreeMap/BTreeSet iterate in key order
// on every run, so folds over them are reproducible.
use std::collections::{BTreeMap, BTreeSet};

pub struct Directory {
    pub by_load: BTreeMap<u32, f64>,
    pub sleeping: BTreeSet<u32>,
}

impl Directory {
    pub fn total_load(&self) -> f64 {
        self.by_load.values().sum()
    }
}
