// Fixture: hash-ordered collections in a sim-path crate. Iterating a
// HashMap folds values in SipHash-key order, which differs per process —
// any aggregation over it breaks byte-identical output.
use std::collections::{HashMap, HashSet};

pub struct Directory {
    pub by_load: HashMap<u32, f64>,
    pub sleeping: HashSet<u32>,
}

impl Directory {
    pub fn total_load(&self) -> f64 {
        // Non-deterministic iteration order feeding a float sum.
        self.by_load.values().sum()
    }
}
