// Fixture: ambient entropy and index-free reseeding. Both defeat the
// single-seed reproducibility contract.
use ecolb_simcore::par;
use ecolb_simcore::rng::Rng;

pub fn sample_jitter() -> f64 {
    // Ambient entropy: stream depends on the OS, not the run seed.
    let mut rng = thread_rng();
    rng.gen::<f64>()
}

pub fn run_cells(cells: Vec<Cell>) -> Vec<f64> {
    par::map_indexed(cells, 4, |_i, cell| {
        // Constant reseed inside a parallel closure: every item draws the
        // SAME stream, silently correlating all cells.
        let mut rng = Rng::new(42);
        simulate(cell, &mut rng)
    })
}
