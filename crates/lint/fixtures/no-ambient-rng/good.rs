// Fixture: every stream derives from the run seed; parallel items seed
// from their own index, so output is identical at any thread count.
use ecolb_simcore::par;
use ecolb_simcore::rng::Rng;

pub fn sample_jitter(rng: &mut Rng) -> f64 {
    rng.f64_unit()
}

pub fn run_cells(base_seed: u64, cells: Vec<Cell>) -> Vec<f64> {
    par::map_indexed(cells, 4, |i, cell| {
        let mut rng = Rng::new(base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        simulate(cell, &mut rng)
    })
}
