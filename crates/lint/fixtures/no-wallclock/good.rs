// Fixture: simulated time only — the deterministic replacement for the
// bad fixture. Mentions of banned names in comments ("Instant") and
// strings ("SystemTime") must NOT fire.
use ecolb_simcore::time::SimTime;

pub fn measure_round(cluster: &mut Cluster, now: SimTime) -> SimTime {
    let start = now;
    cluster.run_until(now + SimTime::from_secs(1));
    cluster.now() - start
}

pub fn stamp_report(report: &mut Report, now: SimTime) {
    report.generated_at = now; // not "SystemTime::now()"
}
