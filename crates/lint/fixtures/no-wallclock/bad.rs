// Fixture: wall-clock reads on the simulation path. `ecolb-lint` must
// flag every use of std::time's clock types outside crates/bench.
use std::time::Instant;

pub fn measure_round(cluster: &mut Cluster) -> f64 {
    let start = Instant::now();
    cluster.run(1);
    start.elapsed().as_secs_f64()
}

pub fn stamp_report(report: &mut Report) {
    // SystemTime in a report makes two identical runs differ byte-wise.
    report.generated_at = std::time::SystemTime::now();
}
