// Fixture: panic-free library code. Total float comparison instead of
// partial_cmp().unwrap(); Option/Result propagated to the caller. Test
// modules are exempt — the unwraps below do not count.
pub fn pick_partner(loads: &[f64]) -> Option<usize> {
    loads
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

pub fn must_host(server: &Server, app: AppId) -> Result<usize, HostError> {
    server.position(app).ok_or(HostError::NotHosted(app))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_heaviest() {
        assert_eq!(pick_partner(&[0.1, 0.9, 0.4]).unwrap(), 1);
    }
}
