// Fixture: panic creep in library code — every site here counts against
// the crate's ratchet in lint/panic_budget.toml.
pub fn pick_partner(loads: &[f64]) -> usize {
    let best = loads
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    best.0
}

pub fn must_host(server: &Server, app: AppId) -> usize {
    server
        .position(app)
        .unwrap_or_else(|| panic!("{app:?} not hosted"))
}
