// Fixture: the deterministic counterpart — every stream derives from the
// seed parameter, directly or through a let-bound local the taint pass
// follows.
pub fn balance_round(seed: u64, servers: &mut [Server]) {
    let mut jitter = Rng::new(seed ^ 0x9E37_79B9);
    for s in servers.iter_mut() {
        s.nudge(jitter.next_u64());
    }
}

fn evolve_load(seed: u64, profile: &Profile) -> f64 {
    // Derivation through locals is fine: `mixed` is tainted by `seed`.
    let mut state = seed;
    let mixed = splitmix64(&mut state);
    let mut rng = Rng::new(mixed);
    profile.sample(rng.next_u64())
}

pub fn balance_round_evolved(seed: u64, profile: &Profile) -> f64 {
    evolve_load(seed, profile)
}
