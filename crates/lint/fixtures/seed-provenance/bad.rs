// Fixture: RNG streams on the sim path seeded from literals. Every
// construction reachable from a sim entry point must derive from a seed
// the caller passed in; a constant seed hands every run (and every
// shard) the same stream.
pub fn balance_round(seed: u64, servers: &mut [Server]) {
    // The parameter is right there — and ignored.
    let mut jitter = Rng::new(42);
    for s in servers.iter_mut() {
        s.nudge(jitter.next_u64());
    }
    let _ = seed;
}

fn evolve_load(profile: &Profile) -> f64 {
    // Reachable via balance_round in real code; ambient constant seed.
    let mut rng = Rng::new(0xDEAD_BEEF);
    profile.sample(rng.next_u64())
}

pub fn balance_round_evolved(seed: u64, profile: &Profile) -> f64 {
    let _ = seed;
    evolve_load(profile)
}
