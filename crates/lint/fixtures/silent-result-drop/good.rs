// Fixture: the honest counterparts — handle the error, count it, or
// propagate it. Discarding a non-Result value stays legal, as does the
// write!/writeln! macro idiom.
pub fn deliver_report(leader: &mut Leader, report: Report) -> Result<(), SendError> {
    leader.enqueue(report)
}

pub fn sweep_reports(leader: &mut Leader, reports: Vec<Report>, stats: &mut Stats) {
    for report in reports {
        if deliver_report(leader, report).is_err() {
            stats.lost_reports += 1;
        }
    }
}

pub fn forward(leader: &mut Leader, report: Report) -> Result<(), SendError> {
    deliver_report(leader, report)?;
    Ok(())
}

pub fn note_attempt(attempt: u32) {
    // Discarding a plain value is not a finding.
    let _ = attempt;
}
