// Fixture: `let _ =` throwing away a Result in library code. The error
// path vanishes without a trace — in a simulator that accounts for
// failures, a dropped Result is usually an accounting bug.
pub fn deliver_report(leader: &mut Leader, report: Report) -> Result<(), SendError> {
    leader.enqueue(report)
}

pub fn sweep_reports(leader: &mut Leader, reports: Vec<Report>) {
    for report in reports {
        // Delivery failure silently discarded.
        let _ = deliver_report(leader, report);
    }
}
