//! Deterministic workspace walker.
//!
//! Collects every `.rs` file the lint should see, in sorted path order so
//! reports are byte-stable. Skips `target/`, hidden directories, and the
//! lint's own `fixtures/` tree (those files *intentionally* violate
//! rules — the self-tests feed them to the engine directly).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git", ".github", "results"];

/// Recursively collects `.rs` files under `dir` into `out`.
fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every workspace `.rs` source under `root`, returned as
/// workspace-relative forward-slash paths in sorted order.
///
/// The scan covers the façade package (`src/`, `tests/`, `examples/`) and
/// every member under `crates/`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace() {
        // The lint crate lives at <root>/crates/lint.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a workspace root two levels up");
        let files = workspace_sources(root).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/simcore/src/engine.rs"));
        assert!(files.iter().any(|f| f == "tests/determinism.rs"));
        assert!(
            !files.iter().any(|f| f.contains("fixtures/")),
            "fixtures must be excluded from the walk"
        );
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is sorted/deterministic");
    }
}
