//! The rule engine: six determinism/robustness rules over a token stream.
//!
//! Each rule is a pure function from `(FileContext, tokens)` to findings.
//! Rules are lexical by design — they catch the hazard *classes* that have
//! actually bitten deterministic simulations (wall clocks, unordered
//! iteration, ambient RNG state, environment reads, silent float
//! truncation, panic creep) without needing a type checker. The trade-off
//! is documented per rule: a value laundered through a binding can evade
//! the float-cast rule, for instance, but the audited conversion helpers in
//! `ecolb_metrics::convert` make the honest path cheaper than the evasive
//! one.

use crate::lexer::{Token, TokenKind};

/// Crates whose code is on the simulation path: anything here must be
/// bit-reproducible, so unordered collections and ambient state are banned.
pub const SIM_PATH_CRATES: &[&str] = &[
    "simcore",
    "cluster",
    "energy",
    "workload",
    "policies",
    "trace",
    "chaos",
    "serve",
    "scenarios",
];

/// All rule identifiers, in reporting order. The first six are token
/// rules from this module; the last four come from the call-graph layer
/// ([`crate::reach`]) and the suppression engine ([`crate::engine`]).
pub const ALL_RULES: &[&str] = &[
    "no-wallclock",
    "no-unordered-collections",
    "no-ambient-rng",
    "no-env-reads",
    "float-truncating-cast",
    "float-reduction-order",
    "panic-budget",
    "sim-path-purity",
    "seed-provenance",
    "silent-result-drop",
    "stale-suppression",
];

/// Where a source file sits in the workspace — determines which rules
/// apply and at what strictness.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Owning crate: the directory name under `crates/` (e.g. `cluster`),
    /// or `root` for the façade package's own `src/` and `tests/`.
    pub krate: String,
    /// True for binary targets: `src/bin/*`, `src/main.rs`, `examples/*`.
    pub is_bin: bool,
    /// True for integration-test files (under a `tests/` directory).
    pub is_test: bool,
}

impl FileContext {
    /// Derives the context from a workspace-relative path.
    pub fn from_path(path: &str) -> FileContext {
        let norm = path.replace('\\', "/");
        let krate = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("root")
            .to_string();
        let is_bin = norm.contains("/src/bin/")
            || norm.ends_with("src/main.rs")
            || norm.starts_with("examples/");
        let is_test = norm.split('/').any(|c| c == "tests" || c == "benches");
        FileContext {
            path: norm,
            krate,
            is_bin,
            is_test,
        }
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`ALL_RULES`], or `suppression` for
    /// malformed allow directives).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Call-path witness for reachability findings (entry point first,
    /// violating function last); empty for token-level findings.
    pub witness: Vec<String>,
}

fn finding(rule: &'static str, ctx: &FileContext, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        witness: Vec::new(),
    }
}

/// Index of the matching closing delimiter for the opener at `open`
/// (`(`/`)`, `[`/`]`, `{`/`}`), or `tokens.len()` when unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Index of the matching opening delimiter for the closer at `close`, or 0.
pub fn matching_open(tokens: &[Token], close: usize) -> usize {
    let (o, c) = match tokens[close].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        "}" => ('{', '}'),
        _ => return close,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if tokens[i].is_punct(c) {
            depth += 1;
        } else if tokens[i].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    0
}

/// True when tokens `i-2..i` are `::` (two consecutive `:` puncts).
fn path_sep_before(tokens: &[Token], i: usize) -> bool {
    i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':')
}

/// Token spans `(open, close)` of every `par::map(…)` /
/// `par::map_indexed(…)` argument list (`open` is the index of the `(`,
/// `close` its matching `)`). Shared by the RNG-reseed check and the
/// float-reduction-order rule.
pub fn par_map_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        let is_par_map = tokens[i].kind == TokenKind::Ident
            && (tokens[i].text == "map" || tokens[i].text == "map_indexed")
            && path_sep_before(tokens, i)
            && i >= 3
            && tokens[i - 3].is_ident("par");
        if is_par_map && i + 1 < tokens.len() && tokens[i + 1].is_punct('(') {
            spans.push((i + 1, matching_close(tokens, i + 1)));
        }
    }
    spans
}

/// **no-wallclock** — `Instant` / `SystemTime` / `UNIX_EPOCH` are banned
/// outside `crates/bench` (the perf harness measures real elapsed time by
/// definition). Simulation code must advance `ecolb_simcore::time::SimTime`
/// only; a wall-clock read anywhere on the sim path makes runs
/// irreproducible.
pub fn no_wallclock(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    if ctx.krate == "bench" {
        return Vec::new();
    }
    const BANNED: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && BANNED.contains(&t.text.as_str()))
        .map(|t| {
            finding(
                "no-wallclock",
                ctx,
                t,
                format!(
                    "wall-clock source `{}` outside crates/bench; use ecolb_simcore::time::SimTime",
                    t.text
                ),
            )
        })
        .collect()
}

/// **no-unordered-collections** — `HashMap` / `HashSet` / `RandomState`
/// are banned in sim-path crates. Their iteration order depends on the
/// per-process SipHash keys, so any fold over them silently breaks
/// byte-identical output; `BTreeMap` / `BTreeSet` / `Vec` are the
/// deterministic substitutes.
pub fn no_unordered_collections(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    if !SIM_PATH_CRATES.contains(&ctx.krate.as_str()) {
        return Vec::new();
    }
    const BANNED: &[&str] = &["HashMap", "HashSet", "RandomState"];
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && BANNED.contains(&t.text.as_str()))
        .map(|t| {
            finding(
                "no-unordered-collections",
                ctx,
                t,
                format!(
                    "`{}` iterates in hash order (per-process random); use BTreeMap/BTreeSet/Vec",
                    t.text
                ),
            )
        })
        .collect()
}

/// **no-ambient-rng** — two checks:
///
/// 1. Ambient entropy sources (`thread_rng`, `from_entropy`, `OsRng`,
///    `getrandom`, `ThreadRng`) are banned everywhere: every stream in the
///    simulator must derive from the experiment's single `u64` seed via
///    `ecolb_simcore::rng`.
/// 2. Inside a `par::map(…)` / `par::map_indexed(…)` call, constructing
///    `Rng::new(<literal-only args>)` is flagged: a constant reseed inside
///    a parallel closure gives every item the *same* stream, which is
///    almost always a bug — the seed must be a function of the item index.
pub fn no_ambient_rng(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    const AMBIENT: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "ThreadRng",
        "getrandom",
    ];
    for t in tokens {
        if t.kind == TokenKind::Ident && AMBIENT.contains(&t.text.as_str()) {
            out.push(finding(
                "no-ambient-rng",
                ctx,
                t,
                format!(
                    "ambient entropy source `{}`; all randomness must derive from the run seed via ecolb_simcore::rng",
                    t.text
                ),
            ));
        }
    }
    // par::map / par::map_indexed call spans.
    for (open, close) in par_map_spans(tokens) {
        let span = &tokens[open..close.min(tokens.len())];
        // Find Rng::new( … ) with literal-only arguments inside the span.
        for j in 0..span.len() {
            if span[j].is_ident("Rng")
                && j + 4 < span.len()
                && span[j + 1].is_punct(':')
                && span[j + 2].is_punct(':')
                && span[j + 3].is_ident("new")
                && span[j + 4].is_punct('(')
            {
                let arg_close = matching_close(span, j + 4);
                let args = &span[j + 5..arg_close.min(span.len())];
                let has_ident = args.iter().any(|t| t.kind == TokenKind::Ident);
                if !has_ident {
                    out.push(finding(
                        "no-ambient-rng",
                        ctx,
                        &span[j],
                        "index-free `Rng::new(<constant>)` inside a parallel map closure: every \
                         item gets the same stream; derive the seed from the item index"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

/// **no-env-reads** — `env::var` / `var_os` / `vars` reads are banned
/// outside binary targets and the one documented replay hook
/// (`ECOLB_PROP_SEED` / `ECOLB_PROP_CASES` in
/// `crates/simcore/src/proptest_lite.rs`). Library behaviour must be a
/// function of explicit arguments, not ambient process state.
pub fn no_env_reads(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    if ctx.is_bin || ctx.path == "crates/simcore/src/proptest_lite.rs" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "var" | "var_os" | "vars")
            && path_sep_before(tokens, i)
            && i >= 3
            && tokens[i - 3].is_ident("env")
        {
            out.push(finding(
                "no-env-reads",
                ctx,
                t,
                format!(
                    "`env::{}` outside a bin target; library behaviour must not depend on ambient \
                     environment (documented exception: ECOLB_PROP_SEED in proptest_lite)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// **float-truncating-cast** — in `crates/energy` and `crates/metrics`, an
/// `as usize` / `as u64` / `as i64` (and friends) applied to an expression
/// with float evidence (a float literal, `f64`/`f32`, or a call to
/// `floor`/`ceil`/`round`/…) must go through the audited helpers in
/// `ecolb_metrics::convert`, which document the saturation and NaN
/// semantics in one place. The rule is lexical: it inspects the postfix
/// expression to the left of the `as`.
pub fn float_truncating_cast(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    if !matches!(ctx.krate.as_str(), "energy" | "metrics") {
        return Vec::new();
    }
    // The helpers themselves are the single audited exception.
    if ctx.path == "crates/metrics/src/convert.rs" {
        return Vec::new();
    }
    const INT_TARGETS: &[&str] = &[
        "usize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8", "isize", "u128", "i128",
    ];
    const FLOAT_EVIDENCE: &[&str] = &[
        "f64", "f32", "floor", "ceil", "round", "trunc", "sqrt", "powf", "powi", "exp", "ln",
        "log2", "log10",
    ];
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("as") || i + 1 >= tokens.len() || i == 0 {
            continue;
        }
        if !(tokens[i + 1].kind == TokenKind::Ident
            && INT_TARGETS.contains(&tokens[i + 1].text.as_str()))
        {
            continue;
        }
        // Walk the postfix expression ending just before `as`, collecting
        // its tokens: groups `(…)` / `[…]`, method-chain names, field
        // chains.
        let mut j = i as isize - 1;
        let mut collected: Vec<&Token> = Vec::new();
        loop {
            if j < 0 {
                break;
            }
            let t = &tokens[j as usize];
            if t.is_punct(')') || t.is_punct(']') {
                let open = matching_open(tokens, j as usize);
                collected.extend(&tokens[open..=j as usize]);
                j = open as isize - 1;
                // A name directly before the group (call or index base).
                if j >= 0 && tokens[j as usize].kind == TokenKind::Ident {
                    collected.push(&tokens[j as usize]);
                    j -= 1;
                }
            } else if matches!(t.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float) {
                collected.push(t);
                j -= 1;
            } else {
                break;
            }
            // Continue through `.` chains; otherwise the expression ends.
            if j >= 0 && tokens[j as usize].is_punct('.') {
                j -= 1;
            } else {
                break;
            }
        }
        let has_float_evidence = collected.iter().any(|t| {
            t.kind == TokenKind::Float
                || (t.kind == TokenKind::Ident && FLOAT_EVIDENCE.contains(&t.text.as_str()))
        });
        if has_float_evidence {
            out.push(finding(
                "float-truncating-cast",
                ctx,
                &tokens[i + 1],
                format!(
                    "float expression truncated with `as {}`; use ecolb_metrics::convert (audited \
                     saturation/NaN semantics)",
                    tokens[i + 1].text
                ),
            ));
        }
    }
    out
}

/// **float-reduction-order** — inside a `par::map(…)` /
/// `par::map_indexed(…)` call span in sim-path crates, float accumulation
/// is order-sensitive: resharding the map reassociates the reduction, so
/// an `f64` `+=` or `.sum()` fold silently changes bytes at a different
/// thread count. Flagged: `+=` in a statement with float evidence (a
/// float literal, `f64`/`f32`, or an identifier `let`-bound to one inside
/// the span), and `.sum()` / `.product()` with a float turbofish or float
/// evidence in the same statement. The fix is structural: return per-item
/// values from the closure and reduce *sequentially* over the collected
/// `Vec`, where the order is the item order.
pub fn float_reduction_order(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    if !SIM_PATH_CRATES.contains(&ctx.krate.as_str()) {
        return Vec::new();
    }
    let is_float_evidence = |t: &Token| {
        t.kind == TokenKind::Float
            || (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "f64" | "f32"))
    };
    let mut out = Vec::new();
    for (open, close) in par_map_spans(tokens) {
        let close = close.min(tokens.len());
        let span = &tokens[open..close];
        // Identifiers `let`-bound to a float inside the span: `let mut
        // acc = 0.0;` makes every later `acc += …` a float fold even when
        // that statement shows no literal.
        let mut float_idents: Vec<&str> = Vec::new();
        for j in 0..span.len() {
            if !span[j].is_ident("let") {
                continue;
            }
            let stmt_end = span[j..]
                .iter()
                .position(|t| t.is_punct(';'))
                .map(|p| j + p)
                .unwrap_or(span.len());
            if span[j..stmt_end].iter().any(|t| is_float_evidence(t)) {
                let mut k = j + 1;
                while k < stmt_end && matches!(span[k].text.as_str(), "mut" | "ref") {
                    k += 1;
                }
                if k < stmt_end && span[k].kind == TokenKind::Ident {
                    float_idents.push(span[k].text.as_str());
                }
            }
        }
        // Statement bounds around index `j` within the span.
        let stmt_around = |j: usize| {
            let start = span[..j]
                .iter()
                .rposition(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                .map(|p| p + 1)
                .unwrap_or(0);
            let end = span[j..]
                .iter()
                .position(|t| t.is_punct(';') || t.is_punct('}'))
                .map(|p| j + p)
                .unwrap_or(span.len());
            (start, end)
        };
        let stmt_is_float = |a: usize, b: usize| {
            span[a..b].iter().any(|t| {
                is_float_evidence(t)
                    || (t.kind == TokenKind::Ident && float_idents.contains(&t.text.as_str()))
            })
        };
        for j in 0..span.len() {
            let plus_eq = span[j].is_punct('+')
                && span.get(j + 1).map(|t| t.is_punct('=')).unwrap_or(false)
                && span.get(j + 2).map(|t| !t.is_punct('=')).unwrap_or(true);
            if plus_eq {
                let (a, b) = stmt_around(j);
                if stmt_is_float(a, b) {
                    out.push(finding(
                        "float-reduction-order",
                        ctx,
                        &span[j],
                        "float `+=` inside a parallel map closure: the reduction order changes \
                         with the shard count; collect per-item values and reduce sequentially"
                            .to_string(),
                    ));
                }
                continue;
            }
            let is_sum = span[j].kind == TokenKind::Ident
                && matches!(span[j].text.as_str(), "sum" | "product")
                && j >= 1
                && span[j - 1].is_punct('.');
            if is_sum {
                let turbofish_float = j + 4 < span.len()
                    && span[j + 1].is_punct(':')
                    && span[j + 2].is_punct(':')
                    && span[j + 3].is_punct('<')
                    && matches!(span[j + 4].text.as_str(), "f64" | "f32");
                let (a, b) = stmt_around(j);
                if turbofish_float || stmt_is_float(a, b) {
                    out.push(finding(
                        "float-reduction-order",
                        ctx,
                        &span[j],
                        format!(
                            "float `.{}()` inside a parallel map closure: the fold order depends \
                             on sharding; reduce sequentially over the collected results",
                            span[j].text
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// A panic site found in library code (counted against the ratchet, not
/// reported individually unless a crate exceeds its budget).
pub type PanicSite = Finding;

/// **panic-budget** (collection half) — returns every `.unwrap()`,
/// `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` site in
/// *library* code: bin targets, integration tests and `#[cfg(test)]`
/// modules are excluded. The engine aggregates the per-crate counts and
/// compares them against `lint/panic_budget.toml`.
pub fn panic_sites(ctx: &FileContext, tokens: &[Token]) -> Vec<PanicSite> {
    if ctx.is_bin || ctx.is_test {
        return Vec::new();
    }
    let skip = cfg_test_spans(tokens);
    let in_skip = |i: usize| skip.iter().any(|&(a, b)| i >= a && i <= b);
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if in_skip(i) {
            continue;
        }
        let t = &tokens[i];
        let is_unwrap_like = t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('(');
        let is_panic_macro = t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('!');
        if is_unwrap_like || is_panic_macro {
            out.push(finding(
                "panic-budget",
                ctx,
                t,
                format!("panic site `{}` in library code", t.text),
            ));
        }
    }
    out
}

/// Token index ranges covered by `#[cfg(test)]` items (usually
/// `mod tests { … }`). Attribute + following braced block; attribute +
/// `…;` items skip to the semicolon.
fn cfg_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let attr_close = matching_close(tokens, i + 1);
        // Find the item body: first `{` before any `;` → braced item;
        // otherwise skip to the `;`.
        let mut j = attr_close + 1;
        let mut end = None;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                end = Some(matching_close(tokens, j));
                break;
            }
            if tokens[j].is_punct(';') {
                end = Some(j);
                break;
            }
            j += 1;
        }
        let end = end.unwrap_or(tokens.len() - 1);
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

/// Runs every positional rule (everything except the panic-budget
/// aggregation) over one file.
pub fn check_tokens(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(no_wallclock(ctx, tokens));
    out.extend(no_unordered_collections(ctx, tokens));
    out.extend(no_ambient_rng(ctx, tokens));
    out.extend(no_env_reads(ctx, tokens));
    out.extend(float_truncating_cast(ctx, tokens));
    out.extend(float_reduction_order(ctx, tokens));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(path: &str) -> FileContext {
        FileContext::from_path(path)
    }

    #[test]
    fn context_derivation() {
        let c = ctx("crates/cluster/src/leader.rs");
        assert_eq!(c.krate, "cluster");
        assert!(!c.is_bin && !c.is_test);
        let b = ctx("crates/bench/src/bin/sweep.rs");
        assert!(b.is_bin);
        let t = ctx("tests/determinism.rs");
        assert_eq!(t.krate, "root");
        assert!(t.is_test);
        let e = ctx("examples/quickstart.rs");
        assert!(e.is_bin);
    }

    #[test]
    fn wallclock_flagged_outside_bench_only() {
        let src = "use std::time::Instant; let t = Instant::now();";
        let toks = lex(src).tokens;
        assert_eq!(
            no_wallclock(&ctx("crates/simcore/src/engine.rs"), &toks).len(),
            2
        );
        assert!(no_wallclock(&ctx("crates/bench/src/perf.rs"), &toks).is_empty());
    }

    #[test]
    fn unordered_collections_scoped_to_sim_path() {
        let toks = lex("let m: HashMap<u32, u32> = HashMap::new();").tokens;
        assert_eq!(
            no_unordered_collections(&ctx("crates/cluster/src/x.rs"), &toks).len(),
            2
        );
        assert!(no_unordered_collections(&ctx("crates/metrics/src/x.rs"), &toks).is_empty());
    }

    #[test]
    fn constant_reseed_in_par_map_flagged() {
        let bad = "par::map_indexed(items, 4, |i, x| { let mut r = Rng::new(42); r.next_u64() })";
        let good = "par::map_indexed(items, 4, |i, x| { let mut r = Rng::new(seed ^ i as u64); r.next_u64() })";
        let c = ctx("crates/policies/src/farm.rs");
        assert_eq!(no_ambient_rng(&c, &lex(bad).tokens).len(), 1);
        assert!(no_ambient_rng(&c, &lex(good).tokens).is_empty());
    }

    #[test]
    fn rng_new_outside_par_map_is_fine() {
        let toks = lex("let r = Rng::new(7);").tokens;
        assert!(no_ambient_rng(&ctx("crates/simcore/src/rng.rs"), &toks).is_empty());
    }

    #[test]
    fn env_reads_allowed_in_bins_and_hook() {
        let toks = lex("let v = std::env::var(\"X\");").tokens;
        assert_eq!(
            no_env_reads(&ctx("crates/workload/src/traces.rs"), &toks).len(),
            1
        );
        assert!(no_env_reads(&ctx("crates/bench/src/bin/sweep.rs"), &toks).is_empty());
        assert!(no_env_reads(&ctx("crates/simcore/src/proptest_lite.rs"), &toks).is_empty());
    }

    #[test]
    fn float_cast_needs_evidence() {
        let c = ctx("crates/metrics/src/histogram.rs");
        let flagged = "let i = (x * self.counts.len() as f64) as usize;";
        assert_eq!(float_truncating_cast(&c, &lex(flagged).tokens).len(), 1);
        let method = "let i = v.round() as usize;";
        assert_eq!(float_truncating_cast(&c, &lex(method).tokens).len(), 1);
        let int_ok = "let i = self.n_disks as u64;";
        assert!(float_truncating_cast(&c, &lex(int_ok).tokens).is_empty());
        let other_crate = ctx("crates/cluster/src/balance.rs");
        assert!(float_truncating_cast(&other_crate, &lex(flagged).tokens).is_empty());
    }

    #[test]
    fn float_accumulation_in_par_map_flagged() {
        let c = ctx("crates/cluster/src/balance.rs");
        let direct = "par::map(items, 4, |x| { let mut acc = 0.0f64; acc += x.load; acc })";
        assert_eq!(float_reduction_order(&c, &lex(direct).tokens).len(), 1);
        let turbo = "par::map(items, 4, |x| x.samples.iter().sum::<f64>())";
        assert_eq!(float_reduction_order(&c, &lex(turbo).tokens).len(), 1);
        let int_fold = "par::map(items, 4, |x| { let mut n = 0u64; n += x.count; n })";
        assert!(float_reduction_order(&c, &lex(int_fold).tokens).is_empty());
        let outside = "let total: f64 = results.iter().sum();";
        assert!(float_reduction_order(&c, &lex(outside).tokens).is_empty());
        let off_path = ctx("crates/metrics/src/histogram.rs");
        assert!(float_reduction_order(&off_path, &lex(direct).tokens).is_empty());
    }

    #[test]
    fn panic_sites_skip_cfg_test_and_bins() {
        let src = "fn f() { x.unwrap(); panic!(\"boom\"); }\n\
                   #[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }";
        let toks = lex(src).tokens;
        assert_eq!(panic_sites(&ctx("crates/cluster/src/x.rs"), &toks).len(), 2);
        assert!(panic_sites(&ctx("crates/bench/src/bin/all.rs"), &toks).is_empty());
        assert!(panic_sites(&ctx("tests/determinism.rs"), &toks).is_empty());
    }

    #[test]
    fn unwrap_err_is_not_counted() {
        let toks = lex("let pos = list.binary_search(&x).unwrap_err();").tokens;
        assert!(panic_sites(&ctx("crates/simcore/src/calendar.rs"), &toks).is_empty());
    }
}
