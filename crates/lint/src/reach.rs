//! Reachability from the sim entry points, and the graph/flow rules that
//! run over the reachable set.
//!
//! The repo's headline guarantee — byte-identical sweep output at any
//! thread count — is a property of every function *reachable from the
//! simulation hot path*, not of a directory. This module computes that
//! reachable set over the [`CallGraph`](crate::graph::CallGraph) and runs
//! three rules on it:
//!
//! * **sim-path-purity** — wallclock reads, unordered collections, ambient
//!   RNG and environment reads are violations in *any* reachable function,
//!   whatever crate it lives in. Each finding carries a call-path witness
//!   (entry point → … → violating function) so a CI failure names the
//!   exact path that made the helper hot.
//! * **seed-provenance** — every `Rng::new(…)` / `fault_stream(…)`
//!   construction on the sim path must derive from a seed the caller was
//!   *given*: at least one argument identifier must be tainted by a
//!   function parameter (via a single forward pass over `let` bindings and
//!   closure parameters). Literal-only or ambient-constant seeds are the
//!   classic "every shard draws the same stream" bug.
//! * **silent-result-drop** — `let _ = f(…);` where `f` resolves to a
//!   workspace function returning `Result` silently discards a failure
//!   path in library code.
//!
//! Soundness note: reachability over-approximates (unqualified and method
//! calls fan out to every same-name definition), so "not reachable" is
//! trustworthy while "reachable" may include paths the type checker would
//! reject. Taint also over-approximates (any tainted identifier anywhere
//! in the argument list satisfies provenance). Both err toward *missing*
//! a pedantic finding rather than inventing an unfixable one; the
//! remaining escape hatch is an `allow(<rule>, "reason")` directive.

use crate::graph::{CallGraph, CallSite, Workspace};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A finding produced by a graph rule, together with the token-layer rule
/// it shadows (used so an `allow(no-wallclock)` also covers the purity
/// finding for the same hazard, and for duplicate elimination).
#[derive(Debug)]
pub struct GraphFinding {
    /// The reportable finding.
    pub finding: Finding,
    /// Token-layer rule this finding shadows, if any.
    pub base: Option<&'static str>,
}

/// True when `item` is one of the simulation entry points the purity
/// analysis starts from: `Engine::run*`, `Cluster::run_interval*`,
/// `Federation::run_interval*`, free `balance_round*` functions, the
/// `*Sim::run*` drivers (their closures carry the per-event hot path), and
/// the chaos harness (`run_plan` / `sweep`).
pub fn is_entry_point(name: &str, owner: Option<&str>, krate: &str) -> bool {
    let owner = owner.unwrap_or("");
    (owner == "Engine" && name.starts_with("run"))
        || ((owner == "Cluster" || owner == "Federation") && name.starts_with("run_interval"))
        || name.starts_with("balance_round")
        || (owner.ends_with("Sim") && name.starts_with("run"))
        || (krate == "chaos" && matches!(name, "run_plan" | "sweep"))
}

/// Which graph nodes are reachable from the entry points, with the BFS
/// tree that yields shortest call-path witnesses.
pub struct Reachability {
    /// Entry-point node ids, in graph order.
    pub entries: Vec<usize>,
    /// `reachable[id]` — node `id` is on the sim path.
    pub reachable: Vec<bool>,
    /// BFS parent of each reachable non-entry node.
    pub parent: Vec<Option<usize>>,
}

/// Computes reachability from [`is_entry_point`] nodes over `graph`.
pub fn reach(ws: &Workspace, graph: &CallGraph) -> Reachability {
    let n = graph.fns.len();
    let mut entries = Vec::new();
    for (id, key) in graph.fns.iter().enumerate() {
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        if is_entry_point(&item.name, item.owner.as_deref(), &file.ctx.krate) {
            entries.push(id);
        }
    }
    let mut reachable = vec![false; n];
    let mut parent = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in &entries {
        if !reachable[e] {
            reachable[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &next in &graph.edges[id] {
            if !reachable[next] {
                reachable[next] = true;
                parent[next] = Some(id);
                queue.push_back(next);
            }
        }
    }
    Reachability {
        entries,
        reachable,
        parent,
    }
}

impl Reachability {
    /// The call-path witness for node `id`: entry point first, `id` last,
    /// each step rendered as `Owner::name (path:line)`.
    pub fn witness(&self, ws: &Workspace, graph: &CallGraph, id: usize) -> Vec<String> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain.into_iter().map(|n| graph.label(ws, n)).collect()
    }
}

/// Hazard classes the purity rule scans reachable bodies for.
const WALLCLOCK: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
const UNORDERED: &[&str] = &["HashMap", "HashSet", "RandomState"];
const AMBIENT_RNG: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "getrandom",
];

/// **sim-path-purity** — scans every reachable function body for the four
/// determinism hazards; each finding carries the call-path witness.
pub fn sim_path_purity(ws: &Workspace, graph: &CallGraph, r: &Reachability) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    for (id, key) in graph.fns.iter().enumerate() {
        if !r.reachable[id] {
            continue;
        }
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        let (start, end) = match item.body {
            Some(b) => b,
            None => continue,
        };
        let witness = r.witness(ws, graph, id);
        for i in start..=end.min(file.lex.tokens.len().saturating_sub(1)) {
            let t = &file.lex.tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let (base, advice): (&'static str, &str) = if WALLCLOCK.contains(&t.text.as_str()) {
                ("no-wallclock", "use ecolb_simcore::time::SimTime")
            } else if UNORDERED.contains(&t.text.as_str()) {
                ("no-unordered-collections", "use BTreeMap/BTreeSet/Vec")
            } else if AMBIENT_RNG.contains(&t.text.as_str()) {
                ("no-ambient-rng", "derive every stream from the run seed")
            } else if is_env_read(&file.lex.tokens, i)
                && file.path != "crates/simcore/src/proptest_lite.rs"
            {
                ("no-env-reads", "take the value as an explicit argument")
            } else {
                continue;
            };
            out.push(GraphFinding {
                finding: Finding {
                    rule: "sim-path-purity",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` in {} is reachable from sim entry point {}; {} ({} hazard on the \
                         sim path breaks byte-identical replay)",
                        t.text,
                        item.display(),
                        witness.first().map(String::as_str).unwrap_or("?"),
                        advice,
                        base,
                    ),
                    witness: witness.clone(),
                },
                base: Some(base),
            });
        }
    }
    out
}

/// True when token `i` is the `var`/`var_os`/`vars` of an `env::…` read.
fn is_env_read(tokens: &[Token], i: usize) -> bool {
    let t = &tokens[i];
    t.kind == TokenKind::Ident
        && matches!(t.text.as_str(), "var" | "var_os" | "vars")
        && i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident("env")
}

/// Identifiers tainted by the function's own inputs: parameters, `self`,
/// closure parameters, and `let` bindings whose initializer mentions an
/// already-tainted identifier (single forward pass — sim code is
/// straight-line enough that a fixpoint buys nothing).
fn tainted_idents(tokens: &[Token], body: (usize, usize), params: &[String]) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = params.iter().cloned().collect();
    tainted.insert("self".to_string());
    let (start, end) = body;
    let mut i = start;
    let last = end.min(tokens.len().saturating_sub(1));
    while i <= last {
        let t = &tokens[i];
        // `let <pat>[: ty] = <expr>;`
        if t.is_ident("let") {
            let mut names: Vec<String> = Vec::new();
            let mut j = i + 1;
            let mut in_type = false;
            while j <= last {
                let tj = &tokens[j];
                if tj.is_punct('=') && !tokens.get(j + 1).map(|n| n.is_punct('=')).unwrap_or(false)
                {
                    break;
                }
                if tj.is_punct(';') {
                    break;
                }
                if tj.is_punct(':') {
                    // `::` inside a pattern path keeps pattern mode; a
                    // single `:` starts the type annotation.
                    let double = tokens.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                        || (j > 0 && tokens[j - 1].is_punct(':'));
                    if !double {
                        in_type = true;
                    }
                }
                if !in_type
                    && tj.kind == TokenKind::Ident
                    && !matches!(tj.text.as_str(), "mut" | "ref")
                {
                    names.push(tj.text.clone());
                }
                j += 1;
            }
            if j <= last && tokens[j].is_punct('=') {
                // Initializer expression: from `=` to the statement `;`.
                let mut k = j + 1;
                let mut depth = 0i64;
                let mut init_tainted = false;
                while k <= last {
                    let tk = &tokens[k];
                    if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
                        depth += 1;
                    } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
                        depth -= 1;
                    } else if tk.is_punct(';') && depth <= 0 {
                        break;
                    } else if tk.kind == TokenKind::Ident && tainted.contains(&tk.text) {
                        init_tainted = true;
                    }
                    k += 1;
                }
                if init_tainted {
                    tainted.extend(names);
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        // Closure parameters: `|a, b|` after `(`, `,`, `=` or `move`.
        if t.is_punct('|') {
            let opens_closure = i == start
                || tokens.get(i.wrapping_sub(1)).map_or(false, |p| {
                    p.is_punct('(')
                        || p.is_punct(',')
                        || p.is_punct('=')
                        || p.is_punct('{')
                        || p.is_ident("move")
                });
            if opens_closure {
                let mut j = i + 1;
                while j <= last && !tokens[j].is_punct('|') {
                    if tokens[j].kind == TokenKind::Ident
                        && !matches!(tokens[j].text.as_str(), "mut" | "ref")
                    {
                        tainted.insert(tokens[j].text.clone());
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    tainted
}

/// Constructors whose first-class job is creating an RNG stream.
fn is_stream_construction(site: &CallSite) -> bool {
    match site.segments.last().map(String::as_str) {
        Some("fault_stream") => true,
        Some("new") => {
            site.segments.len() >= 2
                && matches!(
                    site.segments[site.segments.len() - 2].as_str(),
                    "Rng" | "RngStream"
                )
        }
        _ => false,
    }
}

/// **seed-provenance** — flags reachable `Rng::new` / `fault_stream`
/// constructions whose arguments carry no input-tainted identifier.
pub fn seed_provenance(ws: &Workspace, graph: &CallGraph, r: &Reachability) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    for (id, key) in graph.fns.iter().enumerate() {
        if !r.reachable[id] {
            continue;
        }
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        let body = match item.body {
            Some(b) => b,
            None => continue,
        };
        let constructions: Vec<&CallSite> = graph.calls[id]
            .iter()
            .filter(|s| is_stream_construction(s))
            .collect();
        if constructions.is_empty() {
            continue;
        }
        let tainted = tainted_idents(&file.lex.tokens, body, &item.params);
        for site in constructions {
            let (a, b) = site.args;
            let args = &file.lex.tokens[a.min(file.lex.tokens.len())..b.min(file.lex.tokens.len())];
            let derived = args
                .iter()
                .any(|t| t.kind == TokenKind::Ident && tainted.contains(&t.text));
            if !derived {
                let witness = r.witness(ws, graph, id);
                out.push(GraphFinding {
                    finding: Finding {
                        rule: "seed-provenance",
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "`{}` in {} (reachable from {}) is seeded from a literal or ambient \
                             value; derive the seed from a parameter so every run and shard gets \
                             its own stream",
                            site.segments.join("::"),
                            item.display(),
                            witness.first().map(String::as_str).unwrap_or("?"),
                        ),
                        witness,
                    },
                    base: None,
                })
            }
        }
    }
    out
}

/// **silent-result-drop** — flags `let _ = f(…);` in library code where
/// `f` resolves to a workspace function returning `Result`.
pub fn silent_result_drop(ws: &Workspace, graph: &CallGraph) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    for key in graph.fns.iter() {
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        let (start, end) = match item.body {
            Some(b) => b,
            None => continue,
        };
        let tokens = &file.lex.tokens;
        let last = end.min(tokens.len().saturating_sub(1));
        for i in start..=last {
            if !(tokens[i].is_ident("let")
                && tokens.get(i + 1).map(|t| t.is_ident("_")).unwrap_or(false)
                && tokens.get(i + 2).map(|t| t.is_punct('=')).unwrap_or(false))
            {
                continue;
            }
            // Statement span: `=` to the `;` at depth 0.
            let mut k = i + 3;
            let mut depth = 0i64;
            while k <= last {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                }
                k += 1;
            }
            // The discarded value is a call iff the statement ends `…)` —
            // a trailing `?` already handles the error, a bare ident or
            // tuple is deliberate.
            if k == i + 3 || !tokens[k - 1].is_punct(')') {
                continue;
            }
            let open = crate::rules::matching_open(tokens, k - 1);
            if open == 0 {
                continue;
            }
            let name_idx = open - 1;
            let name = &tokens[name_idx];
            if name.kind != TokenKind::Ident || NON_RESULT_SOURCES.contains(&name.text.as_str()) {
                continue;
            }
            let drops_result = graph
                .by_name
                .get(&name.text)
                .map(|cands| {
                    cands.iter().any(|&cid| {
                        let ck = graph.fns[cid];
                        ws.files[ck.file].parsed.fns[ck.item].returns_result()
                    })
                })
                .unwrap_or(false);
            if drops_result {
                out.push(GraphFinding {
                    finding: Finding {
                        rule: "silent-result-drop",
                        path: file.path.clone(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        message: format!(
                            "`let _ =` discards the `Result` of `{}` in {}; handle the error, \
                             propagate with `?`, or justify with an allow directive",
                            name.text,
                            item.display(),
                        ),
                        witness: Vec::new(),
                    },
                    base: None,
                })
            }
        }
    }
    out
}

/// Names that look like calls but never produce a workspace `Result`
/// (keyword-adjacent constructors the resolver would over-match).
const NON_RESULT_SOURCES: &[&str] = &["Some", "Ok", "Err", "Self"];

/// Runs all graph rules and returns their findings, plus the map of
/// `(path, line, col)` purity sites used to drop shadowed token findings.
pub fn graph_findings(ws: &Workspace) -> Vec<GraphFinding> {
    let graph = crate::graph::build_graph(ws);
    let r = reach(ws, &graph);
    let mut out = sim_path_purity(ws, &graph, &r);
    out.extend(seed_provenance(ws, &graph, &r));
    out.extend(silent_result_drop(ws, &graph));
    out
}

/// Convenience: per-file purity-site index for duplicate suppression,
/// mapping `path → (line, col) → base rule`.
pub fn purity_sites(findings: &[GraphFinding]) -> BTreeMap<(String, u32, u32), &'static str> {
    findings
        .iter()
        .filter_map(|g| {
            g.base
                .map(|b| ((g.finding.path.clone(), g.finding.line, g.finding.col), b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::from_sources(&owned)
    }

    #[test]
    fn entry_points_match_the_documented_set() {
        assert!(is_entry_point("run", Some("Engine"), "simcore"));
        assert!(is_entry_point(
            "run_intercepted_traced",
            Some("Engine"),
            "simcore"
        ));
        assert!(is_entry_point("run_interval", Some("Cluster"), "cluster"));
        assert!(is_entry_point("balance_round_scratch", None, "cluster"));
        assert!(is_entry_point("run", Some("FaultyClusterSim"), "faults"));
        assert!(is_entry_point("run_plan", None, "chaos"));
        assert!(!is_entry_point("run", None, "cluster"));
        assert!(!is_entry_point("helper", Some("Engine"), "simcore"));
    }

    #[test]
    fn taint_flows_through_let_bindings_and_closures() {
        let w = ws(&[(
            "crates/faults/src/plan.rs",
            "pub fn fault_stream(seed: u64) -> Rng {\n\
                 let mut state = seed;\n\
                 let a = splitmix64(&mut state);\n\
                 Rng::new(a ^ 17)\n\
             }",
        )]);
        let file = &w.files[0];
        let item = &file.parsed.fns[0];
        let t = tainted_idents(&file.lex.tokens, item.body.expect("body"), &item.params);
        assert!(t.contains("seed") && t.contains("state") && t.contains("a"));
    }

    #[test]
    fn untainted_let_does_not_spread() {
        let w = ws(&[(
            "crates/faults/src/plan.rs",
            "pub fn f(seed: u64) { let fixed = 42; let other = fixed + 1; }",
        )]);
        let file = &w.files[0];
        let item = &file.parsed.fns[0];
        let t = tainted_idents(&file.lex.tokens, item.body.expect("body"), &item.params);
        assert!(!t.contains("fixed") && !t.contains("other"));
    }

    #[test]
    fn seed_provenance_flags_literal_streams_on_the_sim_path() {
        let w = ws(&[(
            "crates/cluster/src/balance.rs",
            "pub fn balance_round(seed: u64) { let r = Rng::new(7); }",
        )]);
        let g = build_graph(&w);
        let r = reach(&w, &g);
        let f = seed_provenance(&w, &g, &r);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].finding.rule, "seed-provenance");
        assert!(!f[0].finding.witness.is_empty());
    }

    #[test]
    fn seed_provenance_accepts_derived_streams() {
        let w = ws(&[(
            "crates/cluster/src/balance.rs",
            "pub fn balance_round(seed: u64) { let s = seed ^ 21; let r = Rng::new(s); }",
        )]);
        let g = build_graph(&w);
        let r = reach(&w, &g);
        assert!(seed_provenance(&w, &g, &r).is_empty());
    }
}
