//! `ecolb-lint` CLI.
//!
//! ```text
//! cargo run -p ecolb-lint --offline -- --workspace [--root DIR] [--json PATH] [--budget PATH]
//! cargo run -p ecolb-lint --offline -- --explain <rule>
//! cargo run -p ecolb-lint --offline -- --list-allows [--root DIR]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use ecolb_lint::budget::parse_budget;
use ecolb_lint::explain::{explain, CARDS};
use ecolb_lint::report::run_workspace;
use ecolb_metrics::json::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    budget_path: Option<PathBuf>,
    json_path: Option<PathBuf>,
    quiet: bool,
    list_allows: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ecolb-lint --workspace [--root DIR] [--budget PATH] [--json PATH] [--quiet]\n\
         \x20      ecolb-lint --explain <rule>\n\
         \x20      ecolb-lint --list-allows [--root DIR] [--budget PATH]\n\
         \n\
         Lints every .rs source of the workspace for determinism/robustness\n\
         violations. See crates/lint/src/lib.rs for the rule table; suppress a\n\
         finding with `// ecolb-lint: allow(<rule>, \"<reason>\")`.\n\
         `--explain <rule>` prints a rule's rationale with a bad/good example;\n\
         `--list-allows` dumps the workspace suppression inventory with file:line."
    );
    std::process::exit(2);
}

fn explain_rule(rule: &str) -> i32 {
    match explain(rule) {
        Some(card) => {
            println!("{}\n", card.rule);
            println!("{}\n", card.doc);
            println!("bad:\n{}\n", indent(card.bad));
            println!("good:\n{}", indent(card.good));
            0
        }
        None => {
            let known: Vec<&str> = CARDS.iter().map(|c| c.rule).collect();
            eprintln!(
                "ecolb-lint: no rule named `{rule}`; known rules: {}",
                known.join(", ")
            );
            2
        }
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_args() -> Options {
    let mut opts = Options {
        root: PathBuf::from("."),
        budget_path: None,
        json_path: None,
        quiet: false,
        list_allows: false,
    };
    let mut saw_workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => saw_workspace = true,
            "--list-allows" => opts.list_allows = true,
            "--explain" => {
                let rule = args.next().unwrap_or_else(|| usage());
                std::process::exit(explain_rule(&rule));
            }
            "--root" => opts.root = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--budget" => {
                opts.budget_path = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--json" => {
                opts.json_path = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !saw_workspace && !opts.list_allows {
        usage();
    }
    // `cargo run -p ecolb-lint` starts in the workspace root; when invoked
    // from a member dir, walk up to the first directory holding the
    // workspace manifest.
    if !opts.root.join("Cargo.toml").is_file() {
        let mut probe = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        while !probe.join("Cargo.toml").is_file() {
            if !probe.pop() {
                break;
            }
        }
        opts.root = probe;
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let budget_path = opts
        .budget_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lint/panic_budget.toml"));
    let budget_text = match std::fs::read_to_string(&budget_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ecolb-lint: cannot read {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
    };
    let budget = match parse_budget(&budget_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ecolb-lint: {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match run_workspace(&opts.root, &budget) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecolb-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_allows {
        if report.allows.is_empty() {
            println!("no allow directives in the workspace");
        }
        for a in &report.allows {
            let reason = if a.reason.is_empty() {
                "(no reason — lint error)".to_string()
            } else {
                format!("\"{}\"", a.reason)
            };
            println!("{}:{}: allow({}) {}", a.path, a.line, a.rule, reason);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("ecolb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
        if !f.witness.is_empty() {
            println!("    call path: {}", f.witness.join(" -> "));
        }
    }
    if !opts.quiet {
        for note in &report.notes {
            eprintln!("note: {note}");
        }
        let counts: Vec<String> = report
            .panic_counts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        eprintln!(
            "ecolb-lint: {} files scanned, {} finding(s); panic sites: {}",
            report.files_scanned,
            report.findings.len(),
            counts.join(" ")
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
