//! `ecolb-lint` CLI.
//!
//! ```text
//! cargo run -p ecolb-lint --offline -- --workspace [--root DIR] [--json PATH] [--budget PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use ecolb_lint::budget::parse_budget;
use ecolb_lint::report::run_workspace;
use ecolb_metrics::json::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    budget_path: Option<PathBuf>,
    json_path: Option<PathBuf>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ecolb-lint --workspace [--root DIR] [--budget PATH] [--json PATH] [--quiet]\n\
         \n\
         Lints every .rs source of the workspace for determinism/robustness\n\
         violations. See crates/lint/src/lib.rs for the rule table; suppress a\n\
         finding with `// ecolb-lint: allow(<rule>, \"<reason>\")`."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        root: PathBuf::from("."),
        budget_path: None,
        json_path: None,
        quiet: false,
    };
    let mut saw_workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => saw_workspace = true,
            "--root" => opts.root = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--budget" => {
                opts.budget_path = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--json" => {
                opts.json_path = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !saw_workspace {
        usage();
    }
    // `cargo run -p ecolb-lint` starts in the workspace root; when invoked
    // from a member dir, walk up to the first directory holding the
    // workspace manifest.
    if !opts.root.join("Cargo.toml").is_file() {
        let mut probe = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        while !probe.join("Cargo.toml").is_file() {
            if !probe.pop() {
                break;
            }
        }
        opts.root = probe;
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let budget_path = opts
        .budget_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lint/panic_budget.toml"));
    let budget_text = match std::fs::read_to_string(&budget_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ecolb-lint: cannot read {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
    };
    let budget = match parse_budget(&budget_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ecolb-lint: {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match run_workspace(&opts.root, &budget) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecolb-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("ecolb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
    }
    if !opts.quiet {
        for note in &report.notes {
            eprintln!("note: {note}");
        }
        let counts: Vec<String> = report
            .panic_counts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        eprintln!(
            "ecolb-lint: {} files scanned, {} finding(s); panic sites: {}",
            report.files_scanned,
            report.findings.len(),
            counts.join(" ")
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
