//! A small hand-rolled Rust lexer for lint purposes.
//!
//! This is **not** a full Rust tokenizer — it only needs to be exact about
//! the places where naive text search goes wrong: line comments, (nested)
//! block comments, string literals with escapes, raw strings with any
//! number of `#` guards, byte strings, char literals vs. lifetimes, and raw
//! identifiers. Everything the rules match on (identifiers, literals,
//! punctuation) is emitted as a [`Token`] with a 1-based line and column,
//! so findings point at real source locations.
//!
//! Comments are skipped, with one exception: a line comment carrying an
//! `ecolb-lint: allow(no-wallclock, "some reason")`-style directive is parsed into a
//! [`Suppression`] so the rule engine can honour (and police) it.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `as`, `fn`, `r#match`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2.5e-3`, `1f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme classification.
    pub kind: TokenKind,
    /// The lexeme text. For strings this is the *content* (delimiters and
    /// guards stripped); for raw identifiers the `r#` prefix is stripped so
    /// rules match `r#fn` and `fn` alike.
    pub text: String,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based source column (in chars) of the first character.
    pub col: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// An inline allow directive, e.g.
/// `// ecolb-lint: allow(no-env-reads, "documented replay hook")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// The quoted reason, if one was given. Reasons are mandatory; a
    /// missing reason is itself reported by the engine.
    pub reason: Option<String>,
    /// 1-based line the directive appears on. The suppression applies to
    /// findings on this line and the next (covering both trailing-comment
    /// and line-above placement).
    pub line: u32,
}

/// Everything the lexer extracted from one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Suppression directives found in comments.
    pub suppressions: Vec<Suppression>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count chars, not bytes: only advance the column on a
            // non-continuation byte.
            self.col += 1;
        }
        Some(b)
    }
}

/// Lexes `src`, returning the token stream and any suppression directives.
///
/// The lexer never fails: unterminated strings or comments simply consume
/// the rest of the file (the compiler is the authority on syntax errors;
/// the lint only needs to avoid *mis*-classifying well-formed code).
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = LexOutput::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek_at(1) == Some(b'*') => lex_block_comment(&mut cur),
            b'r' | b'b' if starts_raw_or_byte(&cur) => {
                let text = lex_prefixed(&mut cur);
                match text {
                    Prefixed::Str(s) => out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: s,
                        line,
                        col,
                    }),
                    Prefixed::Char(s) => out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: s,
                        line,
                        col,
                    }),
                    Prefixed::Ident(s) => out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: s,
                        line,
                        col,
                    }),
                }
            }
            b'"' => {
                let s = lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: s,
                    line,
                    col,
                });
            }
            b'\'' => {
                let (kind, text) = lex_quote(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text,
                    line,
                    col,
                });
            }
            b'0'..=b'9' => {
                let (kind, text) = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text,
                    line,
                    col,
                });
            }
            b if b == b'_' || b.is_ascii_alphabetic() => {
                let text = lex_ident(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`
/// or `br#"` — anything needing prefix handling rather than plain
/// identifier lexing.
fn starts_raw_or_byte(cur: &Cursor<'_>) -> bool {
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => true,
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(cur.peek_at(2), Some(b'"') | Some(b'#')),
        _ => false,
    }
}

enum Prefixed {
    Str(String),
    Char(String),
    Ident(String),
}

fn lex_prefixed(cur: &mut Cursor<'_>) -> Prefixed {
    // Consume the `r` / `b` / `br` prefix.
    let first = cur.bump().unwrap_or(b'r');
    let mut raw = first == b'r';
    if first == b'b' {
        if cur.peek() == Some(b'r') {
            cur.bump();
            raw = true;
        } else if cur.peek() == Some(b'\'') {
            cur.bump();
            return Prefixed::Char(lex_char_body(cur));
        }
    }
    if raw {
        // Count `#` guards. `r#ident` (zero quotes after one `#`) is a raw
        // identifier, not a raw string.
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() == Some(b'"') {
            cur.bump();
            return Prefixed::Str(lex_raw_string_body(cur, hashes));
        }
        if hashes == 1 && first == b'r' {
            return Prefixed::Ident(lex_ident(cur));
        }
        // Odd shapes (`r##x`): degrade to an identifier.
        return Prefixed::Ident(lex_ident(cur));
    }
    // `b"` byte string.
    cur.bump();
    Prefixed::Str(lex_string_body(cur))
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut LexOutput) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        text.push(b as char);
        cur.bump();
    }
    if let Some(s) = parse_suppression(&text, line) {
        out.suppressions.push(s);
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening '"'
    lex_string_body(cur)
}

fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        match b {
            b'"' => {
                cur.bump();
                break;
            }
            b'\\' => {
                cur.bump();
                if let Some(e) = cur.bump() {
                    s.push('\\');
                    s.push(e as char);
                }
            }
            _ => {
                s.push(b as char);
                cur.bump();
            }
        }
    }
    s
}

fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let mut s = String::new();
    'outer: while let Some(b) = cur.peek() {
        if b == b'"' {
            // Check for `"` followed by `hashes` × `#`.
            for i in 0..hashes {
                if cur.peek_at(1 + i) != Some(b'#') {
                    s.push('"');
                    cur.bump();
                    continue 'outer;
                }
            }
            cur.bump();
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        s.push(b as char);
        cur.bump();
    }
    s
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) after a `'`.
fn lex_quote(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    cur.bump(); // opening '\''
    let b1 = cur.peek();
    let b2 = cur.peek_at(1);
    let is_lifetime = match (b1, b2) {
        (Some(c), next) if c == b'_' || c.is_ascii_alphabetic() => next != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        (TokenKind::Lifetime, lex_ident(cur))
    } else {
        (TokenKind::Char, lex_char_body(cur))
    }
}

fn lex_char_body(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        match b {
            b'\'' => {
                cur.bump();
                break;
            }
            b'\\' => {
                cur.bump();
                if let Some(e) = cur.bump() {
                    s.push('\\');
                    s.push(e as char);
                }
            }
            _ => {
                s.push(b as char);
                cur.bump();
            }
        }
    }
    s
}

fn lex_ident(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        if b == b'_' || b.is_ascii_alphanumeric() {
            s.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn lex_number(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut s = String::new();
    let mut is_float = false;
    // Hex/octal/binary literals are always integers.
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x') | Some(b'o') | Some(b'b')) {
        s.push(cur.bump().unwrap_or(b'0') as char);
        s.push(cur.bump().unwrap_or(b'x') as char);
        while let Some(b) = cur.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                s.push(b as char);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokenKind::Int, s);
    }
    while let Some(b) = cur.peek() {
        match b {
            b'0'..=b'9' | b'_' => {
                s.push(b as char);
                cur.bump();
            }
            b'.' => {
                // `1.0` is a float; `1..n` and `1.method()` are not.
                if matches!(cur.peek_at(1), Some(d) if d.is_ascii_digit()) {
                    is_float = true;
                    s.push('.');
                    cur.bump();
                } else if cur.peek_at(1) == Some(b'.')
                    || matches!(cur.peek_at(1), Some(c) if c == b'_' || c.is_ascii_alphabetic())
                {
                    break;
                } else {
                    // Trailing-dot float (`1.`).
                    is_float = true;
                    s.push('.');
                    cur.bump();
                }
            }
            b'e' | b'E' => {
                // Exponent only if followed by digits (or sign+digits);
                // otherwise it's a suffix-ish identifier char.
                let next = cur.peek_at(1);
                let exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'+') | Some(b'-') => {
                        matches!(cur.peek_at(2), Some(d) if d.is_ascii_digit())
                    }
                    _ => false,
                };
                if exp {
                    is_float = true;
                    s.push(b as char);
                    cur.bump();
                    if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
                        s.push(cur.bump().unwrap_or(b'+') as char);
                    }
                } else {
                    // Suffix like `u64` / `f64` starts here.
                    break;
                }
            }
            _ => break,
        }
    }
    // Type suffix (`u64`, `f32`, …) — consumed into the token; an `f`
    // suffix makes the literal a float.
    if matches!(cur.peek(), Some(c) if c == b'_' || c.is_ascii_alphabetic()) {
        let suffix = lex_ident(cur);
        if suffix.starts_with('f') {
            is_float = true;
        }
        s.push_str(&suffix);
    }
    if is_float {
        (TokenKind::Float, s)
    } else {
        (TokenKind::Int, s)
    }
}

/// Parses an allow directive — with or without its mandatory reason —
/// out of a line comment's text.
///
/// The directive must *start* the comment (after any doc-comment markers
/// `/`/`!` and whitespace): `// ecolb-lint: allow(rule, "reason")`. A
/// mention embedded in prose — documentation that *talks about*
/// directives — is inert, so it neither suppresses anything nor shows up
/// as a stale suppression.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let head = comment.trim_start_matches(['/', '!', ' ', '\t']);
    let rest = head.strip_prefix("ecolb-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // The directive ends at the first `)` outside the quoted reason, so
    // trailing prose after the directive (and parens inside the reason)
    // parse correctly.
    let mut close = None;
    let mut in_quotes = false;
    let mut prev = '\0';
    for (i, c) in rest.char_indices() {
        match c {
            '"' if prev != '\\' => in_quotes = !in_quotes,
            ')' if !in_quotes => {
                close = Some(i);
                break;
            }
            _ => {}
        }
        prev = c;
    }
    let inner = &rest[..close?];
    let (rule, reason) = match inner.find(',') {
        Some(c) => {
            let reason = inner[c + 1..].trim();
            let reason = reason
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(String::from);
            (inner[..c].trim(), reason)
        }
        None => (inner.trim(), None),
    };
    if rule.is_empty() {
        return None;
    }
    Some(Suppression {
        rule: rule.to_string(),
        reason,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(idents("let x = 1; // HashMap here\nlet y;"), {
            vec!["let", "x", "let", "y"]
        });
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "a /* outer /* inner HashMap */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn string_contents_are_not_identifiers() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), vec!["let", "s"]);
    }

    #[test]
    fn slashes_inside_strings_do_not_open_comments() {
        // The `//` lives inside the string; `real` must still be lexed.
        assert_eq!(
            idents(r#"let url = "http://x"; let real = 1;"#),
            vec!["let", "url", "let", "real"]
        );
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        assert_eq!(
            idents(r#"let s = "a\"b; HashMap"; tail"#),
            vec!["let", "s", "tail"]
        );
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r#\"quote \" and HashMap\"#; done";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
        let toks = lex(src).tokens;
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("str");
        assert_eq!(s.text, "quote \" and HashMap");
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = lex("1 2.0 0xFF 1_000u64 2.5e-3 1f64 7usize 1..4 3.max(4)").tokens;
        let kinds: Vec<(TokenKind, String)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokenKind::Int, "1".into()),
                (TokenKind::Float, "2.0".into()),
                (TokenKind::Int, "0xFF".into()),
                (TokenKind::Int, "1_000u64".into()),
                (TokenKind::Float, "2.5e-3".into()),
                (TokenKind::Float, "1f64".into()),
                (TokenKind::Int, "7usize".into()),
                (TokenKind::Int, "1".into()),
                (TokenKind::Int, "4".into()),
                (TokenKind::Int, "3".into()),
                (TokenKind::Int, "4".into()),
            ]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn suppression_directive_parses() {
        let out = lex("x(); // ecolb-lint: allow(no-wallclock, \"bench only\")\ny();");
        assert_eq!(
            out.suppressions,
            vec![Suppression {
                rule: "no-wallclock".into(),
                reason: Some("bench only".into()),
                line: 1,
            }]
        );
    }

    #[test]
    fn directive_embedded_in_prose_is_inert() {
        // Documentation that *mentions* the directive syntax must not
        // create a live (and instantly stale) suppression.
        let out = lex("// see `ecolb-lint: allow(no-wallclock, \"why\")` — reason is mandatory\n");
        assert!(out.suppressions.is_empty());
    }

    #[test]
    fn directive_at_doc_comment_start_parses() {
        let out = lex("/// ecolb-lint: allow(no-wallclock, \"doc'd\")\nfn f() {}");
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "no-wallclock");
        let trailing = lex("x(); // ecolb-lint: allow(no-wallclock, \"trailing\")\n");
        assert_eq!(trailing.suppressions.len(), 1);
    }

    #[test]
    fn reason_may_contain_parens() {
        let out = lex("// ecolb-lint: allow(no-env-reads, \"replay hook (documented)\")\n");
        assert_eq!(
            out.suppressions[0].reason.as_deref(),
            Some("replay hook (documented)")
        );
    }

    #[test]
    fn suppression_without_reason_is_recorded_reasonless() {
        let out = lex("// ecolb-lint: allow(no-env-reads)\n");
        assert_eq!(out.suppressions[0].reason, None);
    }

    #[test]
    fn directive_inside_string_is_inert() {
        let out = lex(r#"let s = "// ecolb-lint: allow(no-wallclock, \"x\")";"#);
        assert!(out.suppressions.is_empty());
    }
}
