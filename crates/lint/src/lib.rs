//! # ecolb-lint
//!
//! Workspace-native static analysis enforcing the determinism and
//! robustness contracts of the `ecolb` simulator. The repo's headline
//! guarantee — byte-identical sweep output at any thread count — is a
//! *property of the source*, so this crate turns the conventions that
//! uphold it into machine-checked rules:
//!
//! | Rule | Layer | Protects against |
//! |---|---|---|
//! | `no-wallclock` | token | real-time reads on the sim path (`Instant`, `SystemTime`) |
//! | `no-unordered-collections` | token | hash-order iteration (`HashMap`/`HashSet`) in sim crates |
//! | `no-ambient-rng` | token | entropy not derived from the run seed; constant reseeds in parallel closures |
//! | `no-env-reads` | token | library behaviour depending on ambient environment |
//! | `float-truncating-cast` | token | silent `f64 → int` truncation in energy/metrics |
//! | `float-reduction-order` | token | order-sensitive float folds inside `par::map` closures |
//! | `panic-budget` | token | panic creep in library code (one-way ratchet) |
//! | `sim-path-purity` | graph | determinism hazards in *any* function reachable from a sim entry point |
//! | `seed-provenance` | graph | RNG streams on the sim path not derived from a seed parameter |
//! | `silent-result-drop` | graph | `let _ =` discarding a workspace `Result` in library code |
//! | `stale-suppression` | engine | allow directives that no longer suppress anything |
//!
//! The pipeline is a hand-rolled [`lexer`] (comments, nested block
//! comments, raw strings, char-vs-lifetime disambiguation) feeding a
//! [`rules`] engine, plus an item-level [`parse`]r that builds a
//! workspace symbol table, a conservative name-resolution call [`graph`],
//! and a [`reach`]ability layer whose findings carry a call-path witness
//! (entry point → … → violating function). Inline suppressions
//! (`// ecolb-lint: allow(no-wallclock, "why")` — the reason is mandatory,
//! the directive must start the comment) feed a usage ledger so stale
//! allows surface as errors; a per-crate panic [`budget`] ratchet and a
//! JSON [`report`] (via `ecolb_metrics::json`) round it out. Run it with:
//!
//! ```text
//! cargo run -p ecolb-lint --offline -- --workspace
//! ```
//!
//! Zero dependencies beyond the workspace's own `ecolb-metrics`, in
//! keeping with the hermetic-build contract.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod engine;
pub mod explain;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod report;
pub mod rules;
pub mod walk;

pub use budget::{parse_budget, Budget};
pub use engine::check_file;
pub use report::{lint_files, lint_source, run_workspace, WorkspaceReport};
pub use rules::{FileContext, Finding, ALL_RULES};
