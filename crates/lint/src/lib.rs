//! # ecolb-lint
//!
//! Workspace-native static analysis enforcing the determinism and
//! robustness contracts of the `ecolb` simulator. The repo's headline
//! guarantee — byte-identical sweep output at any thread count — is a
//! *property of the source*, so this crate turns the conventions that
//! uphold it into machine-checked rules:
//!
//! | Rule | Protects against |
//! |---|---|
//! | `no-wallclock` | real-time reads on the sim path (`Instant`, `SystemTime`) |
//! | `no-unordered-collections` | hash-order iteration (`HashMap`/`HashSet`) in sim crates |
//! | `no-ambient-rng` | entropy not derived from the run seed; constant reseeds in parallel closures |
//! | `no-env-reads` | library behaviour depending on ambient environment |
//! | `float-truncating-cast` | silent `f64 → int` truncation in energy/metrics |
//! | `panic-budget` | panic creep in library code (one-way ratchet) |
//!
//! The pipeline is a hand-rolled [`lexer`] (comments, nested block
//! comments, raw strings, char-vs-lifetime disambiguation) feeding a
//! [`rules`] engine, with inline suppressions
//! (`// ecolb-lint: allow(no-wallclock, "why")` — the reason is mandatory),
//! a per-crate panic [`budget`] ratchet, and a JSON [`report`] emitted via
//! `ecolb_metrics::json`. Run it with:
//!
//! ```text
//! cargo run -p ecolb-lint --offline -- --workspace
//! ```
//!
//! Zero dependencies beyond the workspace's own `ecolb-metrics`, in
//! keeping with the hermetic-build contract.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use budget::{parse_budget, Budget};
pub use engine::check_file;
pub use report::{lint_source, run_workspace, WorkspaceReport};
pub use rules::{FileContext, Finding, ALL_RULES};
