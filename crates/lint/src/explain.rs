//! `--explain <rule>`: per-rule documentation with a bad/good example.

/// One rule's explanation card.
pub struct Explanation {
    /// Rule identifier.
    pub rule: &'static str,
    /// What the rule protects and why it exists in this repo.
    pub doc: &'static str,
    /// A minimal violating snippet.
    pub bad: &'static str,
    /// The deterministic rewrite.
    pub good: &'static str,
}

/// Looks up the explanation card for `rule`.
pub fn explain(rule: &str) -> Option<&'static Explanation> {
    CARDS.iter().find(|c| c.rule == rule)
}

/// All explanation cards, in [`crate::rules::ALL_RULES`] order (plus the
/// `suppression` policing pseudo-rule).
pub const CARDS: &[Explanation] = &[
    Explanation {
        rule: "no-wallclock",
        doc: "Wall-clock sources (Instant, SystemTime, UNIX_EPOCH) are banned outside \
              crates/bench. Simulated time advances only through ecolb_simcore::time::SimTime; \
              a real-time read anywhere on the sim path makes two runs of the same seed \
              diverge, which breaks the byte-identical replay guarantee every experiment \
              table depends on.",
        bad: "let started = Instant::now();\nreport.elapsed = started.elapsed().as_secs_f64();",
        good: "let started = sim.now();          // SimTime, advanced by the engine\nreport.elapsed = sim.now() - started;",
    },
    Explanation {
        rule: "no-unordered-collections",
        doc: "HashMap/HashSet iterate in SipHash order, randomized per process, so any fold \
              over them silently changes output bytes between runs. Sim-path crates must use \
              BTreeMap/BTreeSet/Vec, whose iteration order is a function of the data alone.",
        bad: "let mut vms: HashMap<u32, Vm> = HashMap::new();\nfor (id, vm) in &vms { place(vm); }",
        good: "let mut vms: BTreeMap<u32, Vm> = BTreeMap::new();\nfor (id, vm) in &vms { place(vm); } // id order, every run",
    },
    Explanation {
        rule: "no-ambient-rng",
        doc: "Every random draw in the simulator must derive from the experiment's single u64 \
              seed via ecolb_simcore::rng, so a run is replayable from its seed alone. \
              Ambient entropy (thread_rng, OsRng, from_entropy, getrandom) breaks that; so \
              does reseeding with a constant inside a parallel closure, which hands every \
              shard the same stream.",
        bad: "let mut rng = thread_rng();\nlet jitter = rng.gen_range(0..10);",
        good: "let mut rng = Rng::new(seed ^ server_id as u64);\nlet jitter = rng.next_u64() % 10;",
    },
    Explanation {
        rule: "no-env-reads",
        doc: "Library behaviour must be a function of explicit arguments, not ambient process \
              state: env::var reads are allowed only in bin targets (and the documented \
              ECOLB_PROP_SEED replay hook in proptest_lite). An env read buried in a library \
              makes results depend on who ran them.",
        bad: "let threads = std::env::var(\"ECOLB_THREADS\").map(|v| v.parse().unwrap_or(1));",
        good: "pub fn run(cfg: &RunConfig) { let threads = cfg.threads; /* caller decides */ }",
    },
    Explanation {
        rule: "float-truncating-cast",
        doc: "In crates/energy and crates/metrics, `<float expr> as usize/u64/…` silently \
              truncates, saturates at the type bounds, and maps NaN to 0 — three behaviours \
              nobody chose. The audited helpers in ecolb_metrics::convert document the \
              saturation and NaN semantics in one place; use them.",
        bad: "let idx = (q * self.counts.len() as f64) as usize;",
        good: "let idx = ecolb_metrics::convert::f64_to_usize_saturating(q * self.counts.len() as f64);",
    },
    Explanation {
        rule: "float-reduction-order",
        doc: "Float addition is not associative, so an f64 `+=` or `.sum()` fold inside a \
              par::map closure changes bytes when the shard count changes — exactly the \
              non-determinism the 1/2/8-thread identity tests exist to catch. Return \
              per-item values from the closure and reduce sequentially over the collected \
              Vec, where the order is the item order.",
        bad: "par::map(shards, n, |s| { let mut e = 0.0f64; for r in s { e += r.energy; } e })",
        good: "let per_item = par::map(shards, n, |s| s.energy_vec());\nlet total: f64 = per_item.iter().flatten().fold(0.0, |a, x| a + x); // sequential, item order",
    },
    Explanation {
        rule: "panic-budget",
        doc: "Library-code panic sites (.unwrap/.expect/panic!/unreachable!/todo!/\
              unimplemented!) are counted per crate against lint/panic_budget.toml. The \
              budget is a one-way ratchet: exceeding it fails the lint, dropping below it \
              asks you to lower the budget (the run prints the exact lowered stanza). Bins, \
              tests and #[cfg(test)] modules are exempt.",
        bad: "let server = self.directory.get(&id).unwrap(); // panics on a stale id",
        good: "let server = match self.directory.get(&id) {\n    Some(s) => s,\n    None => return Err(DirectoryError::Stale(id)),\n};",
    },
    Explanation {
        rule: "sim-path-purity",
        doc: "Every function reachable from a sim entry point (Engine::run*, \
              Cluster::run_interval*, balance_round*, the *Sim drivers, the chaos harness) \
              must be free of wallclock/unordered-iteration/ambient-RNG/env hazards — \
              whatever crate it lives in. The call graph is conservative (name resolution, \
              over-approximate), and each finding carries a call-path witness from the entry \
              point to the violating function so you can see exactly why the helper is hot. \
              Suppress with the base rule's allow (e.g. allow(no-wallclock, …)) or \
              allow(sim-path-purity, …).",
        bad: "fn helper() -> u64 { SystemTime::now()… } // called (transitively) from balance_round",
        good: "fn helper(now: SimTime) -> u64 { now.as_micros() } // time flows in as an argument",
    },
    Explanation {
        rule: "seed-provenance",
        doc: "Every Rng::new / fault_stream construction reachable from a sim entry point \
              must derive its seed from something the caller passed in — a parameter, self, \
              or a local computed from one (a single forward taint pass follows let \
              bindings). A literal or ambient seed gives every run and every shard the same \
              stream, the classic 'all my replicas made the same decision' bug. Tests are \
              exempt.",
        bad: "fn evolve(&mut self) { let mut r = Rng::new(42); … } // same stream, every interval",
        good: "fn evolve(&mut self, seed: u64) { let mut r = Rng::new(seed ^ self.id as u64); … }",
    },
    Explanation {
        rule: "silent-result-drop",
        doc: "`let _ = f(…);` where f is a workspace function returning Result throws the \
              error path away without a trace — in a simulator that accounts for failures \
              (lost reports, failed consolidations), a dropped Result is usually an \
              accounting bug. Handle it, propagate with `?`, or write an allow with the \
              reason the error is genuinely ignorable. Macros (write!/writeln!) are not \
              flagged.",
        bad: "let _ = self.send_report(leader, report); // delivery failure vanishes",
        good: "if self.send_report(leader, report).is_err() {\n    self.degradation.lost_reports += 1;\n}",
    },
    Explanation {
        rule: "stale-suppression",
        doc: "A well-formed allow directive that no longer suppresses any finding is itself \
              an error. Code moves; an allow that outlives its violation is a hole in the \
              fence — delete it (the inventory is one `--list-allows` away). This policing \
              finding is not suppressible.",
        bad: "// ecolb-lint: allow(no-wallclock, \"perf probe\")  <- the Instant below was removed\nlet t = self.sim_now;",
        good: "let t = self.sim_now; // directive deleted with the violation",
    },
    Explanation {
        rule: "suppression",
        doc: "Directive policing: an allow must name a known rule and carry a written reason \
              — `// ecolb-lint: allow(<rule>, \"why\")`. The reason is the review artifact; \
              a bare allow is indistinguishable from a silenced mistake. These findings are \
              not suppressible.",
        bad: "// ecolb-lint: allow(no-wallclock)",
        good: "// ecolb-lint: allow(no-wallclock, \"bench harness measures real elapsed time\")",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ALL_RULES;

    #[test]
    fn every_rule_has_a_card() {
        for rule in ALL_RULES {
            assert!(explain(rule).is_some(), "no --explain card for `{rule}`");
        }
        assert!(explain("suppression").is_some());
        assert!(explain("no-such-rule").is_none());
    }

    #[test]
    fn cards_are_self_consistent() {
        for c in CARDS {
            assert!(!c.doc.is_empty() && !c.bad.is_empty() && !c.good.is_empty());
            assert!(
                ALL_RULES.contains(&c.rule) || c.rule == "suppression",
                "card for unknown rule `{}`",
                c.rule
            );
        }
    }
}
