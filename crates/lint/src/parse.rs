//! Item-level parser on top of the [`lexer`](crate::lexer).
//!
//! `ecolb-lint` v1 reasoned about files; the graph rules reason about
//! *functions*. This module recovers just enough structure from the token
//! stream to make that possible: `fn` items (name, parameters, return-type
//! tokens, body span), the `impl`/`trait`/`mod` scopes that qualify them,
//! `use` imports (for call resolution), and the `#[test]` / `#[cfg(test)]`
//! attributes that exempt test code from sim-path rules.
//!
//! Like the lexer, this is deliberately **not** a full Rust parser. It is
//! exact about the constructs that would otherwise corrupt the call graph —
//! nested generics (including `Fn(..) -> T` arrows inside angle brackets),
//! `where` clauses, raw/byte strings inside bodies, tuple-pattern
//! parameters — and conservative everywhere else: a construct it does not
//! model is simply skipped, never misattributed. Soundness note: function
//! bodies are treated as opaque token spans at item level (a `fn` nested
//! inside another `fn` is folded into its parent), which over-approximates
//! callers and never hides a call site.

use crate::lexer::{Token, TokenKind};
use crate::rules::matching_close;

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`Engine` for
    /// `impl Engine { fn run … }`).
    pub owner: Option<String>,
    /// Inline `mod` path from the file root down to the item.
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Binding names of the parameters (`self` included for methods;
    /// tuple patterns contribute every bound name).
    pub params: Vec<String>,
    /// Token texts of the return type (empty for `()` functions).
    pub ret: Vec<String>,
    /// Token-index span of the body `{ … }` (inclusive of both braces),
    /// or `None` for bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// True when the item is test code: `#[test]`, under `#[cfg(test)]`,
    /// or inside a module marked with either.
    pub is_test: bool,
}

impl FnItem {
    /// `Owner::name` for methods, bare `name` for free functions.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }

    /// True when the declared return type mentions `Result`.
    pub fn returns_result(&self) -> bool {
        self.ret.iter().any(|t| t == "Result")
    }
}

/// One name a `use` declaration brings into scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Full path segments (`["ecolb_cluster", "balance", "balance_round"]`).
    pub segments: Vec<String>,
    /// The in-scope name (last segment, or the `as` alias).
    pub alias: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// Everything the item parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Flattened `use` imports.
    pub uses: Vec<UseImport>,
}

/// Returns the index just past the `>` matching the `<` at `open`.
///
/// Understands `Fn(..) -> T` arrows inside generic arguments (the `>` of
/// `->` never closes an angle bracket) and skips parenthesized groups
/// whole. Bails out (returning the bail index) at a `{`, `}` or `;` at
/// angle depth — at item level a `<` that runs into those was a
/// comparison, not generics.
pub(crate) fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            if i > 0 && tokens[i - 1].is_punct('-') {
                i += 1; // `->` arrow inside Fn(..) sugar
                continue;
            }
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct('(') {
            i = matching_close(tokens, i);
            if i >= tokens.len() {
                return tokens.len();
            }
        } else if t.is_punct('{') || t.is_punct('}') || t.is_punct(';') {
            return i;
        }
        i += 1;
    }
    tokens.len()
}

/// Collects the binding names of one parameter (token indices `idxs`):
/// every identifier before the top-level `:`, minus `mut`/`ref`. A bare
/// `self` / `&mut self` parameter yields `["self"]`.
fn param_names(tokens: &[Token], idxs: &[usize]) -> Vec<String> {
    let mut names = Vec::new();
    for &i in idxs {
        let t = &tokens[i];
        if t.is_punct(':') {
            break;
        }
        if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "dyn") {
            names.push(t.text.clone());
        }
    }
    names
}

/// Splits the parameter list between `open` (`(`) and `close` (`)`) at
/// top-level commas and extracts each parameter's binding names.
fn parse_params(tokens: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut seg: Vec<usize> = Vec::new();
    let flush = |seg: &mut Vec<usize>, params: &mut Vec<String>| {
        if !seg.is_empty() {
            params.extend(param_names(tokens, seg));
            seg.clear();
        }
    };
    let mut i = open + 1;
    while i < close.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            flush(&mut seg, &mut params);
            i += 1;
            continue;
        }
        seg.push(i);
        i += 1;
    }
    flush(&mut seg, &mut params);
    params
}

/// Parses one `use` declaration starting at the `use` keyword; returns
/// the flattened imports and the index just past the terminating `;`.
fn parse_use(tokens: &[Token], start: usize) -> (Vec<UseImport>, usize) {
    // Find the terminating semicolon first.
    let mut end = start;
    let mut depth = 0i64;
    while end < tokens.len() {
        let t = &tokens[end];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            break;
        }
        end += 1;
    }
    let line = tokens[start].line;
    let mut out = Vec::new();
    flatten_use(tokens, start + 1, end, &mut Vec::new(), &mut out, line);
    (out, end + 1)
}

/// Recursively flattens a use tree (`a::b::{c, d as e}`) into imports.
fn flatten_use(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseImport>,
    line: u32,
) {
    let base_len = prefix.len();
    let mut alias: Option<String> = None;
    fn flush(
        base_len: usize,
        line: u32,
        prefix: &mut Vec<String>,
        alias: &mut Option<String>,
        out: &mut Vec<UseImport>,
    ) {
        if prefix.len() > base_len {
            let last = prefix.last().cloned().unwrap_or_default();
            if last != "*" {
                out.push(UseImport {
                    segments: prefix.clone(),
                    alias: alias.take().unwrap_or(last),
                    line,
                });
            }
            prefix.truncate(base_len);
        }
        *alias = None;
    }
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            if t.text == "as" {
                if let Some(a) = tokens.get(i + 1) {
                    alias = Some(a.text.clone());
                }
                i += 2;
                continue;
            }
            if t.text != "pub" {
                prefix.push(t.text.clone());
            }
        } else if t.is_punct('*') {
            prefix.push("*".to_string());
        } else if t.is_punct('{') {
            let close = matching_close(tokens, i);
            // Recurse per comma-separated subtree.
            let mut sub = i + 1;
            let mut sub_start = sub;
            let mut depth = 0i64;
            while sub < close.min(tokens.len()) {
                let st = &tokens[sub];
                if st.is_punct('{') {
                    depth += 1;
                } else if st.is_punct('}') {
                    depth -= 1;
                } else if st.is_punct(',') && depth == 0 {
                    flatten_use(tokens, sub_start, sub, prefix, out, line);
                    sub_start = sub + 1;
                }
                sub += 1;
            }
            flatten_use(
                tokens,
                sub_start,
                close.min(tokens.len()),
                prefix,
                out,
                line,
            );
            prefix.truncate(base_len);
            i = close + 1;
            continue;
        } else if t.is_punct(',') {
            flush(base_len, line, prefix, &mut alias, out);
        }
        i += 1;
    }
    flush(base_len, line, prefix, &mut alias, out);
}

/// A lexical scope the item scanner is inside.
struct Scope {
    /// Type name for `impl`/`trait` scopes, module name for `mod` scopes.
    name: Option<String>,
    /// True for `mod` scopes (contributes to [`FnItem::modules`]).
    is_mod: bool,
    /// Token index of the closing `}`.
    end: usize,
    /// True when the scope (or an ancestor) is `#[cfg(test)]`.
    test: bool,
}

/// Parses the item structure of one file's token stream.
pub fn parse_items(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false; // #[test] or #[cfg(test)] seen for next item
    let mut i = 0usize;

    while i < tokens.len() {
        while let Some(s) = scopes.last() {
            if i > s.end {
                scopes.pop();
            } else {
                break;
            }
        }
        let in_test_scope = scopes.iter().any(|s| s.test);
        let t = &tokens[i];

        // Attributes: `#[…]` / `#![…]`.
        if t.is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).map(|t| t.is_punct('!')).unwrap_or(false) {
                j += 1;
            }
            if tokens.get(j).map(|t| t.is_punct('[')).unwrap_or(false) {
                let close = matching_close(tokens, j);
                let attr = &tokens[j + 1..close.min(tokens.len())];
                let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
                if (has("cfg") && has("test"))
                    || attr.first().map(|t| t.is_ident("test")) == Some(true)
                {
                    pending_test = true;
                }
                i = close + 1;
                continue;
            }
        }

        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }

        match t.text.as_str() {
            "use" => {
                let (imports, next) = parse_use(tokens, i);
                out.uses.extend(imports);
                pending_test = false;
                i = next;
            }
            "mod" => {
                let name = tokens.get(i + 1).map(|t| t.text.clone());
                let brace = tokens.get(i + 2);
                if let (Some(name), Some(b)) = (name, brace) {
                    if b.is_punct('{') {
                        let end = matching_close(tokens, i + 2);
                        scopes.push(Scope {
                            name: Some(name),
                            is_mod: true,
                            end,
                            test: pending_test || in_test_scope,
                        });
                        pending_test = false;
                        i += 3;
                        continue;
                    }
                }
                pending_test = false;
                i += 1;
            }
            "impl" | "trait" => {
                let is_trait = t.text == "trait";
                let mut j = i + 1;
                if tokens.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
                    j = skip_angles(tokens, j);
                }
                // Scan to the opening brace, remembering the last path
                // identifier (after `for`, for trait impls). A `where`
                // clause settles the name — its bound idents must not
                // overwrite it.
                let mut last_name: Option<String> = None;
                let mut in_where = false;
                while j < tokens.len() {
                    let tj = &tokens[j];
                    if tj.is_punct('{') {
                        break;
                    }
                    if tj.is_punct(';') {
                        break; // `impl Foo;`-ish degenerate; skip
                    }
                    if tj.is_punct('<') {
                        j = skip_angles(tokens, j);
                        continue;
                    }
                    if tj.is_ident("for") {
                        last_name = None;
                    } else if tj.is_ident("where") {
                        in_where = true;
                    } else if !in_where
                        && tj.kind == TokenKind::Ident
                        && !matches!(tj.text.as_str(), "dyn" | "unsafe" | "pub")
                    {
                        last_name = Some(tj.text.clone());
                    }
                    j += 1;
                }
                if is_trait {
                    // Name is the first ident after `trait`, not the last
                    // (supertraits follow the `:`).
                    last_name = tokens.get(i + 1).map(|t| t.text.clone());
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    let end = matching_close(tokens, j);
                    scopes.push(Scope {
                        name: last_name,
                        is_mod: false,
                        end,
                        test: pending_test || in_test_scope,
                    });
                    pending_test = false;
                    i = j + 1;
                    continue;
                }
                pending_test = false;
                i = j + 1;
            }
            "fn" => {
                let name_tok = match tokens.get(i + 1) {
                    Some(n) if n.kind == TokenKind::Ident => n,
                    _ => {
                        // `fn(..)` pointer type in a field/const; not an item.
                        i += 1;
                        continue;
                    }
                };
                let mut j = i + 2;
                if tokens.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
                    j = skip_angles(tokens, j);
                }
                if !tokens.get(j).map(|t| t.is_punct('(')).unwrap_or(false) {
                    i += 1;
                    continue;
                }
                let close = matching_close(tokens, j);
                let params = parse_params(tokens, j, close);
                let mut k = close + 1;
                let mut ret: Vec<String> = Vec::new();
                if tokens.get(k).map(|t| t.is_punct('-')).unwrap_or(false)
                    && tokens.get(k + 1).map(|t| t.is_punct('>')).unwrap_or(false)
                {
                    k += 2;
                    let mut depth = 0i64;
                    while k < tokens.len() {
                        let tk = &tokens[k];
                        if depth == 0
                            && (tk.is_punct('{') || tk.is_punct(';') || tk.is_ident("where"))
                        {
                            break;
                        }
                        if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('<') {
                            depth += 1;
                        } else if tk.is_punct(')')
                            || tk.is_punct(']')
                            || (tk.is_punct('>') && !(k > 0 && tokens[k - 1].is_punct('-')))
                        {
                            depth -= 1;
                        }
                        ret.push(tk.text.clone());
                        k += 1;
                    }
                }
                if tokens.get(k).map(|t| t.is_ident("where")).unwrap_or(false) {
                    while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                        k += 1;
                    }
                }
                let body = if tokens.get(k).map(|t| t.is_punct('{')).unwrap_or(false) {
                    Some((k, matching_close(tokens, k)))
                } else {
                    None
                };
                let owner = scopes
                    .iter()
                    .rev()
                    .find(|s| !s.is_mod)
                    .and_then(|s| s.name.clone());
                let modules = scopes
                    .iter()
                    .filter(|s| s.is_mod)
                    .filter_map(|s| s.name.clone())
                    .collect();
                out.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    owner,
                    modules,
                    line: t.line,
                    col: t.col,
                    params,
                    ret,
                    body,
                    is_test: pending_test || in_test_scope,
                });
                pending_test = false;
                i = match body {
                    Some((_, end)) => end + 1,
                    None => k + 1,
                };
            }
            "struct" | "enum" | "union" | "static" | "const" | "type" | "extern" => {
                pending_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_fn_with_params_and_ret() {
        let p = parse("pub fn balance_round(seed: u64, n: usize) -> Result<(), Error> { x() }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "balance_round");
        assert_eq!(f.params, vec!["seed", "n"]);
        assert!(f.returns_result());
        assert!(f.body.is_some());
        assert!(!f.is_test);
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let p =
            parse("impl Engine { pub fn run(&mut self, state: &mut S) -> RunOutcome { loop {} } }");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Engine"));
        assert_eq!(p.fns[0].display(), "Engine::run");
        assert_eq!(p.fns[0].params, vec!["self", "state"]);
    }

    #[test]
    fn generic_impl_and_trait_impl_owners() {
        let p = parse(
            "impl<'a, E: Event, T> Scheduler<'a, E, T> { fn tick(&mut self) {} }\n\
             impl fmt::Display for Piecewise { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Scheduler"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Piecewise"));
        assert!(p.fns[1].returns_result());
    }

    #[test]
    fn fn_generics_with_closure_bounds_parse() {
        let p = parse(
            "pub fn run<S, F: FnMut(&mut S, u32) -> Control>(state: &mut S, handler: F) -> RunOutcome { handler(state, 1) }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "run");
        assert_eq!(p.fns[0].params, vec!["state", "handler"]);
        assert_eq!(p.fns[0].ret, vec!["RunOutcome"]);
    }

    #[test]
    fn where_clause_does_not_eat_the_body() {
        let p = parse("fn f<T>(x: T) -> T where T: Clone + Fn(u32) -> u32 { x }");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[0].ret, vec!["T"]);
    }

    #[test]
    fn cfg_test_mod_marks_nested_fns() {
        let p = parse(
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests { use super::*; #[test] fn t() { lib_fn(); } fn helper() {} }",
        );
        assert_eq!(p.fns.len(), 3);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert!(
            p.fns[2].is_test,
            "helpers inside cfg(test) mods are test code"
        );
        assert_eq!(p.fns[1].modules, vec!["tests"]);
    }

    #[test]
    fn test_attr_marks_only_the_next_fn() {
        let p = parse("#[test]\nfn t() {}\nfn real() {}");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn bodiless_trait_methods_and_defaults() {
        let p =
            parse("trait Tracer: Sized { fn event(&mut self, t: u64); fn flush(&mut self) {} }");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Tracer"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("struct H { cb: fn(u32) -> u32 } fn real() {}");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let p = parse("use ecolb_cluster::balance::{balance_round, BalanceOutcome as Out};\nuse ecolb_simcore::par::*;");
        assert_eq!(
            p.uses,
            vec![
                UseImport {
                    segments: vec![
                        "ecolb_cluster".into(),
                        "balance".into(),
                        "balance_round".into()
                    ],
                    alias: "balance_round".into(),
                    line: 1,
                },
                UseImport {
                    segments: vec![
                        "ecolb_cluster".into(),
                        "balance".into(),
                        "BalanceOutcome".into()
                    ],
                    alias: "Out".into(),
                    line: 1,
                },
            ]
        );
    }

    #[test]
    fn tuple_patterns_bind_every_name() {
        let p = parse("fn f((seed, size): (u64, usize), mut rest: Vec<u32>) {}");
        assert_eq!(p.fns[0].params, vec!["seed", "size", "rest"]);
    }
}
