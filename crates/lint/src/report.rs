//! Workspace-level run and machine-readable report.

use crate::budget::{ratchet, Budget, RatchetVerdict};
use crate::engine::check_file;
use crate::rules::{FileContext, Finding};
use crate::walk::workspace_sources;
use ecolb_metrics::json::{ObjectWriter, ToJson};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Aggregated outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (path, line, col, rule). Non-empty findings
    /// mean the lint fails.
    pub findings: Vec<Finding>,
    /// Library-code panic sites per crate (after suppressions).
    pub panic_counts: BTreeMap<String, usize>,
    /// Advisory messages (e.g. "budget can be lowered") that do not fail
    /// the run.
    pub notes: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl ToJson for Finding {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("rule", &self.rule)
            .field("path", &self.path)
            .field("line", &self.line)
            .field("col", &self.col)
            .field("message", &self.message)
            .finish();
    }
}

impl ToJson for WorkspaceReport {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("tool", &"ecolb-lint")
            .field("clean", &self.is_clean())
            .field("files_scanned", &self.files_scanned)
            .field("findings", &self.findings)
            .field_with("panic_counts", |o| {
                let counts: BTreeMap<String, usize> = self
                    .panic_counts
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                counts.write_json(o);
            })
            .field("notes", &self.notes)
            .finish();
    }
}

/// Lints one file's source text under its derived [`FileContext`]; used by
/// the fixture self-tests and by [`run_workspace`].
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, Vec<Finding>) {
    let ctx = FileContext::from_path(path);
    let report = check_file(&ctx, src);
    (report.findings, report.panic_sites)
}

/// Walks the workspace at `root`, lints every source file, and applies the
/// panic-budget ratchet.
pub fn run_workspace(root: &Path, budget: &Budget) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let files = workspace_sources(root)?;
    report.files_scanned = files.len();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let (findings, sites) = lint_source(rel, &src);
        report.findings.extend(findings);
        for site in sites {
            let krate = FileContext::from_path(rel).krate;
            *report.panic_counts.entry(krate).or_insert(0) += 1;
            let _ = site;
        }
    }
    for (krate, verdict) in ratchet(&report.panic_counts, budget) {
        match verdict {
            RatchetVerdict::AtBudget => {}
            RatchetVerdict::BelowBudget { count, budget } => report.notes.push(format!(
                "crate `{krate}`: {count} panic sites, budget {budget} — lower the budget in \
                 lint/panic_budget.toml to lock in the improvement"
            )),
            RatchetVerdict::OverBudget { count, budget } => report.findings.push(Finding {
                rule: "panic-budget",
                path: "lint/panic_budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{krate}`: {count} library-code panic sites exceed the budget of \
                     {budget}; convert to Result or justify with an allow(panic-budget) directive"
                ),
            }),
            RatchetVerdict::Unbudgeted { count } => report.findings.push(Finding {
                rule: "panic-budget",
                path: "lint/panic_budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{krate}` ({count} panic sites) has no entry in lint/panic_budget.toml"
                ),
            }),
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_json() {
        let mut r = WorkspaceReport::default();
        r.files_scanned = 2;
        r.findings.push(Finding {
            rule: "no-wallclock",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "bad".into(),
        });
        r.panic_counts.insert("cluster".into(), 7);
        let json = r.to_json();
        assert!(json.contains(r#""tool":"ecolb-lint""#));
        assert!(json.contains(r#""clean":false"#));
        assert!(json.contains(r#""rule":"no-wallclock""#));
        assert!(json.contains(r#""panic_counts":{"cluster":7}"#));
    }
}
