//! Workspace-level run and machine-readable report.
//!
//! The full pipeline runs in two layers over one in-memory pass:
//!
//! 1. **Token layer** (per file): lex, run the positional rules, collect
//!    panic sites.
//! 2. **Graph layer** (cross-file): parse items, build the call graph,
//!    compute reachability from the sim entry points, run
//!    `sim-path-purity` / `seed-provenance` / `silent-result-drop`.
//!
//! Where the purity rule re-derives a token finding (same file, line and
//! column, same hazard class), the *purity* finding wins — it carries the
//! call-path witness — and the token duplicate is dropped. An
//! `allow(<base-rule>, …)` directive still covers the purity finding for
//! that site, so existing suppressions keep working. Both layers feed one
//! suppression-usage ledger, from which stale directives are derived.

use crate::budget::{ratchet, Budget, RatchetVerdict};
use crate::engine::{apply_suppressions, check_file, police_directives, stale_findings};
use crate::graph::Workspace;
use crate::lexer::Suppression;
use crate::reach::{graph_findings, purity_sites};
use crate::rules::{check_tokens, panic_sites, FileContext, Finding};
use crate::walk::workspace_sources;
use ecolb_metrics::json::{ObjectWriter, ToJson};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Aggregated outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (path, line, col, rule). Non-empty findings
    /// mean the lint fails.
    pub findings: Vec<Finding>,
    /// Library-code panic sites per crate (after suppressions).
    pub panic_counts: BTreeMap<String, usize>,
    /// Advisory messages (e.g. "budget can be lowered") that do not fail
    /// the run.
    pub notes: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every suppression directive in the workspace, for `--list-allows`.
    pub allows: Vec<AllowRecord>,
}

/// One allow directive in the workspace inventory.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// Rule being suppressed.
    pub rule: String,
    /// The written reason (empty when missing — which is itself a finding).
    pub reason: String,
}

impl WorkspaceReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl ToJson for Finding {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("rule", &self.rule)
            .field("path", &self.path)
            .field("line", &self.line)
            .field("col", &self.col)
            .field("message", &self.message)
            .field("witness", &self.witness)
            .finish();
    }
}

impl ToJson for AllowRecord {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("path", &self.path)
            .field("line", &self.line)
            .field("rule", &self.rule)
            .field("reason", &self.reason)
            .finish();
    }
}

impl ToJson for WorkspaceReport {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("tool", &"ecolb-lint")
            .field("clean", &self.is_clean())
            .field("files_scanned", &self.files_scanned)
            .field("findings", &self.findings)
            .field_with("panic_counts", |o| {
                let counts: BTreeMap<String, usize> = self
                    .panic_counts
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                counts.write_json(o);
            })
            .field("allows", &self.allows)
            .field("notes", &self.notes)
            .finish();
    }
}

/// Lints one file's source text under its derived [`FileContext`] —
/// token rules only; used by the fixture self-tests. Graph rules need
/// [`lint_files`].
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, Vec<Finding>) {
    let ctx = FileContext::from_path(path);
    let report = check_file(&ctx, src);
    (report.findings, report.panic_sites)
}

/// Runs the full two-layer pipeline over in-memory `(path, source)` pairs.
///
/// This is the real analysis — [`run_workspace`] is a thin I/O wrapper
/// around it, and the graph-rule fixtures and mini-workspace tests call it
/// directly.
pub fn lint_files(sources: &[(String, String)]) -> WorkspaceReport {
    let ws = Workspace::from_sources(sources);
    let mut report = WorkspaceReport {
        files_scanned: ws.files.len(),
        ..WorkspaceReport::default()
    };

    // Graph layer first: its findings participate in each file's
    // suppression ledger, and its purity sites shadow token duplicates.
    let graph = graph_findings(&ws);
    let purity = purity_sites(&graph);
    let mut graph_by_file: BTreeMap<&str, Vec<&crate::reach::GraphFinding>> = BTreeMap::new();
    for g in &graph {
        graph_by_file
            .entry(g.finding.path.as_str())
            .or_default()
            .push(g);
    }

    for file in &ws.files {
        let ctx = &file.ctx;
        let sups: &[Suppression] = &file.lex.suppressions;
        report.findings.extend(police_directives(ctx, sups));
        for s in sups {
            report.allows.push(AllowRecord {
                path: ctx.path.clone(),
                line: s.line,
                rule: s.rule.clone(),
                reason: s.reason.clone().unwrap_or_default(),
            });
        }
        let mut used = vec![false; sups.len()];

        // Token findings, minus the sites the purity layer re-reports
        // with a witness.
        let token: Vec<Finding> = check_tokens(ctx, &file.lex.tokens)
            .into_iter()
            .filter(|f| {
                purity
                    .get(&(f.path.clone(), f.line, f.col))
                    .map(|&base| base != f.rule)
                    .unwrap_or(true)
            })
            .collect();
        report
            .findings
            .extend(apply_suppressions(sups, token, &mut used, |_| None));

        // This file's graph findings; an allow for the shadowed base rule
        // also covers them.
        let file_graph: Vec<&crate::reach::GraphFinding> =
            graph_by_file.remove(ctx.path.as_str()).unwrap_or_default();
        let bases: BTreeMap<(u32, u32, &str), &'static str> = file_graph
            .iter()
            .filter_map(|g| {
                g.base
                    .map(|b| ((g.finding.line, g.finding.col, g.finding.rule), b))
            })
            .collect();
        let graph_kept = apply_suppressions(
            sups,
            file_graph.iter().map(|g| g.finding.clone()).collect(),
            &mut used,
            |f| bases.get(&(f.line, f.col, f.rule)).copied(),
        );
        report.findings.extend(graph_kept);

        let sites = apply_suppressions(sups, panic_sites(ctx, &file.lex.tokens), &mut used, |_| {
            None
        });
        if !sites.is_empty() {
            *report.panic_counts.entry(ctx.krate.clone()).or_insert(0) += sites.len();
        }

        report.findings.extend(stale_findings(ctx, sups, &used));
    }

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
        .allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Walks the workspace at `root`, lints every source file, and applies the
/// panic-budget ratchet.
pub fn run_workspace(root: &Path, budget: &Budget) -> io::Result<WorkspaceReport> {
    let files = workspace_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((rel.clone(), fs::read_to_string(root.join(rel))?));
    }
    let mut report = lint_files(&sources);

    let mut lowered: Budget = budget.clone();
    let mut any_lowered = false;
    for (krate, verdict) in ratchet(&report.panic_counts, budget) {
        match verdict {
            RatchetVerdict::AtBudget => {}
            RatchetVerdict::BelowBudget { count, budget } => {
                report.notes.push(format!(
                    "crate `{krate}`: {count} panic sites, budget {budget} — lower the budget in \
                     lint/panic_budget.toml to lock in the improvement"
                ));
                lowered.insert(krate.clone(), count);
                any_lowered = true;
            }
            RatchetVerdict::OverBudget { count, budget } => report.findings.push(Finding {
                rule: "panic-budget",
                path: "lint/panic_budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{krate}`: {count} library-code panic sites exceed the budget of \
                     {budget}; convert to Result or justify with an allow(panic-budget) directive"
                ),
                witness: Vec::new(),
            }),
            RatchetVerdict::Unbudgeted { count } => report.findings.push(Finding {
                rule: "panic-budget",
                path: "lint/panic_budget.toml".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{krate}` ({count} panic sites) has no entry in lint/panic_budget.toml"
                ),
                witness: Vec::new(),
            }),
        }
    }
    if any_lowered {
        report.notes.push(format!(
            "lowered lint/panic_budget.toml stanza (paste verbatim):\n{}",
            budget_stanza(&lowered)
        ));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Renders a budget map back into the `lint/panic_budget.toml` format, one
/// `crate = count` line per crate in sorted order.
pub fn budget_stanza(budget: &Budget) -> String {
    let mut out = String::new();
    for (krate, count) in budget {
        out.push_str(&format!("{krate} = {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_json() {
        let mut r = WorkspaceReport::default();
        r.files_scanned = 2;
        r.findings.push(Finding {
            rule: "no-wallclock",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "bad".into(),
            witness: Vec::new(),
        });
        r.panic_counts.insert("cluster".into(), 7);
        let json = r.to_json();
        assert!(json.contains(r#""tool":"ecolb-lint""#));
        assert!(json.contains(r#""clean":false"#));
        assert!(json.contains(r#""rule":"no-wallclock""#));
        assert!(json.contains(r#""panic_counts":{"cluster":7}"#));
    }

    #[test]
    fn witness_is_serialized() {
        let f = Finding {
            rule: "sim-path-purity",
            path: "crates/cluster/src/balance.rs".into(),
            line: 9,
            col: 5,
            message: "m".into(),
            witness: vec!["a (x.rs:1)".into(), "b (y.rs:2)".into()],
        };
        let json = f.to_json();
        assert!(
            json.contains(r#""witness":["a (x.rs:1)","b (y.rs:2)"]"#),
            "{json}"
        );
    }

    #[test]
    fn budget_stanza_round_trips() {
        let mut b = Budget::new();
        b.insert("cluster".into(), 0);
        b.insert("simcore".into(), 2);
        let s = budget_stanza(&b);
        assert_eq!(s, "cluster = 0\nsimcore = 2\n");
        assert_eq!(crate::budget::parse_budget(&s).expect("parses"), b);
    }

    #[test]
    fn purity_shadows_the_token_finding_at_the_same_site() {
        let sources = vec![(
            "crates/cluster/src/balance.rs".to_string(),
            "pub fn balance_round(seed: u64) { let t = Instant::now(); }".to_string(),
        )];
        let r = lint_files(&sources);
        let purity: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "sim-path-purity")
            .collect();
        assert_eq!(purity.len(), 1, "{:?}", r.findings);
        assert!(!purity[0].witness.is_empty());
        // The token-layer duplicate at the same site is gone; `Instant`
        // also appears nowhere else, so purity is the only wallclock
        // report.
        assert!(
            !r.findings.iter().any(|f| f.rule == "no-wallclock"
                && f.line == purity[0].line
                && f.col == purity[0].col),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn base_rule_allow_covers_the_purity_finding() {
        let sources = vec![(
            "crates/cluster/src/balance.rs".to_string(),
            "pub fn balance_round(seed: u64) {\n\
                 let t = Instant::now(); // ecolb-lint: allow(no-wallclock, \"test dummy\")\n\
             }"
            .to_string(),
        )];
        let r = lint_files(&sources);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn stale_allow_is_reported_by_the_full_pipeline() {
        let sources = vec![(
            "crates/cluster/src/balance.rs".to_string(),
            "// ecolb-lint: allow(no-wallclock, \"nothing here anymore\")\npub fn f() {}\n"
                .to_string(),
        )];
        let r = lint_files(&sources);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "stale-suppression");
    }

    #[test]
    fn allow_inventory_is_collected() {
        let sources = vec![(
            "crates/cluster/src/balance.rs".to_string(),
            "pub fn balance_round(seed: u64) {\n\
                 let t = Instant::now(); // ecolb-lint: allow(no-wallclock, \"dummy\")\n\
             }"
            .to_string(),
        )];
        let r = lint_files(&sources);
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.allows[0].rule, "no-wallclock");
        assert_eq!(r.allows[0].reason, "dummy");
        assert_eq!(r.allows[0].line, 2);
    }
}
