//! Workspace symbol table and conservative name-resolution call graph.
//!
//! Every source file is lexed and item-parsed once into a [`Workspace`];
//! [`build_graph`] then links call sites to workspace function definitions
//! by name. Resolution is deliberately *conservative in the
//! over-approximation direction*: an unqualified or method call links to
//! **every** workspace function of that name (so reachability never misses
//! a real path), while a path-qualified call (`Engine::run`,
//! `balance::balance_round`) links only to definitions whose owner type,
//! module, file stem, or crate matches the qualifier. Test functions, test
//! files, and bin targets are excluded from the graph entirely — they can
//! call sim entry points, but nothing on the sim path can call them, and
//! keeping them out prevents same-name test helpers from widening the
//! reachable set.

use crate::lexer::{lex, LexOutput, Token, TokenKind};
use crate::parse::{parse_items, ParsedFile};
use crate::rules::{matching_close, FileContext};
use std::collections::BTreeMap;

/// One analysed source file: path, derived context, tokens, items.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Derived rule-scoping context.
    pub ctx: FileContext,
    /// Lexer output (tokens + suppression directives).
    pub lex: LexOutput,
    /// Item-parser output (fns + uses).
    pub parsed: ParsedFile,
}

impl SourceFile {
    /// The file stem (`balance` for `crates/cluster/src/balance.rs`),
    /// used as a module-name candidate during call resolution.
    pub fn stem(&self) -> &str {
        self.path
            .rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".rs"))
            .unwrap_or("")
    }
}

/// All analysed sources of one lint run.
pub struct Workspace {
    /// Files in the order given (the walker provides sorted order).
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Lexes and item-parses every `(path, source)` pair.
    pub fn from_sources(sources: &[(String, String)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(path, src)| {
                let lex = lex(src);
                let parsed = parse_items(&lex.tokens);
                SourceFile {
                    path: path.clone(),
                    ctx: FileContext::from_path(path),
                    lex,
                    parsed,
                }
            })
            .collect();
        Workspace { files }
    }
}

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments of the callee (`["Rng", "new"]`, `["balance_round"]`).
    pub segments: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Token-index span of the argument list, *exclusive* of the parens.
    pub args: (usize, usize),
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "ref", "mut", "box",
    "unsafe", "async", "await", "dyn", "impl", "fn", "pub", "where", "else", "break", "continue",
    "as", "use", "mod", "struct", "enum", "union", "trait", "type", "static", "const", "crate",
    "super",
];

/// Extracts every call site from the token span `body` (inclusive).
pub fn extract_calls(tokens: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut j = start;
    while j <= end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[j];
        if t.kind != TokenKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        // A definition (`fn helper(`) is not a call of `helper`.
        if j > 0 && tokens[j - 1].is_ident("fn") {
            j += 1;
            continue;
        }
        // Optional turbofish between the name and the parens.
        let mut k = j + 1;
        if k + 2 < tokens.len()
            && tokens[k].is_punct(':')
            && tokens[k + 1].is_punct(':')
            && tokens[k + 2].is_punct('<')
        {
            k = crate::parse::skip_angles(tokens, k + 2);
        }
        let open = match tokens.get(k) {
            Some(p) if p.is_punct('(') => k,
            _ => {
                j += 1;
                continue;
            }
        };
        // Macro invocation (`name!(…)`) — not a function call.
        if tokens.get(j + 1).map(|t| t.is_punct('!')).unwrap_or(false) {
            j += 1;
            continue;
        }
        let close = matching_close(tokens, open);
        // Walk `::`-separated path segments backwards from the name.
        let mut segments = vec![t.text.clone()];
        let mut p = j;
        while p >= 3
            && tokens[p - 1].is_punct(':')
            && tokens[p - 2].is_punct(':')
            && tokens[p - 3].kind == TokenKind::Ident
        {
            segments.insert(0, tokens[p - 3].text.clone());
            p -= 3;
        }
        let method = segments.len() == 1 && p > 0 && tokens[p - 1].is_punct('.');
        out.push(CallSite {
            segments,
            method,
            line: t.line,
            col: t.col,
            args: (open + 1, close),
        });
        j += 1;
    }
    out
}

/// A function definition's coordinates inside a [`Workspace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnKey {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
}

/// The workspace call graph over library (non-test, non-bin) functions.
pub struct CallGraph {
    /// Graph nodes: every library function with a body.
    pub fns: Vec<FnKey>,
    /// Function name → node indices (the symbol table).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per-node resolved callees, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Per-node extracted call sites (reused by the flow rules).
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// `Owner::name (path:line)` label for node `id`, used in witnesses.
    pub fn label(&self, ws: &Workspace, id: usize) -> String {
        let key = self.fns[id];
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        format!("{} ({}:{})", item.display(), file.path, item.line)
    }
}

/// True when module-path qualifier `qual` plausibly names crate `krate`
/// (`ecolb_cluster` ↔ `cluster`, or the crate directory name itself).
fn crate_matches(qual: &str, krate: &str) -> bool {
    qual == krate || qual.strip_prefix("ecolb_") == Some(krate)
}

/// Builds the call graph for `ws`. See the module docs for the
/// resolution policy.
pub fn build_graph(ws: &Workspace) -> CallGraph {
    let mut fns = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.ctx.is_bin || file.ctx.is_test {
            continue;
        }
        for (ii, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test || item.body.is_none() {
                continue;
            }
            let id = fns.len();
            fns.push(FnKey { file: fi, item: ii });
            by_name.entry(item.name.clone()).or_default().push(id);
        }
    }

    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
    let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(fns.len());
    for key in &fns {
        let file = &ws.files[key.file];
        let item = &file.parsed.fns[key.item];
        let sites = match item.body {
            Some(body) => extract_calls(&file.lex.tokens, body),
            None => Vec::new(),
        };
        let mut out: Vec<usize> = Vec::new();
        for site in &sites {
            out.extend(resolve(ws, &fns, &by_name, key.file, site));
        }
        out.sort_unstable();
        out.dedup();
        edges.push(out);
        calls.push(sites);
    }
    CallGraph {
        fns,
        by_name,
        edges,
        calls,
    }
}

/// Resolves one call site to candidate graph nodes.
fn resolve(
    ws: &Workspace,
    fns: &[FnKey],
    by_name: &BTreeMap<String, Vec<usize>>,
    from_file: usize,
    site: &CallSite,
) -> Vec<usize> {
    let name = match site.segments.last() {
        Some(n) => n,
        None => return Vec::new(),
    };
    let candidates = match by_name.get(name) {
        Some(c) => c,
        None => return Vec::new(),
    };
    // Effective qualifier: the explicit path segment, or the one a `use`
    // import supplies for an unqualified call.
    let mut qual: Option<String> = if site.segments.len() >= 2 {
        Some(site.segments[site.segments.len() - 2].clone())
    } else {
        None
    };
    if qual.is_none() && !site.method {
        let file = &ws.files[from_file];
        for u in &file.parsed.uses {
            if u.alias == *name && u.segments.len() >= 2 {
                qual = Some(u.segments[u.segments.len() - 2].clone());
                break;
            }
        }
    }
    match qual.as_deref() {
        None | Some("crate") | Some("self") | Some("super") => candidates
            .iter()
            .copied()
            .filter(|&id| {
                // Method syntax can only land on an associated function.
                let key = fns[id];
                !site.method || ws.files[key.file].parsed.fns[key.item].owner.is_some()
            })
            .collect(),
        Some(q) => candidates
            .iter()
            .copied()
            .filter(|&id| {
                let key = fns[id];
                let file = &ws.files[key.file];
                let item = &file.parsed.fns[key.item];
                item.owner.as_deref() == Some(q)
                    || item.modules.last().map(String::as_str) == Some(q)
                    || file.stem() == q
                    || crate_matches(q, &file.ctx.krate)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::from_sources(&owned)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        match g.by_name.get(name).and_then(|v| v.first()) {
            Some(&id) => id,
            None => panic!(
                "fn {name} not in graph; have {:?}",
                g.by_name.keys().collect::<Vec<_>>()
            ),
        }
    }

    #[test]
    fn direct_and_qualified_calls_resolve() {
        let w = ws(&[
            (
                "crates/cluster/src/balance.rs",
                "pub fn balance_round(seed: u64) { helper(); other::tally(seed); }\nfn helper() {}",
            ),
            (
                "crates/metrics/src/other.rs",
                "pub fn tally(x: u64) {}\npub fn unrelated() {}",
            ),
        ]);
        let g = build_graph(&w);
        let br = node(&g, "balance_round");
        let helper = node(&g, "helper");
        let tally = node(&g, "tally");
        let unrelated = node(&g, "unrelated");
        assert!(g.edges[br].contains(&helper));
        assert!(g.edges[br].contains(&tally));
        assert!(!g.edges[br].contains(&unrelated));
    }

    #[test]
    fn qualified_calls_filter_by_owner() {
        let w = ws(&[(
            "crates/simcore/src/engine.rs",
            "impl Engine { pub fn run(&mut self) { } }\nimpl Other { pub fn run(&mut self) {} }\n\
             pub fn drive() { Engine::run(); }",
        )]);
        let g = build_graph(&w);
        let drive = node(&g, "drive");
        assert_eq!(g.edges[drive].len(), 1, "only Engine::run, not Other::run");
    }

    #[test]
    fn method_calls_over_approximate_to_all_owners() {
        let w = ws(&[(
            "crates/cluster/src/leader.rs",
            "impl Leader { pub fn refresh(&mut self) {} }\nimpl Directory { pub fn refresh(&mut self) {} }\n\
             pub fn step(l: &mut Leader) { l.refresh(); }",
        )]);
        let g = build_graph(&w);
        let step = node(&g, "step");
        assert_eq!(g.edges[step].len(), 2, "both refresh impls are candidates");
    }

    #[test]
    fn test_code_and_bins_stay_out_of_the_graph() {
        let w = ws(&[
            (
                "crates/cluster/src/x.rs",
                "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn lib_fn() {} }",
            ),
            ("crates/bench/src/bin/sweep.rs", "pub fn lib_fn() {}"),
            ("tests/determinism.rs", "pub fn lib_fn() {}"),
        ]);
        let g = build_graph(&w);
        assert_eq!(g.by_name.get("lib_fn").map(Vec::len), Some(1));
    }

    #[test]
    fn use_imports_qualify_bare_calls() {
        let w = ws(&[
            (
                "crates/cluster/src/sim.rs",
                "use ecolb_metrics::convert::sat_u64;\npub fn go(x: f64) { sat_u64(x); }",
            ),
            (
                "crates/metrics/src/convert.rs",
                "pub fn sat_u64(x: f64) -> u64 { 0 }",
            ),
            (
                "crates/energy/src/power.rs",
                "fn sat_u64(x: f64) -> u64 { 1 }",
            ),
        ]);
        let g = build_graph(&w);
        let go = node(&g, "go");
        assert_eq!(
            g.edges[go].len(),
            1,
            "the use import pins sat_u64 to crates/metrics/src/convert.rs"
        );
        let target = g.edges[go][0];
        assert_eq!(
            w.files[g.fns[target].file].path,
            "crates/metrics/src/convert.rs"
        );
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let w = ws(&[(
            "crates/cluster/src/x.rs",
            "fn pick<T>() -> T { todo() }\nfn todo<T>() -> T { loop {} }\npub fn go() { pick::<u64>(); }",
        )]);
        let g = build_graph(&w);
        let go = node(&g, "go");
        let pick = node(&g, "pick");
        assert!(g.edges[go].contains(&pick));
    }
}
