//! Per-file analysis driver: lex, run rules, honour suppressions.
//!
//! The engine is split into composable pieces — directive policing,
//! suppression application with usage accounting, stale detection — so the
//! workspace pipeline in [`crate::report`] can thread *graph-layer*
//! findings (which exist only across files) through the same suppression
//! machinery before deciding which directives are stale.

use crate::lexer::{lex, Suppression};
use crate::rules::{check_tokens, panic_sites, FileContext, Finding, ALL_RULES};

/// The outcome of analysing one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule violations (after suppression filtering), including findings
    /// about malformed or stale suppression directives themselves.
    pub findings: Vec<Finding>,
    /// Library-code panic sites (after suppression filtering); aggregated
    /// into the per-crate ratchet by the caller.
    pub panic_sites: Vec<Finding>,
}

/// True when `s` suppresses rule `rule` at line `line`.
///
/// A directive covers its own line (trailing comment) and the next line
/// (directive on the line above the flagged code).
pub fn covers(s: &Suppression, rule: &str, line: u32) -> bool {
    s.rule == rule && (line == s.line || line == s.line + 1)
}

/// Polices the directives themselves: a suppression without a reason, or
/// for a rule that does not exist, is a `suppression` finding — and is
/// not suppressible.
pub fn police_directives(ctx: &FileContext, suppressions: &[Suppression]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for s in suppressions {
        if !ALL_RULES.contains(&s.rule.as_str()) {
            findings.push(Finding {
                rule: "suppression",
                path: ctx.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "allow directive names unknown rule `{}` (known: {})",
                    s.rule,
                    ALL_RULES.join(", ")
                ),
                witness: Vec::new(),
            });
        } else if s.reason.is_none() {
            findings.push(Finding {
                rule: "suppression",
                path: ctx.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "allow({}) without a reason; write `// ecolb-lint: allow({}, \"why\")`",
                    s.rule, s.rule
                ),
                witness: Vec::new(),
            });
        }
    }
    findings
}

/// Filters `findings` through the reasoned suppressions, marking which
/// directives earned their keep in `used` (parallel to `suppressions`).
///
/// `base_of` maps a finding to the token-layer rule it shadows, if any —
/// a graph finding like `sim-path-purity` over a wall-clock read is
/// suppressible under either name, so one `allow(no-wallclock, …)` keeps
/// working when the purity layer takes over reporting the site.
pub fn apply_suppressions<F>(
    suppressions: &[Suppression],
    findings: Vec<Finding>,
    used: &mut [bool],
    base_of: F,
) -> Vec<Finding>
where
    F: Fn(&Finding) -> Option<&'static str>,
{
    findings
        .into_iter()
        .filter(|f| {
            let mut hit = false;
            for (i, s) in suppressions.iter().enumerate() {
                if s.reason.is_none() {
                    continue;
                }
                let matches = covers(s, f.rule, f.line)
                    || base_of(f).map(|b| covers(s, b, f.line)).unwrap_or(false);
                if matches {
                    used[i] = true;
                    hit = true;
                }
            }
            !hit
        })
        .collect()
}

/// **stale-suppression** — a well-formed, reasoned directive that
/// suppressed nothing. Code moves; an allow that outlives its violation
/// is a hole in the fence, so it becomes an error (non-suppressible, like
/// the other directive-policing findings). Malformed directives are
/// excluded — they are already reported by [`police_directives`].
pub fn stale_findings(
    ctx: &FileContext,
    suppressions: &[Suppression],
    used: &[bool],
) -> Vec<Finding> {
    suppressions
        .iter()
        .zip(used)
        .filter(|(s, &u)| !u && s.reason.is_some() && ALL_RULES.contains(&s.rule.as_str()))
        .map(|(s, _)| Finding {
            rule: "stale-suppression",
            path: ctx.path.clone(),
            line: s.line,
            col: 1,
            message: format!(
                "allow({}, …) suppresses nothing; the violation it covered is gone — delete the \
                 directive",
                s.rule
            ),
            witness: Vec::new(),
        })
        .collect()
}

/// Analyses one file in isolation: lexes, runs every token rule, then
/// applies (and polices) the inline allow directives, e.g.
/// `// ecolb-lint: allow(no-wallclock, "perf harness measures real time")`.
///
/// Graph-layer rules (`sim-path-purity`, `seed-provenance`,
/// `silent-result-drop`) need the whole workspace and are run by
/// [`crate::report::run_workspace`]; a directive for one of those rules is
/// *not* reported stale here, since this view cannot see the finding it
/// suppresses.
pub fn check_file(ctx: &FileContext, src: &str) -> FileReport {
    let lexed = lex(src);
    let mut findings = police_directives(ctx, &lexed.suppressions);
    let mut used = vec![false; lexed.suppressions.len()];

    let kept = apply_suppressions(
        &lexed.suppressions,
        check_tokens(ctx, &lexed.tokens),
        &mut used,
        |_| None,
    );
    findings.extend(kept);
    let sites = apply_suppressions(
        &lexed.suppressions,
        panic_sites(ctx, &lexed.tokens),
        &mut used,
        |_| None,
    );

    // Directives naming a graph rule are credited unconditionally in this
    // single-file view.
    for (i, s) in lexed.suppressions.iter().enumerate() {
        if GRAPH_RULES.contains(&s.rule.as_str()) {
            used[i] = true;
        }
    }
    findings.extend(stale_findings(ctx, &lexed.suppressions, &used));

    FileReport {
        findings,
        panic_sites: sites,
    }
}

/// Rules computed by the workspace graph layer, invisible to the
/// single-file view.
pub const GRAPH_RULES: &[&str] = &["sim-path-purity", "seed-provenance", "silent-result-drop"];

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext::from_path("crates/cluster/src/x.rs")
    }

    #[test]
    fn reasoned_allow_suppresses_same_and_next_line() {
        let trailing =
            "let m = HashMap::new(); // ecolb-lint: allow(no-unordered-collections, \"docs\")";
        let r = check_file(&ctx(), trailing);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        let above =
            "// ecolb-lint: allow(no-unordered-collections, \"docs\")\nlet m = HashMap::new();";
        let r = check_file(&ctx(), above);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reasonless_allow_is_a_finding_and_does_not_suppress() {
        let src = "let m = HashMap::new(); // ecolb-lint: allow(no-unordered-collections)";
        let r = check_file(&ctx(), src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"suppression"));
        assert!(rules.contains(&"no-unordered-collections"));
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// ecolb-lint: allow(no-such-rule, \"oops\")\n";
        let r = check_file(&ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "suppression");
    }

    #[test]
    fn allow_for_a_different_rule_is_stale_and_does_not_suppress() {
        let src = "let m = HashMap::new(); // ecolb-lint: allow(no-wallclock, \"wrong rule\")";
        let r = check_file(&ctx(), src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"no-unordered-collections"), "{:?}", rules);
        assert!(rules.contains(&"stale-suppression"), "{:?}", rules);
    }

    #[test]
    fn stale_allow_on_clean_code_is_flagged() {
        let src = "// ecolb-lint: allow(no-wallclock, \"was needed once\")\nlet x = 1;";
        let r = check_file(&ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "stale-suppression");
    }

    #[test]
    fn graph_rule_allows_are_not_stale_in_the_single_file_view() {
        let src = "// ecolb-lint: allow(sim-path-purity, \"graph layer decides\")\nlet x = 1;";
        let r = check_file(&ctx(), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn panic_sites_can_be_excluded_from_the_ratchet() {
        let src = "fn f() { x.unwrap(); } // ecolb-lint: allow(panic-budget, \"infallible by construction\")";
        let r = check_file(&ctx(), src);
        assert!(r.panic_sites.is_empty());
    }
}
