//! Per-file analysis driver: lex, run rules, honour suppressions.

use crate::lexer::{lex, Suppression};
use crate::rules::{check_tokens, panic_sites, FileContext, Finding, ALL_RULES};

/// The outcome of analysing one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule violations (after suppression filtering), including findings
    /// about malformed suppression directives themselves.
    pub findings: Vec<Finding>,
    /// Library-code panic sites (after suppression filtering); aggregated
    /// into the per-crate ratchet by the caller.
    pub panic_sites: Vec<Finding>,
}

/// True when `s` suppresses rule `rule` at line `line`.
///
/// A directive covers its own line (trailing comment) and the next line
/// (directive on the line above the flagged code).
fn covers(s: &Suppression, rule: &str, line: u32) -> bool {
    s.rule == rule && (line == s.line || line == s.line + 1)
}

/// Analyses one file: lexes, runs every rule, then applies (and polices)
/// the inline allow directives, e.g.
/// `// ecolb-lint: allow(no-wallclock, "perf harness measures real time")`.
pub fn check_file(ctx: &FileContext, src: &str) -> FileReport {
    let lexed = lex(src);
    let mut findings: Vec<Finding> = Vec::new();

    // Police the directives first: a suppression without a reason, or for
    // a rule that does not exist, is itself a finding — and is not
    // suppressible.
    for s in &lexed.suppressions {
        if !ALL_RULES.contains(&s.rule.as_str()) {
            findings.push(Finding {
                rule: "suppression",
                path: ctx.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "allow directive names unknown rule `{}` (known: {})",
                    s.rule,
                    ALL_RULES.join(", ")
                ),
            });
        } else if s.reason.is_none() {
            findings.push(Finding {
                rule: "suppression",
                path: ctx.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "allow({}) without a reason; write `// ecolb-lint: allow({}, \"why\")`",
                    s.rule, s.rule
                ),
            });
        }
    }

    let suppressed = |f: &Finding| {
        lexed
            .suppressions
            .iter()
            .any(|s| s.reason.is_some() && covers(s, f.rule, f.line))
    };

    findings.extend(
        check_tokens(ctx, &lexed.tokens)
            .into_iter()
            .filter(|f| !suppressed(f)),
    );
    let sites = panic_sites(ctx, &lexed.tokens)
        .into_iter()
        .filter(|f| !suppressed(f))
        .collect();

    FileReport {
        findings,
        panic_sites: sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext::from_path("crates/cluster/src/x.rs")
    }

    #[test]
    fn reasoned_allow_suppresses_same_and_next_line() {
        let trailing =
            "let m = HashMap::new(); // ecolb-lint: allow(no-unordered-collections, \"docs\")";
        let r = check_file(&ctx(), trailing);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        let above =
            "// ecolb-lint: allow(no-unordered-collections, \"docs\")\nlet m = HashMap::new();";
        let r = check_file(&ctx(), above);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reasonless_allow_is_a_finding_and_does_not_suppress() {
        let src = "let m = HashMap::new(); // ecolb-lint: allow(no-unordered-collections)";
        let r = check_file(&ctx(), src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"suppression"));
        assert!(rules.contains(&"no-unordered-collections"));
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// ecolb-lint: allow(no-such-rule, \"oops\")\n";
        let r = check_file(&ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "suppression");
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "let m = HashMap::new(); // ecolb-lint: allow(no-wallclock, \"wrong rule\")";
        let r = check_file(&ctx(), src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-unordered-collections");
    }

    #[test]
    fn panic_sites_can_be_excluded_from_the_ratchet() {
        let src = "fn f() { x.unwrap(); } // ecolb-lint: allow(panic-budget, \"infallible by construction\")";
        let r = check_file(&ctx(), src);
        assert!(r.panic_sites.is_empty());
    }
}
